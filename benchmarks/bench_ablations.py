"""Ablations over CLIC's design parameters (window W, decay r, outqueue, metadata charge)."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_sweep
from repro.experiments.ablations import (
    run_decay_ablation,
    run_metadata_charge_ablation,
    run_outqueue_ablation,
    run_window_ablation,
)


def test_ablation_window_size(benchmark):
    sweep = benchmark.pedantic(
        run_window_ablation,
        kwargs={"trace_name": "DB2_C300", "cache_size": 3_600, "settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    print_sweep("Ablation: CLIC hit ratio vs. statistics window W (DB2_C300)", sweep)
    assert all(0.0 <= ratio <= 1.0 for ratio in sweep.hit_ratios("DB2_C300"))


def test_ablation_decay(benchmark):
    sweep = benchmark.pedantic(
        run_decay_ablation,
        kwargs={"trace_name": "DB2_C300", "cache_size": 3_600, "settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    print_sweep("Ablation: CLIC hit ratio vs. smoothing weight r (DB2_C300)", sweep)
    assert len(sweep.series["DB2_C300"]) == 4


def test_ablation_outqueue(benchmark):
    sweep = benchmark.pedantic(
        run_outqueue_ablation,
        kwargs={"trace_name": "DB2_C300", "cache_size": 3_600, "settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    print_sweep("Ablation: CLIC hit ratio vs. outqueue factor Noutq (DB2_C300)", sweep)
    ratios = dict(zip(sweep.xs("DB2_C300"), sweep.hit_ratios("DB2_C300")))
    # The outqueue is what lets CLIC see re-references of uncached pages; some
    # outqueue should never be (much) worse than none at all.
    assert ratios[5.0] >= ratios[0.0] - 0.05


def test_ablation_metadata_charge(benchmark):
    sweep = benchmark.pedantic(
        run_metadata_charge_ablation,
        kwargs={"trace_name": "DB2_C300", "cache_size": 3_600, "settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    print_sweep("Ablation: cost of charging CLIC's metadata against the cache (DB2_C300)", sweep)
    uncharged, charged = sweep.hit_ratios("DB2_C300")
    assert charged >= uncharged - 0.1
