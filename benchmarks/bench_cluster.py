"""Microbenchmark: sharded-cluster replay vs. the unified cache.

Replays one standard trace through a unified policy and through
:class:`~repro.simulation.cluster.ShardedCache` clusters of increasing shard
count (same total capacity), reporting replay throughput (requests/second)
and the hit-ratio / load-imbalance profile of each configuration.  Two
correctness gates make this a CI smoke test as well:

* ``shards=1`` must produce exactly the unified policy's read hit ratio
  (the cluster layer's bit-identity guarantee);
* every cluster's shard request counts must sum to the trace length
  (each request routes to exactly one shard).

Run it standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py --requests 20000

In-process sharding is not expected to be faster than the unified cache —
each shard is the same pure-Python policy plus routing overhead; the point
is to quantify that overhead (it should stay small) while the per-shard
results model what a fleet of cache servers would do.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, generate_trace
from repro.simulation.cluster import ShardedCache
from repro.simulation.simulator import CacheSimulator


def replay(policy, requests):
    started = time.perf_counter()
    result = CacheSimulator(policy).run(requests)
    return result, time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--policy", default="LRU", help="per-shard policy name")
    parser.add_argument("--capacity", type=int, default=3_600, help="total pages")
    parser.add_argument(
        "--shards", default="1,2,4,8",
        help="comma-separated shard counts (1 = unified baseline check)",
    )
    parser.add_argument("--router", default="hash", help="hash, range or client")
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="time each configuration as the best of N repeats (default: 3)",
    )
    args = parser.parse_args(argv)
    shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
    if not shard_counts:
        parser.error("--shards must name at least one shard count")

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    requests = generate_trace(args.trace, settings).requests()
    page_span = generate_trace(args.trace, settings).metadata.get(
        "database_pages"
    ) or (max(request.page for request in requests) + 1)
    print(
        f"trace={args.trace} requests={len(requests)} policy={args.policy} "
        f"capacity={args.capacity} router={args.router}"
    )

    def timed(build):
        best, result = None, None
        for _ in range(max(1, args.repeat)):
            policy = build()
            result, elapsed = replay(policy, requests)
            best = elapsed if best is None else min(best, elapsed)
        return result, best

    unified_result, unified_best = timed(
        lambda: create_policy(args.policy, capacity=args.capacity)
    )
    baseline_throughput = len(requests) / unified_best
    print(f"\n{'configuration':<16} {'req/s':>12} {'relative':>9} "
          f"{'hit ratio':>10} {'imbalance':>10}")
    print(f"{'unified':<16} {baseline_throughput:>12,.0f} {'1.00x':>9} "
          f"{unified_result.read_hit_ratio:>10.2%} {'-':>10}")

    ok = True
    for shards in shard_counts:
        result, best = timed(
            lambda shards=shards: ShardedCache(
                capacity=args.capacity,
                policy=args.policy,
                shards=shards,
                router=args.router,
                page_span=page_span,
            )
        )
        throughput = len(requests) / best
        print(
            f"{f'{shards} shard(s)':<16} {throughput:>12,.0f} "
            f"{throughput / baseline_throughput:>8.2f}x "
            f"{result.read_hit_ratio:>10.2%} {result.load_imbalance:>10.2f}"
        )
        if sum(result.shard_request_counts) != len(requests):
            print(f"FAIL: {shards}-shard cluster lost requests "
                  f"({sum(result.shard_request_counts)} != {len(requests)})")
            ok = False
        if shards == 1 and result.read_hit_ratio != unified_result.read_hit_ratio:
            print(
                "FAIL: shards=1 diverged from the unified cache "
                f"({result.read_hit_ratio:.6f} != {unified_result.read_hit_ratio:.6f})"
            )
            ok = False

    if 1 in shard_counts and ok:
        print("\nPASS: shards=1 identical to the unified cache; "
              "all requests accounted for")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
