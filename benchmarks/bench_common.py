"""Shared settings and helpers for the per-figure benchmark harness.

Each ``bench_fig*.py`` file regenerates one table or figure of the paper.
Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the benches print the regenerated rows/series (the same
numbers recorded in ``EXPERIMENTS.md``).  Benchmark timings measure the cost
of regenerating the artifact end-to-end (trace generation + simulation).

``BENCH_SETTINGS`` controls fidelity: the default trace length keeps a full
``pytest benchmarks/`` run in the tens-of-minutes range; raise
``REPRO_BENCH_REQUESTS`` (environment variable) for closer-to-paper curves.
"""

from __future__ import annotations

import os

from repro.experiments.common import ExperimentSettings

__all__ = ["BENCH_SETTINGS", "print_sweep", "print_rows"]

_DEFAULT_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "60000"))
_DEFAULT_SEED = int(os.environ.get("REPRO_BENCH_SEED", "17"))
#: Worker processes for the sweep grids (REPRO_BENCH_JOBS=N to parallelise;
#: the default of 1 keeps the regenerated numbers bit-identical to the
#: historical serial runs — any N produces the same output, only faster).
_DEFAULT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

BENCH_SETTINGS = ExperimentSettings(
    target_requests=_DEFAULT_REQUESTS, seed=_DEFAULT_SEED, jobs=_DEFAULT_JOBS
)


def print_sweep(title: str, sweep) -> None:
    """Print one figure's series as a text table."""
    print(f"\n=== {title} ===")
    print(sweep.to_table())


def print_rows(title: str, rows, columns=None) -> None:
    """Print tabular experiment output."""
    from repro.analysis.reporting import rows_to_table

    print(f"\n=== {title} ===")
    print(rows_to_table(rows, columns))
