"""Shared settings and helpers for the per-figure benchmark harness.

Each ``bench_fig*.py`` file regenerates one table or figure of the paper.
Run them with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the benches print the regenerated rows/series (the same
numbers recorded in ``EXPERIMENTS.md``).  Benchmark timings measure the cost
of regenerating the artifact end-to-end (trace generation + simulation).

``BENCH_SETTINGS`` controls fidelity: the default trace length keeps a full
``pytest benchmarks/`` run in the tens-of-minutes range; raise
``REPRO_BENCH_REQUESTS`` (environment variable) for closer-to-paper curves.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.common import ExperimentSettings

__all__ = [
    "BENCH_SETTINGS",
    "effective_jobs",
    "emit_bench_json",
    "print_sweep",
    "print_rows",
    "usable_cpus",
]

_DEFAULT_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "60000"))
_DEFAULT_SEED = int(os.environ.get("REPRO_BENCH_SEED", "17"))
#: Worker processes for the sweep grids (REPRO_BENCH_JOBS=N to parallelise;
#: the default of 1 keeps the regenerated numbers bit-identical to the
#: historical serial runs — any N produces the same output, only faster).
_DEFAULT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

BENCH_SETTINGS = ExperimentSettings(
    target_requests=_DEFAULT_REQUESTS, seed=_DEFAULT_SEED, jobs=_DEFAULT_JOBS
)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def effective_jobs(requested: int) -> int:
    """Clamp a requested worker count to the CPUs this process can use.

    Fanning a grid over more processes than the affinity mask allows only
    adds fork/IPC cost on top of time-slicing — on a 1-CPU runner the old
    ``jobs=4`` default made the "parallel" paths measurably *slower* than
    serial while the JSON record claimed a 4-way run.  Benches must sweep
    with the clamped value and record both requested and effective counts.
    """
    return max(1, min(requested, usable_cpus()))


def emit_bench_json(path, bench: str, grid: dict, seconds: dict, **extra):
    """Write one gate benchmark's ``BENCH_*.json`` timing record.

    Every gate bench routes its artifact through here (the ROADMAP's
    record-every-PR rule), so emission cannot be skipped silently: the
    record always carries the bench name, the measured grid, the usable CPU
    count and the per-path timings; gate results and baselines ride along
    as keyword extras.  An empty *path* skips the write (the ``--json ''``
    convention) and returns ``None``.
    """
    if not path:
        return None
    record = {
        "bench": bench,
        "grid": grid,
        "usable_cpus": usable_cpus(),
        "seconds": {name: round(s, 4) for name, s in seconds.items()},
    }
    record.update(extra)
    out = Path(path)
    out.write_text(json.dumps(record, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return out


def print_sweep(title: str, sweep) -> None:
    """Print one figure's series as a text table."""
    print(f"\n=== {title} ===")
    print(sweep.to_table())


def print_rows(title: str, rows, columns=None) -> None:
    """Print tabular experiment output."""
    from repro.analysis.reporting import rows_to_table

    print(f"\n=== {title} ===")
    print(rows_to_table(rows, columns))
