"""Microbenchmark: cost-model accounting overhead and correctness gates.

Replays one standard trace through the shared-replay engine three ways —
cost model off, priced against a position-independent device (SSD) and
priced against the seek-aware HDD profile — and reports replay throughput
for each.  Two gates make this a CI smoke test:

* **overhead gate** — with the cost model *off* the engine must stay within
  noise of a hand-rolled baseline replay loop (the pre-cost-model fast
  path, inlined here), proving the opt-in accounting pass costs nothing
  when not requested;
* **correctness gate** — for a position-independent device the per-request
  accumulator must price the run *exactly* like the analytic derivation
  from the final hit/miss counts (``CostModel.latency_from_stats``).

Run it standalone::

    PYTHONPATH=src python benchmarks/bench_costmodel.py --requests 20000
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import deque

from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, generate_trace
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import MultiPolicySimulator

#: The engine-off path may trail the hand-inlined loop by at most this
#: factor (it additionally chunks the stream and scans chunk client ids).
OVERHEAD_GATE = 1.35


def reference_replay(policy, requests) -> float:
    """The pre-cost-model fast path, inlined: one deque-driven map pass."""
    started = time.perf_counter()
    deque(map(policy.access, requests, range(len(requests))), maxlen=0)
    return time.perf_counter() - started


def engine_replay(policy, requests, cost_model=None):
    started = time.perf_counter()
    result = MultiPolicySimulator([policy], cost_model=cost_model).run(requests)[0]
    return result, time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--policy", default="LRU", help="policy to replay")
    parser.add_argument("--capacity", type=int, default=3_600, help="cache pages")
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="time each configuration as the best of N repeats (default: 3)",
    )
    args = parser.parse_args(argv)

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    trace = generate_trace(args.trace, settings)
    requests = trace.requests()
    page_span = trace.metadata.get("database_pages") or (
        max(request.page for request in requests) + 1
    )
    print(
        f"trace={args.trace} requests={len(requests)} policy={args.policy} "
        f"capacity={args.capacity}"
    )

    def build():
        return create_policy(args.policy, capacity=args.capacity)

    repeats = max(1, args.repeat)
    reference_best = min(reference_replay(build(), requests) for _ in range(repeats))

    def timed(cost_model):
        best, result = None, None
        for _ in range(repeats):
            result, elapsed = engine_replay(build(), requests, cost_model)
            best = elapsed if best is None else min(best, elapsed)
        return result, best

    ssd_model = CostModel("ssd")
    hdd_model = CostModel("hdd", page_span=page_span)
    off_result, off_best = timed(None)
    ssd_result, ssd_best = timed(ssd_model)
    hdd_result, hdd_best = timed(hdd_model)

    baseline = len(requests) / reference_best
    print(f"\n{'configuration':<22} {'req/s':>12} {'relative':>9}")
    rows = [
        ("reference loop", reference_best),
        ("engine, cost off", off_best),
        ("engine, ssd pricing", ssd_best),
        ("engine, hdd pricing", hdd_best),
    ]
    for label, best in rows:
        throughput = len(requests) / best
        print(f"{label:<22} {throughput:>12,.0f} {throughput / baseline:>8.2f}x")
    print(
        f"\nssd: mean read {ssd_result.latency.mean_read_us:,.1f}us "
        f"p99 {ssd_result.latency.p99_read_us:,.1f}us | "
        f"hdd: mean read {hdd_result.latency.mean_read_us:,.1f}us "
        f"p99 {hdd_result.latency.p99_read_us:,.1f}us"
    )

    ok = True
    if off_best > reference_best * OVERHEAD_GATE:
        print(
            f"FAIL: cost-model-off replay is {off_best / reference_best:.2f}x the "
            f"reference loop (gate: {OVERHEAD_GATE}x) — the fast path regressed"
        )
        ok = False
    if off_result.latency is not None:
        print("FAIL: cost-model-off replay attached latency stats")
        ok = False
    analytic = ssd_model.latency_from_stats(ssd_result.stats)
    if ssd_result.latency.as_dict() != analytic.as_dict():
        print(
            "FAIL: ssd accumulator diverged from the analytic derivation\n"
            f"  accumulator: {ssd_result.latency.as_dict()}\n"
            f"  analytic:    {analytic.as_dict()}"
        )
        ok = False
    if ssd_result.read_hit_ratio != off_result.read_hit_ratio:
        print("FAIL: pricing changed the replay's hit ratio")
        ok = False

    if ok:
        print(
            "\nPASS: cost-off within the overhead gate; ssd pricing matches "
            "the analytic derivation"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
