"""Microbenchmark + gate: observer-pipeline replay vs. the seed path.

The seed implementation of ``sweep_cache_sizes`` replayed the request stream
once per (policy, cache-size) cell, strictly serially, with each policy
mutating its own counters inline.  After the kernel/observer refactor the
policies are pure (``access`` returns an :class:`AccessOutcome`) and all
accounting happens in observers driven by one replay loop.  This benchmark
runs the same 4-policy x 4-size grid four ways and verifies they produce
identical read hit ratios:

1. ``seed serial``    — a faithful replica of the seed path: a hand-rolled
                        per-request loop per cell (``policy.access`` +
                        ``CacheStats.record_outcome`` inline), no engine, no
                        observers;
2. ``pipeline serial``— one :class:`CacheSimulator` pass per cell: the same
                        per-cell structure, but replayed through the
                        observer pipeline (stats observer only);
3. ``engine serial``  — the shared-replay engine (``jobs=1``): one trace
                        pass feeds every policy of the grid, with the OPT
                        future-read index built once and shared;
4. ``engine jobs=N``  — the same grid fanned out over worker processes.

Gates (exit non-zero on violation):

* **observer dispatch** — (2) must stay within 5% of (1): feeding outcomes
  to observers in chunk batches must not tax the hot path relative to the
  seed's inline counter mutation;
* **shared replay** — (3) must stay within 5% of (2): driving the whole
  grid from one loop must never be worse than per-cell runs (it amortises
  trace iteration and the shared OPT index);
* **speedup floor** — CPU-scaled.  With >= 2 usable CPUs the best engine
  path must beat the seed loop outright (2.0x at >= 4 CPUs, 1.2x at 2-3).
  On a single CPU there is no parallelism to win and — unlike the
  pre-refactor bench, whose "seed" baseline was the old slow per-cell
  ``CacheSimulator`` loop — the hand-rolled baseline here is as lean as
  the engine's own hot path, so the floor only demands that no path is
  materially (>10%) slower than the seed loop.

The run also writes ``BENCH_6.json`` (repo root by default, ``--json`` to
move or ``--json ''`` to skip) recording the measured timings next to the
pre-refactor baseline captured on the machine that ran the refactor, so the
perf trajectory of the replay core is tracked in version control.

A second, columnar four-way follows: the batch-kernel grid (LRU / FIFO /
CLOCK — the policies with fused ``batch_access`` kernels) is swept four
ways over the same cached binary trace — object serial, object ``jobs=N``,
columnar serial, columnar ``jobs=N`` — with two gates:

* **columnar identity** — all four paths must produce identical per-point
  hit/miss stats: the columnar path is a pure fast path, never a fork;
* **columnar speedup** — columnar serial must replay at >=
  ``--columnar-gate`` (default 3.0x) the object-serial throughput.

The columnar section writes ``BENCH_9.json`` (``--json9``, same
conventions) via :func:`bench_common.emit_bench_json`.

Run it standalone (CI runs this as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_engine.py --requests 20000
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from bench_common import emit_bench_json, usable_cpus

from repro.cache.base import CacheStats
from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, generate_trace, trace_spec
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes

DEFAULT_POLICIES = ("OPT", "LRU", "ARC", "TQ")
DEFAULT_SIZES = (450, 900, 1_800, 3_600)
#: The columnar four-way grid: every policy with a fused batch kernel.
COLUMNAR_POLICIES = ("LRU", "FIFO", "CLOCK")
#: Columnar-speedup gate: columnar serial must replay at this multiple of
#: the object-serial throughput (ISSUE 9 acceptance floor).
COLUMNAR_SPEEDUP_GATE = 3.0

#: The last pre-refactor run of this benchmark (policies owned their stats,
#: CacheSimulator had its own replay loop), captured with the CI settings
#: ``--requests 20000 --repeat 2`` on the refactor machine.  Kept in the
#: BENCH_6.json output as the fixed reference point of the perf trajectory —
#: not used by the gates, which always compare paths measured in-run.
PRE_REFACTOR_BASELINE = {
    "requests": 20_000,
    "repeat": 2,
    "usable_cpus": 1,
    "seed_serial_seconds": 0.577,
    "engine_serial_seconds": 0.437,
    "engine_jobs4_seconds": 0.607,
}

#: Observer-dispatch gate: pipeline serial must stay within this factor of
#: the hand-rolled seed loop.
OVERHEAD_GATE = 1.05


def seed_serial_sweep(requests, cache_sizes, policies):
    """The seed path: a hand-rolled per-request loop per cell.

    No engine, no observers — ``access`` plus inline stats accounting, the
    way the seed's ``CacheSimulator`` worked before the refactor.  This is
    the baseline the observer pipeline is gated against.
    """
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            if policy.offline:
                policy.prepare(requests, 0)
            stats = CacheStats()
            record = stats.record_outcome
            access = policy.access
            for seq, request in enumerate(requests):
                record(request, access(request, seq))
            curves[name].append((float(capacity), stats.read_hit_ratio))
    return curves


def pipeline_serial_sweep(requests, cache_sizes, policies):
    """One observer-pipeline (CacheSimulator) pass per cell, stats only."""
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            result = CacheSimulator(policy).run(requests)
            curves[name].append((float(capacity), result.read_hit_ratio))
    return curves


def engine_sweep(requests, cache_sizes, policies, jobs):
    sweep = sweep_cache_sizes(requests, cache_sizes, policies, jobs=jobs)
    return {name: sweep.curve(name) for name in policies}


def columnar_four_way(spec, cache_sizes, policies, jobs, repeat):
    """Sweep the batch-kernel grid object/columnar x serial/jobs=N.

    Returns ``(timings, sweeps)``: best-of-*repeat* seconds and the
    :class:`SweepResult` per path, all replayed from the same cached binary
    trace so the columnar path decodes straight into arrays.
    """
    cells = [
        SweepCell(
            x=float(capacity),
            specs=tuple(
                PolicySpec(label=name, name=name, capacity=capacity)
                for name in policies
            ),
        )
        for capacity in cache_sizes
    ]
    paths = {
        "object serial": dict(jobs=1, columnar=False),
        f"object jobs={jobs}": dict(jobs=jobs, columnar=False),
        "columnar serial": dict(jobs=1, columnar=True),
        f"columnar jobs={jobs}": dict(jobs=jobs, columnar=True),
    }
    timings, sweeps = {}, {}
    for label, options in paths.items():
        best = None
        for _ in range(max(1, repeat)):
            runner = ParallelSweepRunner(requests=spec, **options)
            started = time.perf_counter()
            sweep = runner.run(cells, parameter="capacity")
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best, sweeps[label] = elapsed, sweep
        timings[label] = best
    return timings, sweeps


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy names",
    )
    parser.add_argument(
        "--sizes", default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated cache sizes (pages)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="time each path as the best of N repeats (default: 3)",
    )
    parser.add_argument(
        "--json", default=str(Path(__file__).resolve().parent.parent / "BENCH_6.json"),
        help="where to write the timing record (empty string to skip)",
    )
    parser.add_argument(
        "--json9",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_9.json"),
        help="where to write the columnar four-way record (empty string to skip)",
    )
    parser.add_argument(
        "--columnar-gate", type=float, default=COLUMNAR_SPEEDUP_GATE,
        help="columnar serial must be this multiple of object serial "
             f"(default: {COLUMNAR_SPEEDUP_GATE})",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report timings only; skip the gates",
    )
    args = parser.parse_args(argv)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    if not policies:
        parser.error("--policies must name at least one policy")
    if not sizes:
        parser.error("--sizes must name at least one cache size")

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    requests = generate_trace(args.trace, settings).requests()
    print(
        f"trace={args.trace} requests={len(requests)} "
        f"grid={len(policies)} policies x {len(sizes)} sizes "
        f"({', '.join(policies)})"
    )

    def timed(fn):
        best, curves = None, None
        for _ in range(max(1, args.repeat)):
            started = time.perf_counter()
            curves = fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, curves

    timings = {}
    timings["seed serial"], seed_curves = timed(
        lambda: seed_serial_sweep(requests, sizes, policies)
    )
    timings["pipeline serial"], pipeline_curves = timed(
        lambda: pipeline_serial_sweep(requests, sizes, policies)
    )
    timings["engine serial"], engine_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=1)
    )
    timings[f"engine jobs={args.jobs}"], parallel_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=args.jobs)
    )

    # --- Correctness: all four paths must agree exactly.
    for name in policies:
        assert pipeline_curves[name] == seed_curves[name], (
            f"{name}: observer pipeline diverged from the seed path"
        )
        assert engine_curves[name] == seed_curves[name], (
            f"{name}: engine serial diverged from the seed path"
        )
        assert parallel_curves[name] == seed_curves[name], (
            f"{name}: engine jobs={args.jobs} diverged from the seed path"
        )
    print("hit-ratio output: identical across all four paths")

    baseline = timings["seed serial"]
    print(f"\n{'path':<20} {'seconds':>8} {'speedup':>8}")
    for path, seconds in timings.items():
        print(f"{path:<20} {seconds:>8.3f} {baseline / seconds:>7.2f}x")

    overhead = timings["pipeline serial"] / baseline
    shared_overhead = timings["engine serial"] / timings["pipeline serial"]
    best_speedup = baseline / min(
        timings["engine serial"], timings[f"engine jobs={args.jobs}"]
    )
    cpus = usable_cpus()
    print(f"\nusable CPUs: {cpus}")
    print(f"observer dispatch overhead: {overhead:.3f}x of the seed loop "
          f"(gate {OVERHEAD_GATE:.2f}x)")

    emit_bench_json(
        args.json,
        "bench_engine",
        {
            "trace": args.trace,
            "requests": len(requests),
            "policies": list(policies),
            "sizes": list(sizes),
            "repeat": args.repeat,
        },
        timings,
        observer_dispatch_overhead=round(overhead, 4),
        overhead_gate=OVERHEAD_GATE,
        shared_replay_overhead=round(shared_overhead, 4),
        best_speedup=round(best_speedup, 4),
        pre_refactor_baseline=PRE_REFACTOR_BASELINE,
    )

    # --- Columnar four-way: the batch-kernel grid, object vs columnar.
    spec = trace_spec(args.trace, settings)
    spec.ensure()
    columnar_policies = tuple(p for p in COLUMNAR_POLICIES)
    col_timings, col_sweeps = columnar_four_way(
        spec, sizes, columnar_policies, args.jobs, args.repeat
    )

    # Hard identity gate: every path yields identical per-point stats.
    reference_label = "object serial"
    reference = col_sweeps[reference_label]
    columnar_identical = True
    for label, sweep in col_sweeps.items():
        if sweep.labels() != reference.labels():
            print(f"FAIL: {label!r} swept different policies than the object path")
            columnar_identical = False
            continue
        for name in reference.labels():
            if sweep.curve(name) != reference.curve(name):
                print(f"FAIL: {label!r} {name} hit-ratio curve diverged")
                columnar_identical = False
            for a, b in zip(sweep.series[name], reference.series[name]):
                if a.result.stats.as_dict() != b.result.stats.as_dict():
                    print(f"FAIL: {label!r} {name} x={a.x:g} stats diverged")
                    columnar_identical = False
    if columnar_identical:
        print("\ncolumnar output: identical across all four paths")

    col_baseline = col_timings[reference_label]
    print(f"\n{'path':<20} {'seconds':>8} {'speedup':>8}   (columnar grid: "
          f"{len(columnar_policies)} policies x {len(sizes)} sizes)")
    for path, seconds in col_timings.items():
        print(f"{path:<20} {seconds:>8.3f} {col_baseline / seconds:>7.2f}x")
    columnar_speedup = col_baseline / col_timings["columnar serial"]
    print(f"columnar serial speedup: {columnar_speedup:.2f}x "
          f"(gate >= {args.columnar_gate:.2f}x)")

    emit_bench_json(
        args.json9,
        "bench_engine_columnar",
        {
            "trace": args.trace,
            "requests": len(requests),
            "policies": list(columnar_policies),
            "sizes": list(sizes),
            "repeat": args.repeat,
            "jobs": args.jobs,
        },
        col_timings,
        columnar_identical=columnar_identical,
        columnar_speedup=round(columnar_speedup, 4),
        columnar_speedup_gate=args.columnar_gate,
    )

    if args.no_check:
        return 0

    ok = True
    if overhead > OVERHEAD_GATE:
        print(f"FAIL: observer pipeline is {overhead:.3f}x the seed loop, "
              f"above the {OVERHEAD_GATE:.2f}x gate")
        ok = False
    if shared_overhead > OVERHEAD_GATE:
        print(f"FAIL: shared replay is {shared_overhead:.3f}x the per-cell "
              f"pipeline, above the {OVERHEAD_GATE:.2f}x gate")
        ok = False
    if cpus >= 4:
        threshold = 2.0
    elif cpus >= 2:
        threshold = 1.2
    else:
        # Single-CPU machine: process-level parallelism cannot reduce
        # wall-clock, and the hand-rolled seed loop is as lean as the
        # engine's hot path — demand only that nothing got materially
        # slower than the seed loop.
        threshold = 0.90
    if best_speedup < threshold:
        print(f"FAIL: best speedup {best_speedup:.2f}x below {threshold:.2f}x "
              f"threshold for {cpus} CPU(s)")
        ok = False
    if not columnar_identical:
        print("FAIL: columnar path diverged from the object path")
        ok = False
    if columnar_speedup < args.columnar_gate:
        print(f"FAIL: columnar serial speedup {columnar_speedup:.2f}x below "
              f"the {args.columnar_gate:.2f}x gate")
        ok = False
    if ok:
        print(f"PASS: best speedup {best_speedup:.2f}x "
              f"(threshold {threshold:.2f}x for {cpus} CPU(s)), "
              f"observer overhead {overhead:.3f}x <= {OVERHEAD_GATE:.2f}x")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
