"""Microbenchmark: shared-replay engine + parallel sweep vs. the seed path.

The seed implementation of ``sweep_cache_sizes`` replayed the request stream
once per (policy, cache-size) cell, strictly serially.  This benchmark runs
the same 4-policy x 4-size grid three ways and verifies they produce
identical read hit ratios:

1. ``seed serial``    — a faithful replica of the seed path: one fresh
                        :class:`CacheSimulator` pass per cell;
2. ``engine serial``  — the shared-replay engine (``jobs=1``): one trace
                        pass feeds every policy of the grid, with the OPT
                        future-read index built once and shared;
3. ``engine jobs=N``  — the same grid fanned out over worker processes.

Run it standalone (CI runs this as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_engine.py --requests 20000

The speedup of (2) over (1) is pure single-core amortisation; (3) adds
process-level parallelism on top and is only expected to win wall-clock on
multi-core machines — the benchmark reports the CPU budget it sees and
scales its pass/fail thresholds accordingly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, generate_trace
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes

DEFAULT_POLICIES = ("OPT", "LRU", "ARC", "TQ")
DEFAULT_SIZES = (450, 900, 1_800, 3_600)


def seed_serial_sweep(requests, cache_sizes, policies):
    """The seed implementation: one independent simulator pass per cell."""
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            result = CacheSimulator(policy).run(requests)
            curves[name].append((float(capacity), result.read_hit_ratio))
    return curves


def engine_sweep(requests, cache_sizes, policies, jobs):
    sweep = sweep_cache_sizes(requests, cache_sizes, policies, jobs=jobs)
    return {name: sweep.curve(name) for name in policies}


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy names",
    )
    parser.add_argument(
        "--sizes", default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated cache sizes (pages)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="time each path as the best of N repeats (default: 3)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report timings only; skip the speedup thresholds",
    )
    args = parser.parse_args(argv)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    if not policies:
        parser.error("--policies must name at least one policy")
    if not sizes:
        parser.error("--sizes must name at least one cache size")

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    requests = generate_trace(args.trace, settings).requests()
    print(
        f"trace={args.trace} requests={len(requests)} "
        f"grid={len(policies)} policies x {len(sizes)} sizes "
        f"({', '.join(policies)})"
    )

    def timed(fn):
        best, curves = None, None
        for _ in range(max(1, args.repeat)):
            started = time.perf_counter()
            curves = fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, curves

    timings = {}
    timings["seed serial"], seed_curves = timed(
        lambda: seed_serial_sweep(requests, sizes, policies)
    )
    timings["engine serial"], engine_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=1)
    )
    timings[f"engine jobs={args.jobs}"], parallel_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=args.jobs)
    )

    # --- Correctness: all three paths must agree exactly.
    for name in policies:
        assert engine_curves[name] == seed_curves[name], (
            f"{name}: engine serial diverged from the seed path"
        )
        assert parallel_curves[name] == seed_curves[name], (
            f"{name}: engine jobs={args.jobs} diverged from the seed path"
        )
    print("hit-ratio output: identical across all three paths")

    baseline = timings["seed serial"]
    print(f"\n{'path':<20} {'seconds':>8} {'speedup':>8}")
    for path, seconds in timings.items():
        print(f"{path:<20} {seconds:>8.3f} {baseline / seconds:>7.2f}x")

    shared_speedup = baseline / timings["engine serial"]
    best_speedup = baseline / min(
        timings["engine serial"], timings[f"engine jobs={args.jobs}"]
    )
    cpus = usable_cpus()
    print(f"\nusable CPUs: {cpus}")
    if args.no_check:
        return 0

    ok = True
    if shared_speedup <= 1.0:
        print("FAIL: shared replay should beat the per-cell seed path")
        ok = False
    if cpus >= 4:
        threshold = 2.0
    elif cpus >= 2:
        threshold = 1.2
    else:
        # Single-CPU machine: process-level parallelism cannot reduce
        # wall-clock, so only the shared-replay amortisation counts.
        threshold = 1.1
    if best_speedup < threshold:
        print(f"FAIL: best speedup {best_speedup:.2f}x below {threshold:.1f}x "
              f"threshold for {cpus} CPU(s)")
        ok = False
    if ok:
        print(f"PASS: best speedup {best_speedup:.2f}x "
              f"(threshold {threshold:.1f}x for {cpus} CPU(s))")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
