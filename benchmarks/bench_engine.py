"""Microbenchmark + gate: observer-pipeline replay vs. the seed path.

The seed implementation of ``sweep_cache_sizes`` replayed the request stream
once per (policy, cache-size) cell, strictly serially, with each policy
mutating its own counters inline.  After the kernel/observer refactor the
policies are pure (``access`` returns an :class:`AccessOutcome`) and all
accounting happens in observers driven by one replay loop.  This benchmark
runs the same 4-policy x 4-size grid four ways and verifies they produce
identical read hit ratios:

1. ``seed serial``    — a faithful replica of the seed path: a hand-rolled
                        per-request loop per cell (``policy.access`` +
                        ``CacheStats.record_outcome`` inline), no engine, no
                        observers;
2. ``pipeline serial``— one :class:`CacheSimulator` pass per cell: the same
                        per-cell structure, but replayed through the
                        observer pipeline (stats observer only);
3. ``engine serial``  — the shared-replay engine (``jobs=1``): one trace
                        pass feeds every policy of the grid, with the OPT
                        future-read index built once and shared;
4. ``engine jobs=N``  — the same grid fanned out over worker processes.

Gates (exit non-zero on violation):

* **observer dispatch** — (2) must stay within 5% of (1): feeding outcomes
  to observers in chunk batches must not tax the hot path relative to the
  seed's inline counter mutation;
* **shared replay** — (3) must stay within 5% of (2): driving the whole
  grid from one loop must never be worse than per-cell runs (it amortises
  trace iteration and the shared OPT index);
* **speedup floor** — CPU-scaled.  With >= 2 usable CPUs the best engine
  path must beat the seed loop outright (2.0x at >= 4 CPUs, 1.2x at 2-3).
  On a single CPU there is no parallelism to win and — unlike the
  pre-refactor bench, whose "seed" baseline was the old slow per-cell
  ``CacheSimulator`` loop — the hand-rolled baseline here is as lean as
  the engine's own hot path, so the floor only demands that no path is
  materially (>10%) slower than the seed loop.

The run also writes ``BENCH_6.json`` (repo root by default, ``--json`` to
move or ``--json ''`` to skip) recording the measured timings next to the
pre-refactor baseline captured on the machine that ran the refactor, so the
perf trajectory of the replay core is tracked in version control.

Run it standalone (CI runs this as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_engine.py --requests 20000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cache.base import CacheStats
from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, generate_trace
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes

DEFAULT_POLICIES = ("OPT", "LRU", "ARC", "TQ")
DEFAULT_SIZES = (450, 900, 1_800, 3_600)

#: The last pre-refactor run of this benchmark (policies owned their stats,
#: CacheSimulator had its own replay loop), captured with the CI settings
#: ``--requests 20000 --repeat 2`` on the refactor machine.  Kept in the
#: BENCH_6.json output as the fixed reference point of the perf trajectory —
#: not used by the gates, which always compare paths measured in-run.
PRE_REFACTOR_BASELINE = {
    "requests": 20_000,
    "repeat": 2,
    "usable_cpus": 1,
    "seed_serial_seconds": 0.577,
    "engine_serial_seconds": 0.437,
    "engine_jobs4_seconds": 0.607,
}

#: Observer-dispatch gate: pipeline serial must stay within this factor of
#: the hand-rolled seed loop.
OVERHEAD_GATE = 1.05


def seed_serial_sweep(requests, cache_sizes, policies):
    """The seed path: a hand-rolled per-request loop per cell.

    No engine, no observers — ``access`` plus inline stats accounting, the
    way the seed's ``CacheSimulator`` worked before the refactor.  This is
    the baseline the observer pipeline is gated against.
    """
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            if policy.offline:
                policy.prepare(requests, 0)
            stats = CacheStats()
            record = stats.record_outcome
            access = policy.access
            for seq, request in enumerate(requests):
                record(request, access(request, seq))
            curves[name].append((float(capacity), stats.read_hit_ratio))
    return curves


def pipeline_serial_sweep(requests, cache_sizes, policies):
    """One observer-pipeline (CacheSimulator) pass per cell, stats only."""
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            result = CacheSimulator(policy).run(requests)
            curves[name].append((float(capacity), result.read_hit_ratio))
    return curves


def engine_sweep(requests, cache_sizes, policies, jobs):
    sweep = sweep_cache_sizes(requests, cache_sizes, policies, jobs=jobs)
    return {name: sweep.curve(name) for name in policies}


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy names",
    )
    parser.add_argument(
        "--sizes", default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated cache sizes (pages)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="time each path as the best of N repeats (default: 3)",
    )
    parser.add_argument(
        "--json", default=str(Path(__file__).resolve().parent.parent / "BENCH_6.json"),
        help="where to write the timing record (empty string to skip)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report timings only; skip the gates",
    )
    args = parser.parse_args(argv)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    if not policies:
        parser.error("--policies must name at least one policy")
    if not sizes:
        parser.error("--sizes must name at least one cache size")

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    requests = generate_trace(args.trace, settings).requests()
    print(
        f"trace={args.trace} requests={len(requests)} "
        f"grid={len(policies)} policies x {len(sizes)} sizes "
        f"({', '.join(policies)})"
    )

    def timed(fn):
        best, curves = None, None
        for _ in range(max(1, args.repeat)):
            started = time.perf_counter()
            curves = fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, curves

    timings = {}
    timings["seed serial"], seed_curves = timed(
        lambda: seed_serial_sweep(requests, sizes, policies)
    )
    timings["pipeline serial"], pipeline_curves = timed(
        lambda: pipeline_serial_sweep(requests, sizes, policies)
    )
    timings["engine serial"], engine_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=1)
    )
    timings[f"engine jobs={args.jobs}"], parallel_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=args.jobs)
    )

    # --- Correctness: all four paths must agree exactly.
    for name in policies:
        assert pipeline_curves[name] == seed_curves[name], (
            f"{name}: observer pipeline diverged from the seed path"
        )
        assert engine_curves[name] == seed_curves[name], (
            f"{name}: engine serial diverged from the seed path"
        )
        assert parallel_curves[name] == seed_curves[name], (
            f"{name}: engine jobs={args.jobs} diverged from the seed path"
        )
    print("hit-ratio output: identical across all four paths")

    baseline = timings["seed serial"]
    print(f"\n{'path':<20} {'seconds':>8} {'speedup':>8}")
    for path, seconds in timings.items():
        print(f"{path:<20} {seconds:>8.3f} {baseline / seconds:>7.2f}x")

    overhead = timings["pipeline serial"] / baseline
    shared_overhead = timings["engine serial"] / timings["pipeline serial"]
    best_speedup = baseline / min(
        timings["engine serial"], timings[f"engine jobs={args.jobs}"]
    )
    cpus = usable_cpus()
    print(f"\nusable CPUs: {cpus}")
    print(f"observer dispatch overhead: {overhead:.3f}x of the seed loop "
          f"(gate {OVERHEAD_GATE:.2f}x)")

    if args.json:
        record = {
            "bench": "bench_engine",
            "grid": {
                "trace": args.trace,
                "requests": len(requests),
                "policies": list(policies),
                "sizes": list(sizes),
                "repeat": args.repeat,
            },
            "usable_cpus": cpus,
            "seconds": {path: round(s, 4) for path, s in timings.items()},
            "observer_dispatch_overhead": round(overhead, 4),
            "overhead_gate": OVERHEAD_GATE,
            "shared_replay_overhead": round(shared_overhead, 4),
            "best_speedup": round(best_speedup, 4),
            "pre_refactor_baseline": PRE_REFACTOR_BASELINE,
        }
        Path(args.json).write_text(
            json.dumps(record, indent=1) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}")

    if args.no_check:
        return 0

    ok = True
    if overhead > OVERHEAD_GATE:
        print(f"FAIL: observer pipeline is {overhead:.3f}x the seed loop, "
              f"above the {OVERHEAD_GATE:.2f}x gate")
        ok = False
    if shared_overhead > OVERHEAD_GATE:
        print(f"FAIL: shared replay is {shared_overhead:.3f}x the per-cell "
              f"pipeline, above the {OVERHEAD_GATE:.2f}x gate")
        ok = False
    if cpus >= 4:
        threshold = 2.0
    elif cpus >= 2:
        threshold = 1.2
    else:
        # Single-CPU machine: process-level parallelism cannot reduce
        # wall-clock, and the hand-rolled seed loop is as lean as the
        # engine's hot path — demand only that nothing got materially
        # slower than the seed loop.
        threshold = 0.90
    if best_speedup < threshold:
        print(f"FAIL: best speedup {best_speedup:.2f}x below {threshold:.2f}x "
              f"threshold for {cpus} CPU(s)")
        ok = False
    if ok:
        print(f"PASS: best speedup {best_speedup:.2f}x "
              f"(threshold {threshold:.2f}x for {cpus} CPU(s)), "
              f"observer overhead {overhead:.3f}x <= {OVERHEAD_GATE:.2f}x")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
