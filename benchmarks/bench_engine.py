"""Microbenchmark + gate: observer-pipeline replay vs. the seed path.

The seed implementation of ``sweep_cache_sizes`` replayed the request stream
once per (policy, cache-size) cell, strictly serially, with each policy
mutating its own counters inline.  After the kernel/observer refactor the
policies are pure (``access`` returns an :class:`AccessOutcome`) and all
accounting happens in observers driven by one replay loop.  This benchmark
runs the same 4-policy x 4-size grid four ways and verifies they produce
identical read hit ratios:

1. ``seed serial``    — a faithful replica of the seed path: a hand-rolled
                        per-request loop per cell (``policy.access`` +
                        ``CacheStats.record_outcome`` inline), no engine, no
                        observers;
2. ``pipeline serial``— one :class:`CacheSimulator` pass per cell: the same
                        per-cell structure, but replayed through the
                        observer pipeline (stats observer only);
3. ``engine serial``  — the shared-replay engine (``jobs=1``): one trace
                        pass feeds every policy of the grid, with the OPT
                        future-read index built once and shared;
4. ``engine jobs=N``  — the same grid fanned out over worker processes.

Gates (exit non-zero on violation):

* **observer dispatch** — (2) must stay within 5% of (1): feeding outcomes
  to observers in chunk batches must not tax the hot path relative to the
  seed's inline counter mutation;
* **shared replay** — (3) must stay within 5% of (2): driving the whole
  grid from one loop must never be worse than per-cell runs (it amortises
  trace iteration and the shared OPT index);
* **speedup floor** — CPU-scaled.  With >= 2 usable CPUs the best engine
  path must beat the seed loop outright (2.0x at >= 4 CPUs, 1.2x at 2-3).
  On a single CPU there is no parallelism to win and — unlike the
  pre-refactor bench, whose "seed" baseline was the old slow per-cell
  ``CacheSimulator`` loop — the hand-rolled baseline here is as lean as
  the engine's own hot path, so the floor only demands that no path is
  materially (>10%) slower than the seed loop.

The run also writes ``BENCH_6.json`` (repo root by default, ``--json`` to
move or ``--json ''`` to skip) recording the measured timings next to the
pre-refactor baseline captured on the machine that ran the refactor, so the
perf trajectory of the replay core is tracked in version control.

A second, columnar four-way follows: the batch-kernel grid (LRU / FIFO /
CLOCK plus the hint-aware and adaptive kernels added since — ARC, CAR and
CLIC) is swept four ways over the same cached binary trace — object serial,
object ``jobs=N``, columnar serial, columnar ``jobs=N`` — with two gates:

* **columnar identity** — all four paths must produce identical per-point
  hit/miss stats: the columnar path is a pure fast path, never a fork;
* **columnar speedup (full grid)** — columnar serial must replay the
  full grid at >= ``--columnar-gate`` (default 2.0x) the object-serial
  throughput.  The hint-aware/adaptive kernels are intrinsically
  sequential state machines (every request reads state the previous one
  wrote), so their batch loops win ~1.5-2.5x over scalar replay — they
  bound the full-grid aggregate far below the infra-only number, and the
  gate is set accordingly (measured value in ``BENCH_9.json``);
* **columnar core speedup** — the LRU/FIFO/CLOCK subset, where batching
  eliminates nearly all per-request engine overhead, must replay at >=
  ``--columnar-core-gate`` (default 3.5x, raised from the 3.0x the grid
  first shipped with).  This continues the metric the original
  ``BENCH_9.json`` recorded, so the perf trajectory stays comparable.

``--jobs`` is clamped to the usable CPU count before any sweep runs
(over-subscribing a 1-CPU runner just adds fork cost while the record
claims parallelism); both the requested and the effective counts land in
the JSON records.

The columnar section writes ``BENCH_9.json`` (``--json9``, same
conventions) via :func:`bench_common.emit_bench_json`.

Run it standalone (CI runs this as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_engine.py --requests 20000
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from bench_common import effective_jobs, emit_bench_json, usable_cpus

from repro.cache.base import CacheStats
from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, generate_trace, trace_spec
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes

DEFAULT_POLICIES = ("OPT", "LRU", "ARC", "TQ")
DEFAULT_SIZES = (450, 900, 1_800, 3_600)
#: The columnar four-way grid: every policy with a fused batch kernel.
COLUMNAR_POLICIES = ("LRU", "FIFO", "CLOCK", "ARC", "CAR", "CLIC")
#: The engine-overhead-dominated subset whose aggregate the original
#: BENCH_9.json gated at 3.0x; kept as its own metric so the number stays
#: comparable across PRs now that the heavy kernels joined the grid.
COLUMNAR_CORE_POLICIES = ("LRU", "FIFO", "CLOCK")
#: Full-grid columnar-speedup gate.  The hint-aware/adaptive kernels (ARC,
#: CAR, CLIC) are sequential state machines whose batch loops win ~1.5-2.5x
#: over scalar replay; they dominate the grid's columnar time and cap the
#: aggregate (measured ~2.4x on the 1-CPU reference box) far below the
#: core subset's number.
COLUMNAR_SPEEDUP_GATE = 2.0
#: Core-subset gate, raised from the original 3.0 (measured ~4.1x).
COLUMNAR_CORE_SPEEDUP_GATE = 3.5

#: The last pre-refactor run of this benchmark (policies owned their stats,
#: CacheSimulator had its own replay loop), captured with the CI settings
#: ``--requests 20000 --repeat 2`` on the refactor machine.  Kept in the
#: BENCH_6.json output as the fixed reference point of the perf trajectory —
#: not used by the gates, which always compare paths measured in-run.
PRE_REFACTOR_BASELINE = {
    "requests": 20_000,
    "repeat": 2,
    "usable_cpus": 1,
    "seed_serial_seconds": 0.577,
    "engine_serial_seconds": 0.437,
    "engine_jobs4_seconds": 0.607,
}

#: Observer-dispatch gate: pipeline serial must stay within this factor of
#: the hand-rolled seed loop.
OVERHEAD_GATE = 1.05


def seed_serial_sweep(requests, cache_sizes, policies):
    """The seed path: a hand-rolled per-request loop per cell.

    No engine, no observers — ``access`` plus inline stats accounting, the
    way the seed's ``CacheSimulator`` worked before the refactor.  This is
    the baseline the observer pipeline is gated against.
    """
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            if policy.offline:
                policy.prepare(requests, 0)
            stats = CacheStats()
            record = stats.record_outcome
            access = policy.access
            for seq, request in enumerate(requests):
                record(request, access(request, seq))
            curves[name].append((float(capacity), stats.read_hit_ratio))
    return curves


def pipeline_serial_sweep(requests, cache_sizes, policies):
    """One observer-pipeline (CacheSimulator) pass per cell, stats only."""
    curves = {}
    for name in policies:
        curves[name] = []
        for capacity in cache_sizes:
            policy = create_policy(name, capacity=capacity)
            result = CacheSimulator(policy).run(requests)
            curves[name].append((float(capacity), result.read_hit_ratio))
    return curves


def engine_sweep(requests, cache_sizes, policies, jobs):
    sweep = sweep_cache_sizes(requests, cache_sizes, policies, jobs=jobs)
    return {name: sweep.curve(name) for name in policies}


def _grid_cells(cache_sizes, policies):
    return [
        SweepCell(
            x=float(capacity),
            specs=tuple(
                PolicySpec(label=name, name=name, capacity=capacity)
                for name in policies
            ),
        )
        for capacity in cache_sizes
    ]


def _time_paths(spec, cells, paths, repeat):
    timings, sweeps = {}, {}
    for label, options in paths.items():
        best = None
        for _ in range(max(1, repeat)):
            runner = ParallelSweepRunner(requests=spec, **options)
            started = time.perf_counter()
            sweep = runner.run(cells, parameter="capacity")
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best, sweeps[label] = elapsed, sweep
        timings[label] = best
    return timings, sweeps


def columnar_four_way(spec, cache_sizes, policies, jobs, repeat):
    """Sweep the batch-kernel grid object/columnar x serial/jobs=N.

    Returns ``(timings, sweeps)``: best-of-*repeat* seconds and the
    :class:`SweepResult` per path, all replayed from the same cached binary
    trace so the columnar path decodes straight into arrays.
    """
    paths = {
        "object serial": dict(jobs=1, columnar=False),
        f"object jobs={jobs}": dict(jobs=jobs, columnar=False),
        "columnar serial": dict(jobs=1, columnar=True),
        f"columnar jobs={jobs}": dict(jobs=jobs, columnar=True),
    }
    return _time_paths(spec, _grid_cells(cache_sizes, policies), paths, repeat)


def columnar_serial_pair(spec, cache_sizes, policies, repeat):
    """Time object-serial vs columnar-serial over a (sub)grid.

    Used for the core LRU/FIFO/CLOCK subset, whose speedup is gated
    separately from the full grid (see module docstring).
    """
    paths = {
        "core object serial": dict(jobs=1, columnar=False),
        "core columnar serial": dict(jobs=1, columnar=True),
    }
    timings, _ = _time_paths(spec, _grid_cells(cache_sizes, policies), paths, repeat)
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy names",
    )
    parser.add_argument(
        "--sizes", default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated cache sizes (pages)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="time each path as the best of N repeats (default: 3)",
    )
    parser.add_argument(
        "--json", default=str(Path(__file__).resolve().parent.parent / "BENCH_6.json"),
        help="where to write the timing record (empty string to skip)",
    )
    parser.add_argument(
        "--json9",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_9.json"),
        help="where to write the columnar four-way record (empty string to skip)",
    )
    parser.add_argument(
        "--columnar-gate", type=float, default=COLUMNAR_SPEEDUP_GATE,
        help="columnar serial must be this multiple of object serial over "
             f"the full batch-kernel grid (default: {COLUMNAR_SPEEDUP_GATE})",
    )
    parser.add_argument(
        "--columnar-core-gate", type=float, default=COLUMNAR_CORE_SPEEDUP_GATE,
        help="same gate over the LRU/FIFO/CLOCK core subset "
             f"(default: {COLUMNAR_CORE_SPEEDUP_GATE})",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report timings only; skip the gates",
    )
    args = parser.parse_args(argv)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    if not policies:
        parser.error("--policies must name at least one policy")
    if not sizes:
        parser.error("--sizes must name at least one cache size")

    jobs = effective_jobs(args.jobs)
    if jobs != args.jobs:
        print(f"jobs: requested {args.jobs}, clamped to {jobs} usable CPU(s)")

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    requests = generate_trace(args.trace, settings).requests()
    print(
        f"trace={args.trace} requests={len(requests)} "
        f"grid={len(policies)} policies x {len(sizes)} sizes "
        f"({', '.join(policies)})"
    )

    def timed(fn):
        best, curves = None, None
        for _ in range(max(1, args.repeat)):
            started = time.perf_counter()
            curves = fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, curves

    timings = {}
    timings["seed serial"], seed_curves = timed(
        lambda: seed_serial_sweep(requests, sizes, policies)
    )
    timings["pipeline serial"], pipeline_curves = timed(
        lambda: pipeline_serial_sweep(requests, sizes, policies)
    )
    timings["engine serial"], engine_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=1)
    )
    timings[f"engine jobs={jobs}"], parallel_curves = timed(
        lambda: engine_sweep(requests, sizes, policies, jobs=jobs)
    )

    # --- Correctness: all four paths must agree exactly.
    for name in policies:
        assert pipeline_curves[name] == seed_curves[name], (
            f"{name}: observer pipeline diverged from the seed path"
        )
        assert engine_curves[name] == seed_curves[name], (
            f"{name}: engine serial diverged from the seed path"
        )
        assert parallel_curves[name] == seed_curves[name], (
            f"{name}: engine jobs={jobs} diverged from the seed path"
        )
    print("hit-ratio output: identical across all four paths")

    baseline = timings["seed serial"]
    print(f"\n{'path':<20} {'seconds':>8} {'speedup':>8}")
    for path, seconds in timings.items():
        print(f"{path:<20} {seconds:>8.3f} {baseline / seconds:>7.2f}x")

    overhead = timings["pipeline serial"] / baseline
    shared_overhead = timings["engine serial"] / timings["pipeline serial"]
    best_speedup = baseline / min(
        timings["engine serial"], timings[f"engine jobs={jobs}"]
    )
    cpus = usable_cpus()
    print(f"\nusable CPUs: {cpus}")
    print(f"observer dispatch overhead: {overhead:.3f}x of the seed loop "
          f"(gate {OVERHEAD_GATE:.2f}x)")

    emit_bench_json(
        args.json,
        "bench_engine",
        {
            "trace": args.trace,
            "requests": len(requests),
            "policies": list(policies),
            "sizes": list(sizes),
            "repeat": args.repeat,
            "jobs_requested": args.jobs,
            "jobs_effective": jobs,
        },
        timings,
        observer_dispatch_overhead=round(overhead, 4),
        overhead_gate=OVERHEAD_GATE,
        shared_replay_overhead=round(shared_overhead, 4),
        best_speedup=round(best_speedup, 4),
        pre_refactor_baseline=PRE_REFACTOR_BASELINE,
    )

    # --- Columnar four-way: the batch-kernel grid, object vs columnar.
    spec = trace_spec(args.trace, settings)
    spec.ensure()
    columnar_policies = tuple(p for p in COLUMNAR_POLICIES)
    col_timings, col_sweeps = columnar_four_way(
        spec, sizes, columnar_policies, jobs, args.repeat
    )

    # Hard identity gate: every path yields identical per-point stats.
    reference_label = "object serial"
    reference = col_sweeps[reference_label]
    columnar_identical = True
    for label, sweep in col_sweeps.items():
        if sweep.labels() != reference.labels():
            print(f"FAIL: {label!r} swept different policies than the object path")
            columnar_identical = False
            continue
        for name in reference.labels():
            if sweep.curve(name) != reference.curve(name):
                print(f"FAIL: {label!r} {name} hit-ratio curve diverged")
                columnar_identical = False
            for a, b in zip(sweep.series[name], reference.series[name]):
                if a.result.stats.as_dict() != b.result.stats.as_dict():
                    print(f"FAIL: {label!r} {name} x={a.x:g} stats diverged")
                    columnar_identical = False
    if columnar_identical:
        print("\ncolumnar output: identical across all four paths")

    col_baseline = col_timings[reference_label]
    print(f"\n{'path':<20} {'seconds':>8} {'speedup':>8}   (columnar grid: "
          f"{len(columnar_policies)} policies x {len(sizes)} sizes)")
    for path, seconds in col_timings.items():
        print(f"{path:<20} {seconds:>8.3f} {col_baseline / seconds:>7.2f}x")
    columnar_speedup = col_baseline / col_timings["columnar serial"]
    print(f"columnar serial speedup: {columnar_speedup:.2f}x "
          f"(gate >= {args.columnar_gate:.2f}x)")

    core_policies = tuple(
        p for p in COLUMNAR_CORE_POLICIES if p in columnar_policies
    )
    core_timings = columnar_serial_pair(spec, sizes, core_policies, args.repeat)
    columnar_core_speedup = (
        core_timings["core object serial"] / core_timings["core columnar serial"]
    )
    print(f"columnar core speedup ({'/'.join(core_policies)}): "
          f"{columnar_core_speedup:.2f}x (gate >= {args.columnar_core_gate:.2f}x)")

    emit_bench_json(
        args.json9,
        "bench_engine_columnar",
        {
            "trace": args.trace,
            "requests": len(requests),
            "policies": list(columnar_policies),
            "core_policies": list(core_policies),
            "sizes": list(sizes),
            "repeat": args.repeat,
            "jobs_requested": args.jobs,
            "jobs_effective": jobs,
        },
        {**col_timings, **core_timings},
        columnar_identical=columnar_identical,
        columnar_speedup=round(columnar_speedup, 4),
        columnar_speedup_gate=args.columnar_gate,
        columnar_core_speedup=round(columnar_core_speedup, 4),
        columnar_core_speedup_gate=args.columnar_core_gate,
    )

    if args.no_check:
        return 0

    ok = True
    if overhead > OVERHEAD_GATE:
        print(f"FAIL: observer pipeline is {overhead:.3f}x the seed loop, "
              f"above the {OVERHEAD_GATE:.2f}x gate")
        ok = False
    if shared_overhead > OVERHEAD_GATE:
        print(f"FAIL: shared replay is {shared_overhead:.3f}x the per-cell "
              f"pipeline, above the {OVERHEAD_GATE:.2f}x gate")
        ok = False
    if cpus >= 4:
        threshold = 2.0
    elif cpus >= 2:
        threshold = 1.2
    else:
        # Single-CPU machine: process-level parallelism cannot reduce
        # wall-clock, and the hand-rolled seed loop is as lean as the
        # engine's hot path — demand only that nothing got materially
        # slower than the seed loop.
        threshold = 0.90
    if best_speedup < threshold:
        print(f"FAIL: best speedup {best_speedup:.2f}x below {threshold:.2f}x "
              f"threshold for {cpus} CPU(s)")
        ok = False
    if not columnar_identical:
        print("FAIL: columnar path diverged from the object path")
        ok = False
    if columnar_speedup < args.columnar_gate:
        print(f"FAIL: columnar serial speedup {columnar_speedup:.2f}x below "
              f"the {args.columnar_gate:.2f}x gate")
        ok = False
    if columnar_core_speedup < args.columnar_core_gate:
        print(f"FAIL: columnar core speedup {columnar_core_speedup:.2f}x "
              f"below the {args.columnar_core_gate:.2f}x gate")
        ok = False
    if ok:
        print(f"PASS: best speedup {best_speedup:.2f}x "
              f"(threshold {threshold:.2f}x for {cpus} CPU(s)), "
              f"observer overhead {overhead:.3f}x <= {OVERHEAD_GATE:.2f}x")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
