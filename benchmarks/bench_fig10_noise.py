"""Figure 10 — effect of injected noise hint types on CLIC (k fixed at 100)."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_sweep
from repro.experiments.noise import run_noise_experiment


def test_fig10_noise_hint_types(benchmark):
    sweep = benchmark.pedantic(
        run_noise_experiment,
        kwargs={
            "trace_names": ("DB2_C60", "DB2_C300", "DB2_C540"),
            "noise_levels": (0, 1, 2, 3),
            "cache_size": 3_600,
            "top_k": 100,
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    print_sweep("Figure 10: CLIC read hit ratio vs. injected noise hint types T", sweep)

    # Noise dilutes the informative hint sets, so it should never help much,
    # and the degradation grows with T (the paper sees mild degradation for
    # the high-locality trace and substantial degradation for the others).
    for name in ("DB2_C60", "DB2_C300"):
        ratios = dict(zip(sweep.xs(name), sweep.hit_ratios(name)))
        assert ratios[3.0] <= ratios[0.0] + 0.05
