"""Figure 11 — three DB2 clients sharing one CLIC cache vs. static partitioning."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_rows
from repro.experiments.multiclient import run_multiclient_experiment


def test_fig11_multiclient_sharing(benchmark):
    result = benchmark.pedantic(
        run_multiclient_experiment,
        kwargs={
            "trace_names": ("DB2_C60", "DB2_C300", "DB2_C540"),
            "shared_cache_size": 3_600,            # the paper's 180K pages, scaled
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 11: shared CLIC cache vs. 3 equal private CLIC caches",
        result.as_rows(),
        columns=["trace", "shared_hit_ratio", "private_hit_ratio"],
    )

    # Paper findings: the shared cache concentrates on the high-locality
    # DB2_C60 client and wins on overall hit ratio versus equal partitioning.
    assert result.shared_per_client["DB2_C60"] >= result.private_per_client["DB2_C60"]
    assert result.shared_overall >= result.private_overall - 0.01
    best_client = max(result.shared_per_client, key=result.shared_per_client.get)
    assert best_client == "DB2_C60"
