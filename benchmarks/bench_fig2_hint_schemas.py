"""Figure 2 — hint types and their value-domain cardinalities."""

from __future__ import annotations

from bench_common import print_rows
from repro.experiments.schemas_table import run_hint_schema_table


def test_fig2_hint_schemas(benchmark):
    rows = benchmark(run_hint_schema_table)
    print_rows(
        "Figure 2: hint types of the DB2-like and MySQL-like clients",
        rows,
        columns=["dbms", "hint_type", "cardinality_tpcc", "cardinality_tpch", "description"],
    )
    assert len(rows) == 9
