"""Figure 3 — hint-set priority vs. frequency scatter for the DB2 TPC-C trace."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_rows
from repro.experiments.hint_priorities import run_hint_priority_scatter


def test_fig3_hint_priority_scatter(benchmark):
    rows = benchmark.pedantic(
        run_hint_priority_scatter,
        kwargs={"trace_name": "DB2_C60", "settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 3: hint-set priorities for the DB2_C60 trace (top 15 by priority)",
        rows[:15],
        columns=["hint_values", "frequency", "priority", "read_hit_rate", "mean_distance"],
    )
    # The paper's observation: priorities span orders of magnitude, with a few
    # hint sets standing far above the rest.
    assert rows
    priorities = [row["priority"] for row in rows]
    assert priorities[0] > 5 * priorities[-1]
