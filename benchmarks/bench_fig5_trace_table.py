"""Figure 5 — summary table of the standard (scaled) I/O request traces."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_rows
from repro.experiments.traces_table import run_trace_table


def test_fig5_trace_table(benchmark):
    rows = benchmark.pedantic(
        run_trace_table,
        kwargs={"settings": BENCH_SETTINGS},
        rounds=1,
        iterations=1,
    )
    print_rows(
        "Figure 5: standard traces (scaled 1/50 from the paper's configurations)",
        rows,
        columns=[
            "trace", "dbms", "workload", "db_size_pages", "dbms_buffer_pages",
            "requests", "distinct_hint_sets", "distinct_pages",
        ],
    )
    assert len(rows) == 8
    for row in rows:
        assert row["distinct_hint_sets"] > 0
        assert row["distinct_pages"] > 0
