"""Figure 6 — read hit ratio vs. server cache size for the DB2 TPC-C traces."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_sweep
from repro.experiments.policies import FIGURE6_TRACES, run_figure6


def test_fig6_db2_tpcc_policy_comparison(benchmark):
    results = benchmark.pedantic(
        run_figure6, kwargs={"settings": BENCH_SETTINGS}, rounds=1, iterations=1
    )
    for name in FIGURE6_TRACES:
        print_sweep(f"Figure 6 ({name}): read hit ratio vs. server cache size", results[name])

    # Expected shape (paper Section 6.1): OPT upper-bounds everything, and on
    # the low-locality traces the hint-aware policies beat the hint-oblivious
    # ones by a wide margin.
    for name in FIGURE6_TRACES:
        sweep = results[name]
        for index in range(len(sweep.xs("OPT"))):
            opt = sweep.hit_ratios("OPT")[index]
            for label in ("LRU", "ARC", "TQ", "CLIC"):
                assert opt >= sweep.hit_ratios(label)[index] - 1e-9
    low_locality = results["DB2_C300"]
    middle = len(low_locality.xs("CLIC")) // 2
    assert low_locality.hit_ratios("CLIC")[middle] > low_locality.hit_ratios("LRU")[middle]
    assert low_locality.hit_ratios("TQ")[middle] > low_locality.hit_ratios("LRU")[middle]
