"""Figure 7 — read hit ratio vs. server cache size for the DB2 TPC-H traces."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_sweep
from repro.experiments.policies import FIGURE7_TRACES, run_figure7


def test_fig7_db2_tpch_policy_comparison(benchmark):
    results = benchmark.pedantic(
        run_figure7, kwargs={"settings": BENCH_SETTINGS}, rounds=1, iterations=1
    )
    for name in FIGURE7_TRACES:
        print_sweep(f"Figure 7 ({name}): read hit ratio vs. server cache size", results[name])

    for name in FIGURE7_TRACES:
        sweep = results[name]
        for index in range(len(sweep.xs("OPT"))):
            opt = sweep.hit_ratios("OPT")[index]
            for label in ("LRU", "ARC", "TQ", "CLIC"):
                assert opt >= sweep.hit_ratios(label)[index] - 1e-9
    # The small-first-tier-buffer trace is where hints pay off most clearly:
    # CLIC should comfortably beat plain LRU there (paper: more than 2x the
    # best hint-oblivious policy on several TPC-H configurations).
    h80 = results["DB2_H80"]
    middle = len(h80.xs("CLIC")) // 2
    assert h80.hit_ratios("CLIC")[middle] > h80.hit_ratios("LRU")[middle]
