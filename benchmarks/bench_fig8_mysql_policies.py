"""Figure 8 — read hit ratio vs. server cache size for the MySQL TPC-H traces."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_sweep
from repro.experiments.policies import FIGURE8_TRACES, run_figure8


def test_fig8_mysql_policy_comparison(benchmark):
    results = benchmark.pedantic(
        run_figure8, kwargs={"settings": BENCH_SETTINGS}, rounds=1, iterations=1
    )
    for name in FIGURE8_TRACES:
        print_sweep(f"Figure 8 ({name}): read hit ratio vs. server cache size", results[name])

    for name in FIGURE8_TRACES:
        sweep = results[name]
        for index in range(len(sweep.xs("OPT"))):
            opt = sweep.hit_ratios("OPT")[index]
            for label in ("LRU", "ARC", "TQ", "CLIC"):
                assert opt >= sweep.hit_ratios(label)[index] - 1e-9
        # CLIC exploits the MySQL hints (file id / request type), so it should
        # beat plain LRU on these traces.
        middle = len(sweep.xs("CLIC")) // 2
        assert sweep.hit_ratios("CLIC")[middle] > sweep.hit_ratios("LRU")[middle]
