"""Figure 9 — effect of top-k hint-set filtering on CLIC's read hit ratio."""

from __future__ import annotations

from bench_common import BENCH_SETTINGS, print_sweep
from repro.experiments.topk import run_topk_experiment


def test_fig9_topk_filtering(benchmark):
    sweep = benchmark.pedantic(
        run_topk_experiment,
        kwargs={
            "trace_names": ("DB2_C60", "DB2_C300", "DB2_C540"),
            "cache_size": 3_600,                    # the paper's 180K pages, scaled
            "k_values": (1, 2, 5, 10, 20, 50, 100, None),
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    print_sweep("Figure 9: CLIC read hit ratio vs. number of tracked hint sets k", sweep)

    # Paper finding: k=20 recovers (nearly) the track-everything hit ratio.
    for name in ("DB2_C60", "DB2_C300"):
        points = {point.x: point.read_hit_ratio for point in sweep.series[name]}
        full = points[max(points)]
        k20 = points[20.0]
        assert k20 >= full - 0.08
