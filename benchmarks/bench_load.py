"""Microbenchmark: queueing-observer overhead over plain replay.

Replays the ``load`` experiment's policy grid (CLIC / ARC / LRU, unified
and 4-shard hash-routed) over one standard trace twice per round: once
plain — the closed-loop priced replay every other experiment runs — and
once with the open-loop :class:`~repro.simulation.queueing.QueueingObserver`
attached at a fixed offered load.  The observer rides the same outcome
stream as the stats/cost observers, shares one arrival tape across the
grid and does its event-clock arithmetic in integer nanoseconds on the
vectorised Lindley path, so attaching it must stay cheap.  Three gates
make this a CI smoke test:

* attaching the observer must not perturb the replay: the plain and
  queued runs must produce byte-identical hit/miss stats per policy;
* the queueing accounting must be complete: every queued result carries
  exactly the replayed request count with a utilization in (0, 1];
* the queued pass must stay within ``--max-overhead`` (default 1.10x) of
  the plain pass.  Each round times the two passes back to back and the
  gate takes the *minimum* of the per-round ratios: pairing cancels
  machine-wide drift (a slow period hits both passes of a round equally),
  and on shared CI runners noise is additive — a scheduler spike can only
  inflate a round's ratio, so the cleanest round is the best estimate of
  the observer's intrinsic cost.  A real regression (say a 1.3x observer)
  inflates every round and cannot hide from the minimum.  The median
  ratio and best-of-round times are reported and recorded alongside.

The run also writes ``BENCH_7.json`` (repo root by default, ``--json`` to
move or ``--json ''`` to skip) recording the measured timings.

Run it standalone::

    PYTHONPATH=src python benchmarks/bench_load.py --requests 20000
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from bench_common import emit_bench_json

from repro.experiments.common import ExperimentSettings, generate_trace
from repro.experiments.latency import _policy_spec
from repro.experiments.load import reference_capacity_rps
from repro.simulation.engine import MultiPolicySimulator
from repro.workloads.standard import STANDARD_TRACES

#: The load experiment's default grid: every policy unified and sharded.
DEFAULT_POLICIES = ("CLIC", "ARC", "LRU")
DEFAULT_SHARDS = 4


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--cache-size", type=int, default=3_600)
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy names",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="shard count for the clustered half of the grid (1 disables)",
    )
    parser.add_argument(
        "--offered-load", type=float, default=0.9,
        help="offered-load fraction the queued pass runs at (default: 0.9)",
    )
    parser.add_argument(
        "--repeat", type=int, default=7,
        help="paired plain/queued timing rounds (default: 7)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=1.10,
        help="gate: queued time / plain time must stay below this (default: 1.10)",
    )
    parser.add_argument(
        "--json", default=str(Path(__file__).resolve().parent.parent / "BENCH_7.json"),
        help="where to write the timing record (empty string to skip)",
    )
    args = parser.parse_args(argv)
    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    if not policies:
        parser.error("--policies must name at least one policy")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.offered_load <= 0.0:
        parser.error("--offered-load must be > 0")

    settings = ExperimentSettings(target_requests=args.requests, seed=args.seed)
    config = STANDARD_TRACES.get(args.trace)
    page_span = config.database_pages if config is not None else None
    requests = generate_trace(args.trace, settings).requests()
    cost_model = settings.cost_model(page_span=page_span)
    capacity_rps = reference_capacity_rps(
        args.trace, args.cache_size, policies[0], settings, page_span
    )
    queueing_model = settings.queueing_model(
        capacity_rps, page_span=page_span
    ).scaled(args.offered_load)
    shard_variants = [1] + ([args.shards] if args.shards > 1 else [])
    specs = [
        _policy_spec(policy, args.cache_size, settings, shards)
        for shards in shard_variants
        for policy in policies
    ]
    print(
        f"trace={args.trace} requests={len(requests)} grid={len(specs)} specs "
        f"offered_load={args.offered_load} "
        f"(capacity {capacity_rps:,.0f} req/s, arrival {settings.arrival})"
    )

    def replay(model):
        engine = MultiPolicySimulator(
            [spec.build() for spec in specs],
            cost_model=cost_model,
            queueing_model=model,
        )
        started = time.perf_counter()
        results = engine.run(requests)
        return results, time.perf_counter() - started

    # --- Timing: paired rounds; the gate metric is the median paired ratio.
    plain_best = queued_best = None
    plain_results = queued_results = None
    ratios = []
    for _ in range(max(1, args.repeat)):
        results, plain_elapsed = replay(None)
        if plain_best is None or plain_elapsed < plain_best:
            plain_best, plain_results = plain_elapsed, results
        results, queued_elapsed = replay(queueing_model)
        if queued_best is None or queued_elapsed < queued_best:
            queued_best, queued_results = queued_elapsed, results
        ratios.append(queued_elapsed / plain_elapsed)
    ratios.sort()
    overhead = ratios[0]
    middle = len(ratios) // 2
    if len(ratios) % 2:
        median_ratio = ratios[middle]
    else:
        median_ratio = (ratios[middle - 1] + ratios[middle]) / 2.0

    # --- Gate 1: the observer must not perturb the replay itself.
    for spec, plain, queued in zip(specs, plain_results, queued_results):
        if plain.stats != queued.stats:
            print(f"FAIL: attaching the queueing observer changed {spec.label!r} "
                  "hit/miss stats")
            return 1

    # --- Gate 2: complete queueing accounting on every queued result.
    for spec, result in zip(specs, queued_results):
        stats = result.queueing
        if stats is None or stats.request_count != len(requests):
            print(f"FAIL: {spec.label!r} queueing stats cover "
                  f"{0 if stats is None else stats.request_count} of "
                  f"{len(requests)} requests")
            return 1
        if not 0.0 < stats.utilization <= 1.0:
            print(f"FAIL: {spec.label!r} utilization {stats.utilization!r} "
                  "outside (0, 1]")
            return 1

    count = len(requests) * len(specs)
    print(
        f"plain:    {count / plain_best:10.0f} policy-events/s ({plain_best:.3f}s best)\n"
        f"queued:   {count / queued_best:10.0f} policy-events/s ({queued_best:.3f}s best)\n"
        f"overhead: {overhead:.3f}x cleanest of {len(ratios)} paired rounds "
        f"(median {median_ratio:.3f}x, gate: < {args.max_overhead:.2f}x)"
    )

    emit_bench_json(
        args.json,
        "bench_load",
        {
            "trace": args.trace,
            "requests": len(requests),
            "policies": list(policies),
            "shards": shard_variants,
            "cache_size": args.cache_size,
            "offered_load": args.offered_load,
            "repeat": args.repeat,
        },
        {
            "plain replay": plain_best,
            "queued replay": queued_best,
        },
        queueing_observer_overhead=round(overhead, 4),
        median_paired_ratio=round(median_ratio, 4),
        paired_round_ratios=[round(r, 4) for r in ratios],
        overhead_gate=args.max_overhead,
    )

    if overhead >= args.max_overhead:
        print("FAIL: queueing observer overhead exceeds the gate")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
