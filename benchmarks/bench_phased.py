"""Microbenchmark: phased-trace streaming vs. the standard streams it composes.

Generates one phased schedule (:mod:`repro.workloads.phased`) end to end and
the same request volume through the plain per-tenant
:class:`~repro.workloads.standard.StandardTraceStream` generators, and
reports both request rates.  The phased layer adds only round-robin
scheduling and page remapping on top of the underlying generators, so its
overhead must stay small.  Two gates make this a CI smoke test:

* the phased stream must emit exactly the plan's request count, with every
  tenant's pages inside its own stride-aligned range (no aliasing);
* phased generation must stay within ``--max-overhead`` (default 1.5x) of
  the combined plain-stream generation time for the same work.

Run it standalone::

    PYTHONPATH=src python benchmarks/bench_phased.py --requests 20000
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.workloads.phased import (
    PHASE_PLANS,
    PhasedTraceStream,
    build_phase_plan,
)
from repro.workloads.standard import StandardTraceStream


def _drain(iterable) -> tuple[int, float]:
    started = time.perf_counter()
    count = 0
    for _ in iterable:
        count += 1
    return count, time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--plan", default="churn", choices=sorted(PHASE_PLANS))
    parser.add_argument("--requests", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="time each generator as the best of N repeats (default: 2)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=1.5,
        help="gate: phased time / plain time must stay below this (default: 1.5)",
    )
    args = parser.parse_args(argv)

    plan = build_phase_plan(args.plan, args.requests, seed=args.seed)

    # --- Correctness gate: exact count + disjoint per-tenant page ranges.
    stream = PhasedTraceStream(plan)
    stride = stream.page_stride
    ranges: dict[str, int] = {}
    count = 0
    for request in stream:
        count += 1
        slot = request.page // stride
        previous = ranges.setdefault(request.client_id, slot)
        if previous != slot:
            print(
                f"FAIL: client {request.client_id!r} seen in page ranges "
                f"{previous} and {slot}"
            )
            return 1
    if count != plan.total_requests:
        print(f"FAIL: plan promises {plan.total_requests} requests, got {count}")
        return 1
    if len(ranges) != len(plan.distinct_clients()):
        print(
            f"FAIL: {len(plan.distinct_clients())} tenants but "
            f"{len(ranges)} page ranges"
        )
        return 1
    print(
        f"plan={plan.name} requests={count} tenants={len(ranges)} "
        f"stride={stride} (ranges disjoint)"
    )

    # --- Throughput: phased vs. the plain per-tenant generators.
    def phased_once():
        return _drain(PhasedTraceStream(plan))

    def plain_once():
        total = 0.0
        # Generate each tenant's share through a bare StandardTraceStream:
        # the same underlying work the phased stream schedules.
        shares: dict[tuple, int] = {}
        for phase in plan.phases:
            per_tenant, remainder = divmod(phase.requests, len(phase.clients))
            for index, client in enumerate(phase.clients):
                extra = 1 if index < remainder else 0
                key = client.key()
                shares[key] = shares.get(key, 0) + per_tenant + extra
        for (trace, seed, client_id), share in shares.items():
            _, elapsed = _drain(
                StandardTraceStream(
                    trace, seed=seed, target_requests=share, client_id=client_id
                )
            )
            total += elapsed
        return count, total

    phased_best = plain_best = None
    for _ in range(max(1, args.repeat)):
        _, elapsed = phased_once()
        phased_best = elapsed if phased_best is None else min(phased_best, elapsed)
        _, elapsed = plain_once()
        plain_best = elapsed if plain_best is None else min(plain_best, elapsed)

    overhead = phased_best / plain_best if plain_best > 0 else float("inf")
    print(
        f"phased:   {count / phased_best:10.0f} req/s ({phased_best:.3f}s)\n"
        f"plain:    {count / plain_best:10.0f} req/s ({plain_best:.3f}s)\n"
        f"overhead: {overhead:.2f}x (gate: < {args.max_overhead:.2f}x)"
    )
    if overhead >= args.max_overhead:
        print("FAIL: phased streaming overhead exceeds the gate")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
