"""Microbenchmark: on-disk trace cache + streaming replay vs. the old path.

Before the trace cache, every run (and every sweep worker) regenerated its
synthetic traces from scratch — the repository's biggest fixed cost.  This
benchmark measures one figure-sized trace (default: 60k requests) three
ways and checks the properties the streaming pipeline promises:

1. **cold**  — generate the trace and stream it into the binary cache file
               (what the first run of a figure pays);
2. **warm**  — stream the same trace back out of the cache (what every
               subsequent run and every sweep worker pays);
3. **replay**— a policy sweep over the cached trace, run from the
               materialized request list and from the lazy streamed source,
               at ``jobs=1`` and ``jobs>1`` — all four must produce
               bit-identical hit-ratio curves.

It also compares peak memory of a streamed replay against the footprint of
the materialized request list, to demonstrate that streaming never holds
the full trace in memory.

Run it standalone (CI runs this as a smoke test)::

    PYTHONPATH=src python benchmarks/bench_trace_cache.py --requests 60000

PASS requires a cold/warm speedup of at least 2x and a streamed replay peak
under half the materialized-list footprint.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

from repro.cache.registry import create_policy
from repro.simulation.engine import MultiPolicySimulator
from repro.simulation.sweep import sweep_cache_sizes
from repro.trace.cache import (
    CACHE_ENV_VAR,
    TraceCache,
    TraceSpec,
    set_default_trace_cache,
)

DEFAULT_POLICIES = ("LRU", "ARC", "TQ")
DEFAULT_SIZES = (900, 1_800, 3_600)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default="DB2_C300", help="standard trace name")
    parser.add_argument("--requests", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--no-check", action="store_true",
        help="report timings only; skip the pass/fail thresholds",
    )
    args = parser.parse_args(argv)

    spec = TraceSpec(args.trace, seed=args.seed, target_requests=args.requests)
    with tempfile.TemporaryDirectory(prefix="bench-trace-cache-") as tmp:
        cache = TraceCache(root=Path(tmp))
        set_default_trace_cache(cache)
        # Also point the environment at the temp dir: spawn-start-method
        # platforms re-resolve the default cache from the env in each sweep
        # worker, and must not touch the user's real cache.
        previous_env = os.environ.get(CACHE_ENV_VAR)
        os.environ[CACHE_ENV_VAR] = tmp
        try:
            return _run(args, spec, cache)
        finally:
            set_default_trace_cache(None)
            if previous_env is None:
                os.environ.pop(CACHE_ENV_VAR, None)
            else:
                os.environ[CACHE_ENV_VAR] = previous_env


def _run(args, spec: TraceSpec, cache: TraceCache) -> int:
    # --- cold: generate + stream into the cache file (first figure run).
    started = time.perf_counter()
    path = cache.ensure(spec)
    cold = time.perf_counter() - started
    size = path.stat().st_size
    print(
        f"trace={args.trace} requests={args.requests} "
        f"cache file {size / 1024:.0f} KiB ({size / args.requests:.1f} B/request)"
    )

    # --- warm: stream the trace back out (every later run / sweep worker).
    started = time.perf_counter()
    streamed_count = sum(len(chunk) for chunk in spec.open().iter_chunks())
    warm = time.perf_counter() - started
    assert streamed_count == args.requests, "cache returned a different trace length"
    speedup = cold / warm if warm > 0 else float("inf")

    print(f"\n{'path':<28} {'seconds':>8}")
    print(f"{'cold (generate + write)':<28} {cold:>8.3f}")
    print(f"{'warm (stream from cache)':<28} {warm:>8.3f}")
    print(f"cold/warm speedup: {speedup:.1f}x")

    # --- memory: streamed replay must not materialize the request list.
    tracemalloc.start()
    requests = spec.load().requests()
    list_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    tracemalloc.start()
    policy = create_policy("LRU", capacity=1_800)
    MultiPolicySimulator([policy]).run(spec)
    stream_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    print(
        f"\npeak memory: materialized list {list_peak / 1e6:.1f} MB, "
        f"streamed replay {stream_peak / 1e6:.1f} MB "
        f"({stream_peak / list_peak:.1%} of the list footprint)"
    )

    # --- equivalence: list vs streamed source, serial vs jobs=N.
    curves = {}
    for label, source, jobs in (
        ("list jobs=1", requests, 1),
        ("spec jobs=1", spec, 1),
        (f"list jobs={args.jobs}", requests, args.jobs),
        (f"spec jobs={args.jobs}", spec, args.jobs),
    ):
        sweep = sweep_cache_sizes(source, DEFAULT_SIZES, DEFAULT_POLICIES, jobs=jobs)
        curves[label] = {name: sweep.curve(name) for name in DEFAULT_POLICIES}
    reference = curves["list jobs=1"]
    for label, curve in curves.items():
        assert curve == reference, f"{label} diverged from the list jobs=1 sweep"
    print("hit-ratio output: identical across list/streamed x serial/parallel")

    if args.no_check:
        return 0
    ok = True
    if speedup < 2.0:
        print(f"FAIL: cold/warm speedup {speedup:.1f}x below the 2x threshold")
        ok = False
    if args.requests < 40_000:
        # Streamed peak is ~constant (one decoded block + policy state); the
        # materialized list is O(n).  Below a few blocks' worth of requests
        # the two are not meaningfully apart, so only the long-trace runs
        # enforce the ratio.
        print(f"note: memory-bound check skipped below 40000 requests "
              f"(got {args.requests})")
    elif stream_peak >= list_peak / 2:
        print(
            f"FAIL: streamed replay peak {stream_peak / 1e6:.1f} MB not bounded "
            f"(>= half the materialized list footprint {list_peak / 1e6:.1f} MB)"
        )
        ok = False
    if ok:
        print(f"PASS: speedup {speedup:.1f}x, streamed peak "
              f"{stream_peak / list_peak:.1%} of the list footprint")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
