#!/usr/bin/env python3
"""Using CLIC with your own application and your own hint types.

CLIC does not understand hint semantics — it learns which hint sets signal
quick read re-references.  This example builds a small key-value-store-like
storage client from scratch (no DBMS involved) that attaches two custom hint
types to every I/O request:

* ``tier``  — which application-level tier the page belongs to
  ("index", "hot_data", "cold_data", "log");
* ``cause`` — why the I/O happened ("get_miss", "flush", "compaction").

Log flushes and compaction writes are never read back; hot-data misses are
re-read quickly.  CLIC discovers this on its own and beats LRU/ARC without a
single line of application-specific code in the cache.

Run it with::

    python examples/custom_hints.py
"""

from __future__ import annotations

import random

from repro import ARCPolicy, CLICConfig, CLICPolicy, CacheSimulator, LRUPolicy, make_hint_set
from repro.simulation.request import read_request, write_request


def generate_kv_store_trace(requests: int = 60_000, seed: int = 7):
    """A synthetic key-value store behind a small in-process cache.

    The store has a hot region that misses in its tiny in-process cache and is
    re-read quickly, a large cold region read at random (rarely re-read), an
    append-only log, and periodic compaction that rewrites cold pages.
    """
    rng = random.Random(seed)
    hot_pages = range(0, 2_000)
    cold_pages = range(2_000, 40_000)
    log_page = 50_000
    trace = []
    for i in range(requests):
        roll = rng.random()
        if roll < 0.45:
            # Hot data: read misses that will be re-read soon.
            page = rng.choice(hot_pages)
            hints = make_hint_set("kvstore", tier="hot_data", cause="get_miss")
            trace.append(read_request(page, hints))
        elif roll < 0.75:
            # Cold data: one-off random reads.
            page = rng.choice(cold_pages)
            hints = make_hint_set("kvstore", tier="cold_data", cause="get_miss")
            trace.append(read_request(page, hints))
        elif roll < 0.90:
            # Log appends: written once, never read back.
            hints = make_hint_set("kvstore", tier="log", cause="flush")
            trace.append(write_request(log_page + i, hints))
        else:
            # Compaction rewrites of cold pages: also poor caching candidates.
            page = rng.choice(cold_pages)
            hints = make_hint_set("kvstore", tier="cold_data", cause="compaction")
            trace.append(write_request(page, hints))
    return trace


def main() -> None:
    trace = generate_kv_store_trace()
    capacity = 2_500

    policies = [
        LRUPolicy(capacity),
        ARCPolicy(capacity),
        CLICPolicy(capacity, CLICConfig(window_size=5_000)),
    ]
    print(f"Key-value store trace: {len(trace)} requests, server cache {capacity} pages\n")
    clic = None
    for policy in policies:
        result = CacheSimulator(policy).run(trace)
        print(f"  {policy.name:<5}  read hit ratio {result.read_hit_ratio:6.1%}")
        if policy.name == "CLIC":
            clic = policy

    print("\nPriorities CLIC learned for each hint set (higher = better caching candidate):")
    assert clic is not None
    for key, priority in sorted(clic.current_priorities().items(), key=lambda kv: -kv[1]):
        _, values = key
        print(f"  {str(values):<40} Pr = {priority:.6f}")
    print(
        "\nNote how the (hot_data, get_miss) hint set dominates, while log"
        " flushes and compaction writes are learned to be worthless — without"
        " CLIC knowing what 'log' or 'compaction' mean."
    )


if __name__ == "__main__":
    main()
