#!/usr/bin/env python3
"""Consolidating several database clients onto one CLIC-managed server cache.

This is the paper's Section 6.4 scenario (Figure 11): three independent DB2
instances — each running TPC-C with a different first-tier buffer size —
share one storage server.  Their requests are interleaved round-robin, and
the server cache is either

* one shared cache managed by CLIC, or
* statically partitioned into equal private caches, one per client.

CLIC automatically discovers which client's requests are the best caching
opportunities (the client with the smallest first-tier buffer leaves the most
locality) and concentrates the shared cache on it, beating the static split
on overall hit ratio.

Run it with::

    python examples/multi_client_consolidation.py
"""

from __future__ import annotations

from repro.experiments import ExperimentSettings, run_multiclient_experiment


def main() -> None:
    settings = ExperimentSettings(target_requests=30_000, seed=17)
    print("Generating three DB2 TPC-C clients (different first-tier buffer sizes)...")
    result = run_multiclient_experiment(
        trace_names=("DB2_C60", "DB2_C300", "DB2_C540"),
        shared_cache_size=3_600,
        settings=settings,
    )

    print(f"\nShared {result.shared_cache_size}-page cache vs. "
          f"private caches of {result.private_cache_sizes} pages:\n")
    print(f"  {'client trace':<12} {'shared':>9} {'private':>9}")
    for row in result.as_rows():
        print(f"  {row['trace']:<12} {row['shared_hit_ratio']:>8.1%} {row['private_hit_ratio']:>8.1%}")

    print(
        "\nThe shared cache gives almost all of its space to the DB2_C60"
        " client (the one with real temporal locality left in its request"
        " stream), which is exactly the behaviour the paper reports in"
        " Figure 11 — at the cost of the other clients, whose requests are"
        " poor caching opportunities anyway."
    )


if __name__ == "__main__":
    main()
