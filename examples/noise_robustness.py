#!/usr/bin/env python3
"""How many hints are too many?  Stress-testing CLIC with useless hint types.

Clients cannot always know which of their hints are useful to the storage
server.  The paper's Section 6.3 experiment injects ``T`` synthetic hint
types — random values carrying no information — into a real trace while CLIC
may only track ``k = 100`` hint sets, and watches the hit ratio degrade as
the informative hint sets get diluted.

This example reproduces that experiment on the scaled DB2 TPC-C trace and
also shows the top-k mitigation from Section 5 in isolation: how few hint
sets CLIC actually needs to track to match full tracking.

Run it with::

    python examples/noise_robustness.py
"""

from __future__ import annotations

from repro.experiments import ExperimentSettings, run_noise_experiment, run_topk_experiment


def main() -> None:
    settings = ExperimentSettings(target_requests=30_000, seed=17)
    cache_pages = 3_600

    print("Part 1 - top-k filtering (Figure 9): how many hint sets must CLIC track?")
    topk = run_topk_experiment(
        trace_names=("DB2_C60",),
        cache_size=cache_pages,
        k_values=(1, 2, 5, 10, 20, 50, None),
        settings=settings,
    )
    for point in topk.series["DB2_C60"]:
        label = "all" if point.x == max(p.x for p in topk.series["DB2_C60"]) else f"{int(point.x)}"
        print(f"  k = {label:>4}   read hit ratio {point.read_hit_ratio:6.1%}")

    print("\nPart 2 - noise hints (Figure 10): k fixed at 100, T useless hint types injected")
    noise = run_noise_experiment(
        trace_names=("DB2_C60", "DB2_C300"),
        noise_levels=(0, 1, 2, 3),
        cache_size=cache_pages,
        top_k=100,
        settings=settings,
    )
    for trace_name in noise.labels():
        ratios = ", ".join(
            f"T={int(point.x)}: {point.read_hit_ratio:5.1%}" for point in noise.series[trace_name]
        )
        print(f"  {trace_name:<9} {ratios}")

    print(
        "\nA handful of tracked hint sets already captures almost all of the"
        " benefit, and a moderate amount of noise is tolerated — but enough"
        " useless hint types eventually dilute the informative hint sets,"
        " which is why the paper proposes hint-set grouping as future work."
    )


if __name__ == "__main__":
    main()
