#!/usr/bin/env python3
"""Quickstart: run CLIC and the baseline policies on a synthetic DB2 trace.

This example generates a scaled-down version of the paper's DB2 TPC-C trace
(`DB2_C300`: a 12 000-page database behind a 6 000-page first-tier buffer),
then replays it through the storage-server cache simulator under every policy
the paper compares (OPT, LRU, ARC, TQ and CLIC) and prints their read hit
ratios — a single point of the paper's Figure 6.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CLICConfig, CacheSimulator, create_policy
from repro.cache import PAPER_POLICIES
from repro.workloads import clic_window_for, standard_trace


def main() -> None:
    target_requests = 40_000
    server_cache_pages = 3_600          # the paper's 180K-page server cache, scaled 1/50

    print("Generating the DB2_C300 trace (TPC-C behind a 6 000-page DB2 buffer)...")
    trace = standard_trace("DB2_C300", seed=17, target_requests=target_requests)
    summary = trace.summary()
    print(
        f"  {summary.requests} requests, {summary.distinct_pages} distinct pages, "
        f"{summary.distinct_hint_sets} distinct hint sets "
        f"(first-tier hit ratio {trace.metadata['first_tier_hit_ratio']:.1%})\n"
    )

    clic_config = CLICConfig(window_size=clic_window_for(target_requests))
    print(f"Replaying through a {server_cache_pages}-page storage-server cache:")
    for name in PAPER_POLICIES:
        kwargs = {"config": clic_config} if name == "CLIC" else {}
        policy = create_policy(name, capacity=server_cache_pages, **kwargs)
        result = CacheSimulator(policy).run(trace.requests())
        print(f"  {name:<5}  read hit ratio {result.read_hit_ratio:6.1%}")

    print(
        "\nExpected shape (paper Figure 6, DB2_C300): the hint-aware policies"
        " (TQ, CLIC) clearly beat the hint-oblivious ones (LRU, ARC), CLIC"
        " matches or beats TQ, and OPT upper-bounds everything."
    )


if __name__ == "__main__":
    main()
