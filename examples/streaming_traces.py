#!/usr/bin/env python3
"""Streaming traces: the on-disk trace cache and bounded-memory replay.

This example shows the streaming trace pipeline end to end:

1. a ``TraceSpec`` describes a standard trace (name, seed, length) and is
   resolved against the on-disk trace cache — the first run generates the
   trace straight into a compact binary file, every later run streams it
   back out in milliseconds;
2. the shared-replay engine consumes the spec *lazily*: requests are
   decoded one block at a time, so the full request list never exists in
   memory, yet the hit ratios are bit-identical to a materialized replay;
3. a parallel sweep ships the tiny spec to its workers instead of pickling
   the request list.

Run it with::

    python examples/streaming_traces.py

(Re-run it to see the cache hit: the "acquire" time collapses.)
"""

from __future__ import annotations

import time

from repro.cache.registry import create_policy
from repro.simulation import MultiPolicySimulator, sweep_cache_sizes
from repro.trace import TraceSpec, default_trace_cache


def main() -> None:
    spec = TraceSpec("DB2_C300", seed=17, target_requests=40_000)

    started = time.perf_counter()
    spec.ensure()                      # generate into the cache on a miss
    streamed = spec.open()
    print(
        f"acquired {streamed.request_count} requests in "
        f"{time.perf_counter() - started:.2f}s "
        f"({default_trace_cache().summary()})"
    )

    # Streamed replay: the spec is a lazy request source; at most one block
    # of requests is decoded at a time.
    policies = [create_policy(name, capacity=3_600) for name in ("LRU", "TQ")]
    for result in MultiPolicySimulator(policies).run(spec):
        print(f"  streamed  {result}")

    # The same spec drives a parallel sweep: workers open the cache file
    # themselves; results are identical at any jobs= count.
    sweep = sweep_cache_sizes(
        spec, cache_sizes=[1_200, 2_400, 3_600], policies=["LRU", "TQ"], jobs=2
    )
    print(sweep.to_table())


if __name__ == "__main__":
    main()
