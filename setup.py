"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` works on minimal/offline environments whose
setuptools lacks PEP 660 editable-install support (no ``wheel`` package).
"""

from setuptools import setup

setup()
