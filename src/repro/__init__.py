"""repro — a full reproduction of CLIC: CLient-Informed Caching for Storage Servers.

The package is organised as follows:

* :mod:`repro.core` — the paper's contribution: the generic hint framework,
  on-line hint analysis, and the CLIC replacement policy.
* :mod:`repro.cache` — the baseline and comparison replacement policies
  (LRU, ARC, OPT, TQ, MQ, 2Q, CAR, ...), all behind one interface.
* :mod:`repro.simulation` — the trace-driven storage-server cache simulator
  and parameter-sweep drivers.
* :mod:`repro.trace` — hint schemas, trace containers, serialization, noise
  injection and trace statistics.
* :mod:`repro.workloads` — synthetic first-tier DBMS clients (TPC-C-like and
  TPC-H-like workloads over a simulated buffer pool) that generate hinted
  I/O traces, standing in for the paper's instrumented DB2/MySQL systems.
* :mod:`repro.analysis` — hint-set priority analysis and report formatting.
* :mod:`repro.experiments` — one entry point per table/figure of the paper.
"""

from repro.cache import (
    ARCPolicy,
    CachePolicy,
    CacheStats,
    CARPolicy,
    ClockPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MQPolicy,
    OPTPolicy,
    PAPER_POLICIES,
    TQPolicy,
    TwoQPolicy,
    available_policies,
    create_policy,
    register_policy,
)
from repro.core import (
    CLICConfig,
    CLICPolicy,
    EMPTY_HINT_SET,
    HintSchema,
    HintSet,
    HintType,
    make_hint_set,
)
from repro.simulation import (
    CacheSimulator,
    IORequest,
    RequestKind,
    SimulationResult,
    SweepResult,
    read_request,
    simulate,
    write_request,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CLICPolicy",
    "CLICConfig",
    "HintSchema",
    "HintSet",
    "HintType",
    "make_hint_set",
    "EMPTY_HINT_SET",
    # cache policies
    "CachePolicy",
    "CacheStats",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "LFUPolicy",
    "ARCPolicy",
    "TwoQPolicy",
    "CARPolicy",
    "MQPolicy",
    "OPTPolicy",
    "TQPolicy",
    "PAPER_POLICIES",
    "available_policies",
    "create_policy",
    "register_policy",
    # simulation
    "IORequest",
    "RequestKind",
    "read_request",
    "write_request",
    "CacheSimulator",
    "simulate",
    "SimulationResult",
    "SweepResult",
]
