"""Off-line hint analysis and experiment report formatting."""

from repro.analysis.hint_analysis import HintSetAnalysis, analyze_hint_sets, figure3_rows
from repro.analysis.reporting import percentage, rows_to_csv, rows_to_table, series_to_rows

__all__ = [
    "HintSetAnalysis",
    "analyze_hint_sets",
    "figure3_rows",
    "percentage",
    "rows_to_csv",
    "rows_to_table",
    "series_to_rows",
]
