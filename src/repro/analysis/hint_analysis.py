"""Off-line hint-set analysis (the paper's Section 3 analysis and Figure 3).

Given a complete trace, this module computes for every hint set ``H`` the
exact values of ``N(H)``, ``Nr(H)`` and ``D(H)`` as defined in Section 3 —
using the *next request to the same page* to classify each request as a read
re-reference, a write re-reference, or never re-referenced — and from them
the benefit/cost priority ``Pr(H)``.  The scatter of priority against
frequency over all hint sets is exactly what the paper plots in Figure 3 for
the DB2 TPC-C trace.

Unlike the on-line statistics inside :class:`repro.core.clic.CLICPolicy`,
this analysis sees the whole future, so it is exact rather than bounded by
the outqueue.  It is useful for understanding what an ideal CLIC could learn
from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.statistics import HintSetStats, compute_priority
from repro.simulation.request import IORequest

__all__ = ["HintSetAnalysis", "analyze_hint_sets", "figure3_rows"]


@dataclass(frozen=True)
class HintSetAnalysis:
    """Exact Section 3 statistics of one hint set over a full trace."""

    hint_key: tuple
    requests: int                # N(H)
    read_rereferences: int       # Nr(H)
    write_rereferences: int
    no_rereferences: int
    mean_distance: float         # D(H)
    priority: float              # Pr(H)

    @property
    def frequency(self) -> int:
        return self.requests

    @property
    def read_hit_rate(self) -> float:
        return self.read_rereferences / self.requests if self.requests else 0.0


def analyze_hint_sets(requests: Sequence[IORequest]) -> dict[tuple, HintSetAnalysis]:
    """Compute exact per-hint-set statistics for a full trace.

    Every request is classified by the *next* request for the same page:

    * a later read  -> read re-reference (counts towards ``Nr`` and ``D``);
    * a later write -> write re-reference (caching would have been useless);
    * no later request -> no re-reference.
    """
    accumulators: dict[tuple, HintSetStats] = {}
    write_rereferences: dict[tuple, int] = {}
    no_rereferences: dict[tuple, int] = {}
    # Pending request per page: (sequence number, hint key).
    pending: dict[int, tuple[int, tuple]] = {}

    def resolve(previous_seq: int, previous_key: tuple, seq: int | None, is_read: bool) -> None:
        stats = accumulators.setdefault(previous_key, HintSetStats())
        if seq is None:
            no_rereferences[previous_key] = no_rereferences.get(previous_key, 0) + 1
        elif is_read:
            stats.read_rereferences += 1
            stats.distance_total += seq - previous_seq
        else:
            write_rereferences[previous_key] = write_rereferences.get(previous_key, 0) + 1

    for seq, request in enumerate(requests):
        key = request.hints.key()
        accumulators.setdefault(key, HintSetStats()).requests += 1
        previous = pending.get(request.page)
        if previous is not None:
            resolve(previous[0], previous[1], seq, request.is_read)
        pending[request.page] = (seq, key)

    # Requests whose page is never requested again.
    for previous_seq, previous_key in pending.values():
        resolve(previous_seq, previous_key, None, False)

    results: dict[tuple, HintSetAnalysis] = {}
    for key, stats in accumulators.items():
        results[key] = HintSetAnalysis(
            hint_key=key,
            requests=stats.requests,
            read_rereferences=stats.read_rereferences,
            write_rereferences=write_rereferences.get(key, 0),
            no_rereferences=no_rereferences.get(key, 0),
            mean_distance=stats.mean_distance,
            priority=compute_priority(stats),
        )
    return results


def figure3_rows(
    requests: Sequence[IORequest],
    include_zero_priority: bool = False,
) -> list[dict]:
    """The (frequency, priority) scatter of Figure 3, one row per hint set.

    The paper plots all hint sets with non-zero caching priority; pass
    ``include_zero_priority=True`` to keep the rest as well.
    """
    analysis = analyze_hint_sets(requests)
    rows = []
    for result in sorted(analysis.values(), key=lambda r: r.priority, reverse=True):
        if result.priority == 0.0 and not include_zero_priority:
            continue
        rows.append(
            {
                "hint_set": result.hint_key,
                "frequency": result.frequency,
                "priority": result.priority,
                "read_hit_rate": result.read_hit_rate,
                "mean_distance": result.mean_distance,
            }
        )
    return rows
