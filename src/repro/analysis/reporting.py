"""Report formatting: text tables and CSV emission for experiment results.

Every experiment in :mod:`repro.experiments` produces either a
:class:`~repro.simulation.metrics.SweepResult` or a list of row dicts; this
module renders them the way the paper's tables/figures report them and writes
optional CSV files so the series can be re-plotted externally.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.simulation.metrics import format_table

__all__ = ["rows_to_table", "rows_to_csv", "percentage", "series_to_rows"]


def percentage(value: float) -> str:
    """Format a ratio the way the paper's axes do (e.g. ``0.416 -> '41.6%'``)."""
    return f"{value * 100:.1f}%"


def rows_to_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render a list of row dicts as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    body = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        body.append(rendered)
    return format_table(columns, body)


def rows_to_csv(rows: Sequence[Mapping], path: str | Path, columns: Sequence[str] | None = None) -> Path:
    """Write rows to a CSV file and return the path."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    columns = list(columns) if columns is not None else list(rows[0].keys())
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def series_to_rows(series: Mapping[str, Sequence[tuple[float, float]]], x_name: str) -> list[dict]:
    """Flatten ``{label: [(x, y), ...]}`` curves into row dicts for tabulation."""
    rows = []
    for label, points in series.items():
        for x, y in points:
            rows.append({"series": label, x_name: x, "read_hit_ratio": y})
    return rows
