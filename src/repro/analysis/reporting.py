"""Report formatting: text tables and CSV emission for experiment results.

Every experiment in :mod:`repro.experiments` produces either a
:class:`~repro.simulation.metrics.SweepResult` or a list of row dicts; this
module renders them the way the paper's tables/figures report them and writes
optional CSV files so the series can be re-plotted externally.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from repro.simulation.metrics import format_table

__all__ = ["rows_to_table", "rows_to_csv", "percentage", "series_to_rows"]


def percentage(value: float) -> str:
    """Format a ratio the way the paper's axes do (e.g. ``0.416 -> '41.6%'``)."""
    return f"{value * 100:.1f}%"


def _union_columns(rows: Sequence[Mapping]) -> list[str]:
    """Column list covering *every* row, in first-seen order.

    Heterogeneous row lists are normal (e.g. sharded results carry columns
    that unified results lack); deriving columns from ``rows[0]`` alone
    would silently drop whatever first appears in a later row.
    """
    columns: list[str] = []
    seen: set[str] = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    return columns


def rows_to_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render a list of row dicts as a fixed-width text table.

    ``columns`` selects/orders the columns explicitly; by default the
    columns are the first-seen-order union over **all** rows, so columns
    that only some rows carry still show up (blank where absent).
    """
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else _union_columns(rows)
    body = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.4g}")
            else:
                rendered.append(str(value))
        body.append(rendered)
    return format_table(columns, body)


def rows_to_csv(rows: Sequence[Mapping], path: str | Path, columns: Sequence[str] | None = None) -> Path:
    """Write rows to a CSV file and return the path.

    Columns default to the first-seen-order union over all rows (never just
    ``rows[0]``); rows are projected onto the column list here, with missing
    values written as empty cells — nothing is silently dropped the way a
    ``DictWriter(extrasaction="ignore")`` would.  With no rows but explicit
    ``columns``, the header row is still written so downstream plotting
    tools always get a parseable CSV; only an empty call (no rows, no
    columns) produces an empty file.
    """
    path = Path(path)
    columns = list(columns) if columns is not None else _union_columns(rows)
    with path.open("w", newline="", encoding="utf-8") as handle:
        if not columns:
            return path
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in columns})
    return path


def series_to_rows(series: Mapping[str, Sequence[tuple[float, float]]], x_name: str) -> list[dict]:
    """Flatten ``{label: [(x, y), ...]}`` curves into row dicts for tabulation."""
    rows = []
    for label, points in series.items():
        for x, y in points:
            rows.append({"series": label, x_name: x, "read_hit_ratio": y})
    return rows
