"""Cache replacement policies: the CLIC baselines and extra comparison points."""

from repro.cache.arc import ARCPolicy
from repro.cache.base import CachePolicy, CacheStats
from repro.cache.car import CARPolicy
from repro.cache.clock import ClockPolicy
from repro.cache.fifo import FIFOPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.mq import MQPolicy
from repro.cache.opt import OPTPolicy
from repro.cache.registry import (
    PAPER_POLICIES,
    available_policies,
    create_policy,
    register_policy,
)
from repro.cache.tq import TQPolicy
from repro.cache.twoq import TwoQPolicy

__all__ = [
    "CachePolicy",
    "CacheStats",
    "LRUPolicy",
    "FIFOPolicy",
    "ClockPolicy",
    "LFUPolicy",
    "ARCPolicy",
    "TwoQPolicy",
    "CARPolicy",
    "MQPolicy",
    "OPTPolicy",
    "TQPolicy",
    "PAPER_POLICIES",
    "available_policies",
    "create_policy",
    "register_policy",
]
