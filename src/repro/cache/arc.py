"""ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

ARC is the paper's strongest hint-oblivious baseline.  It balances recency
and frequency by splitting the cache into two LRU lists, T1 (pages seen
once recently) and T2 (pages seen at least twice recently), and keeps two
ghost lists, B1 and B2, of recently evicted page ids.  Ghost hits adapt the
target size ``p`` of T1.

This is a direct implementation of the ARC pseudo-code (Algorithm "ARC(c)")
from the original paper.  Both reads and writes count as references, matching
how the CLIC paper drives all policies with the full request stream.  Note
that the CLIC paper points out ARC enjoys a small space advantage in their
comparison because its ghost lists are not charged against the cache size; we
preserve that convention (see ``CLICConfig.charge_metadata`` for how CLIC is
charged).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import (
    HIT,
    AccessOutcome,
    AccessOutcomeBatch,
    CachePolicy,
    _admit_batch,
    _all_hit_batch,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = ["ARCPolicy"]


class ARCPolicy(CachePolicy):
    """Adaptive Replacement Cache."""

    name = "ARC"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._p = 0.0  # target size for T1 (adaptation parameter)
        # All four lists are ordered LRU -> MRU.
        self._t1: OrderedDict[int, None] = OrderedDict()
        self._t2: OrderedDict[int, None] = OrderedDict()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()

    # ----------------------------------------------------------- internals
    def _replace(self, in_b2: bool) -> int:
        """REPLACE(x, p) from the ARC paper: evict from T1 or T2 to a ghost list."""
        if self._t1 and (
            len(self._t1) > self._p
            or (in_b2 and len(self._t1) == int(self._p))
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        return victim

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        c = self.capacity

        # Case I: hit in T1 or T2 -> move to MRU of T2.
        if page in self._t1 or page in self._t2:
            if page in self._t1:
                del self._t1[page]
            else:
                del self._t2[page]
            self._t2[page] = None
            return HIT

        # Case II: ghost hit in B1 -> favour recency (grow p).
        if page in self._b1:
            delta = 1.0 if len(self._b1) >= len(self._b2) else len(self._b2) / len(self._b1)
            self._p = min(self._p + delta, float(c))
            victim = self._replace(in_b2=False)
            del self._b1[page]
            self._t2[page] = None
            return AccessOutcome(False, admitted=True, evicted=(victim,))

        # Case III: ghost hit in B2 -> favour frequency (shrink p).
        if page in self._b2:
            delta = 1.0 if len(self._b2) >= len(self._b1) else len(self._b1) / len(self._b2)
            self._p = max(self._p - delta, 0.0)
            victim = self._replace(in_b2=True)
            del self._b2[page]
            self._t2[page] = None
            return AccessOutcome(False, admitted=True, evicted=(victim,))

        # Case IV: complete miss.
        evicted: tuple[int, ...] = ()
        l1 = len(self._t1) + len(self._b1)
        l2 = len(self._t2) + len(self._b2)
        if l1 == c:
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                evicted = (self._replace(in_b2=False),)
            else:
                # B1 is empty; evict the LRU page of T1 directly.
                victim, _ = self._t1.popitem(last=False)
                evicted = (victim,)
        elif l1 < c and l1 + l2 >= c:
            if l1 + l2 == 2 * c:
                self._b2.popitem(last=False)
            evicted = (self._replace(in_b2=False),)
        self._t1[page] = None
        return AccessOutcome(False, admitted=True, evicted=evicted)

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        # Fused batch kernel, bit-identical to the access() loop (pinned by
        # tests/cache/test_batch_parity.py).  Misses and ghost hits mutate
        # the ghost lists the next request reads, so the general path is a
        # lean loop with locally-bound dict ops; a chunk whose pages are all
        # resident (Case I throughout) skips the per-request flag/ghost work
        # and only performs the ordered T1->T2 / MRU moves.
        pages = chunk.page.tolist()
        t1 = self._t1
        t2 = self._t2
        n = len(pages)

        if all(page in t1 or page in t2 for page in pages):
            for page in pages:
                if page in t1:
                    del t1[page]
                else:
                    del t2[page]
                t2[page] = None
            return _all_hit_batch(n)

        b1 = self._b1
        b2 = self._b2
        c = self.capacity
        p = self._p
        hit_flags = bytearray(n)
        evict_pos: list[int] = []
        evicted: list[int] = []
        # REPLACE(x, p) is inlined at its three call sites below, with the
        # adaptation parameter kept in the local ``p`` (written back once at
        # the end) — the dominant per-miss cost in this loop.
        for i, page in enumerate(pages):
            # Case I: hit in T1 or T2 -> move to MRU of T2.
            if page in t1:
                del t1[page]
                t2[page] = None
                hit_flags[i] = 1
            elif page in t2:
                del t2[page]
                t2[page] = None
                hit_flags[i] = 1
            # Case II: ghost hit in B1 -> favour recency (grow p).
            elif page in b1:
                delta = 1.0 if len(b1) >= len(b2) else len(b2) / len(b1)
                p = min(p + delta, float(c))
                if t1 and len(t1) > p:
                    victim, _ = t1.popitem(last=False)
                    b1[victim] = None
                else:
                    victim, _ = t2.popitem(last=False)
                    b2[victim] = None
                evicted.append(victim)
                evict_pos.append(i)
                del b1[page]
                t2[page] = None
            # Case III: ghost hit in B2 -> favour frequency (shrink p).
            elif page in b2:
                delta = 1.0 if len(b2) >= len(b1) else len(b1) / len(b2)
                p = max(p - delta, 0.0)
                if t1 and (len(t1) > p or len(t1) == int(p)):
                    victim, _ = t1.popitem(last=False)
                    b1[victim] = None
                else:
                    victim, _ = t2.popitem(last=False)
                    b2[victim] = None
                evicted.append(victim)
                evict_pos.append(i)
                del b2[page]
                t2[page] = None
            # Case IV: complete miss.
            else:
                l1 = len(t1) + len(b1)
                if l1 == c:
                    if len(t1) < c:
                        b1.popitem(last=False)
                        if t1 and len(t1) > p:
                            victim, _ = t1.popitem(last=False)
                            b1[victim] = None
                        else:
                            victim, _ = t2.popitem(last=False)
                            b2[victim] = None
                    else:
                        # B1 is empty; evict the LRU page of T1 directly.
                        victim, _ = t1.popitem(last=False)
                    evicted.append(victim)
                    evict_pos.append(i)
                elif l1 < c and l1 + len(t2) + len(b2) >= c:
                    if l1 + len(t2) + len(b2) == 2 * c:
                        b2.popitem(last=False)
                    if t1 and len(t1) > p:
                        victim, _ = t1.popitem(last=False)
                        b1[victim] = None
                    else:
                        victim, _ = t2.popitem(last=False)
                        b2[victim] = None
                    evicted.append(victim)
                    evict_pos.append(i)
                t1[page] = None
        self._p = p
        return _admit_batch(hit_flags, evict_pos, evicted)

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._t1 or page in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def cached_pages(self) -> Iterable[int]:
        yield from self._t1
        yield from self._t2

    @property
    def target_t1_size(self) -> float:
        """Current value of the adaptation parameter ``p`` (for tests/inspection)."""
        return self._p

    def reset(self) -> None:
        super().reset()
        self._p = 0.0
        for lst in (self._t1, self._t2, self._b1, self._b2):
            lst.clear()
