"""ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

ARC is the paper's strongest hint-oblivious baseline.  It balances recency
and frequency by splitting the cache into two LRU lists, T1 (pages seen
once recently) and T2 (pages seen at least twice recently), and keeps two
ghost lists, B1 and B2, of recently evicted page ids.  Ghost hits adapt the
target size ``p`` of T1.

This is a direct implementation of the ARC pseudo-code (Algorithm "ARC(c)")
from the original paper.  Both reads and writes count as references, matching
how the CLIC paper drives all policies with the full request stream.  Note
that the CLIC paper points out ARC enjoys a small space advantage in their
comparison because its ghost lists are not charged against the cache size; we
preserve that convention (see ``CLICConfig.charge_metadata`` for how CLIC is
charged).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import HIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["ARCPolicy"]


class ARCPolicy(CachePolicy):
    """Adaptive Replacement Cache."""

    name = "ARC"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._p = 0.0  # target size for T1 (adaptation parameter)
        # All four lists are ordered LRU -> MRU.
        self._t1: OrderedDict[int, None] = OrderedDict()
        self._t2: OrderedDict[int, None] = OrderedDict()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()

    # ----------------------------------------------------------- internals
    def _replace(self, in_b2: bool) -> int:
        """REPLACE(x, p) from the ARC paper: evict from T1 or T2 to a ghost list."""
        if self._t1 and (
            len(self._t1) > self._p
            or (in_b2 and len(self._t1) == int(self._p))
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        return victim

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        c = self.capacity

        # Case I: hit in T1 or T2 -> move to MRU of T2.
        if page in self._t1 or page in self._t2:
            if page in self._t1:
                del self._t1[page]
            else:
                del self._t2[page]
            self._t2[page] = None
            return HIT

        # Case II: ghost hit in B1 -> favour recency (grow p).
        if page in self._b1:
            delta = 1.0 if len(self._b1) >= len(self._b2) else len(self._b2) / len(self._b1)
            self._p = min(self._p + delta, float(c))
            victim = self._replace(in_b2=False)
            del self._b1[page]
            self._t2[page] = None
            return AccessOutcome(False, admitted=True, evicted=(victim,))

        # Case III: ghost hit in B2 -> favour frequency (shrink p).
        if page in self._b2:
            delta = 1.0 if len(self._b2) >= len(self._b1) else len(self._b1) / len(self._b2)
            self._p = max(self._p - delta, 0.0)
            victim = self._replace(in_b2=True)
            del self._b2[page]
            self._t2[page] = None
            return AccessOutcome(False, admitted=True, evicted=(victim,))

        # Case IV: complete miss.
        evicted: tuple[int, ...] = ()
        l1 = len(self._t1) + len(self._b1)
        l2 = len(self._t2) + len(self._b2)
        if l1 == c:
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                evicted = (self._replace(in_b2=False),)
            else:
                # B1 is empty; evict the LRU page of T1 directly.
                victim, _ = self._t1.popitem(last=False)
                evicted = (victim,)
        elif l1 < c and l1 + l2 >= c:
            if l1 + l2 == 2 * c:
                self._b2.popitem(last=False)
            evicted = (self._replace(in_b2=False),)
        self._t1[page] = None
        return AccessOutcome(False, admitted=True, evicted=evicted)

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._t1 or page in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def cached_pages(self) -> Iterable[int]:
        yield from self._t1
        yield from self._t2

    @property
    def target_t1_size(self) -> float:
        """Current value of the adaptation parameter ``p`` (for tests/inspection)."""
        return self._p

    def reset(self) -> None:
        super().reset()
        self._p = 0.0
        for lst in (self._t1, self._t2, self._b1, self._b2):
            lst.clear()
