"""Common interface for storage-server cache replacement policies.

Every policy in this package (and :class:`repro.core.clic.CLICPolicy`)
implements :class:`CachePolicy`.  The trace-driven replay loop feeds a policy
one :class:`~repro.simulation.request.IORequest` at a time, in arrival order,
together with the request's server-assigned sequence number; the policy
returns a structured :class:`AccessOutcome` describing what happened
(hit/miss, admission, bypass, evicted pages).

Policies are **pure kernels**: they own only their replacement state (which
pages are cached, in what order/priority), never any accounting.  All
statistics — including the paper's *read hit ratio* metric — are derived
from the outcome events by replay observers
(:mod:`repro.simulation.observers`); :class:`CacheStats` is the accounting
container those observers produce.
"""

from __future__ import annotations

import abc
import copy
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from typing import TYPE_CHECKING

try:  # optional acceleration for the batch kernel path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = [
    "AccessOutcome",
    "AccessOutcomeBatch",
    "HIT",
    "MISS_ADMIT",
    "MISS_BYPASS",
    "CacheStats",
    "CachePolicy",
    "validate_capacity",
]


def validate_capacity(capacity: int) -> int:
    """Validate a cache capacity expressed in pages."""
    if not isinstance(capacity, int):
        raise TypeError(f"capacity must be an int, got {type(capacity).__name__}")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return capacity


class AccessOutcome:
    """What one :meth:`CachePolicy.access` call did, as a value object.

    The outcome is the policy's *only* output channel: replay observers fold
    outcome streams into statistics, so one counting rule holds for every
    policy.  The fields mirror the accounting events the old in-policy
    bookkeeping mutated:

    * ``hit`` — the requested page was cached when the request arrived;
    * ``admitted`` — the page was inserted into the cache by this access;
    * ``bypassed`` — the policy consciously declined to admit a missed page;
    * ``evicted`` — pages removed from the cache by this access, in eviction
      order.  Usually empty or one page; an eviction may accompany a *hit*
      (OPT drops pages it proves dead on their final read).

    Hot-path note: the three common cases are interned as module singletons
    (:data:`HIT`, :data:`MISS_ADMIT`, :data:`MISS_BYPASS`) so the replay
    loop allocates only for evicting outcomes.
    """

    __slots__ = ("hit", "admitted", "bypassed", "evicted")

    def __init__(
        self,
        hit: bool,
        admitted: bool = False,
        bypassed: bool = False,
        evicted: tuple[int, ...] = (),
    ):
        self.hit = hit
        self.admitted = admitted
        self.bypassed = bypassed
        self.evicted = evicted

    def __bool__(self) -> bool:
        """Truthiness is the hit flag (``if policy.access(...)`` reads as
        "if it hit", matching the historical bool return)."""
        return self.hit

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessOutcome):
            return NotImplemented
        return (
            self.hit == other.hit
            and self.admitted == other.admitted
            and self.bypassed == other.bypassed
            and self.evicted == other.evicted
        )

    def __hash__(self) -> int:
        return hash((self.hit, self.admitted, self.bypassed, self.evicted))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = [f"hit={self.hit}"]
        if self.admitted:
            flags.append("admitted")
        if self.bypassed:
            flags.append("bypassed")
        if self.evicted:
            flags.append(f"evicted={self.evicted}")
        return f"AccessOutcome({', '.join(flags)})"


#: The requested page was cached; nothing else changed.
HIT = AccessOutcome(True)
#: Miss, page admitted, nothing evicted (the cache had room).
MISS_ADMIT = AccessOutcome(False, admitted=True)
#: Miss, page deliberately not admitted.
MISS_BYPASS = AccessOutcome(False, bypassed=True)


class AccessOutcomeBatch:
    """One :class:`AccessOutcome` per request of a chunk, as columns.

    The batch-kernel analogue of :class:`AccessOutcome`: ``hit``,
    ``admitted`` and ``bypassed`` are numpy bool arrays (one lane per
    request), and evictions are stored CSR-style — ``evicted_pages`` holds
    every evicted page in request order, ``evicted_offsets`` (length
    ``n + 1``) delimits request *i*'s evictions as
    ``evicted_pages[evicted_offsets[i]:evicted_offsets[i + 1]]``.

    :meth:`outcomes` reconstructs the exact per-request outcome objects
    (memoised), so scalar consumers see the same event stream either way;
    :meth:`from_outcomes` lifts a scalar outcome list into a batch (the
    default :meth:`CachePolicy.batch_access` fallback uses it).
    """

    __slots__ = ("hit", "admitted", "bypassed", "evicted_pages", "evicted_offsets", "_outcomes")

    def __init__(
        self,
        hit: Any,
        admitted: Any,
        bypassed: Any,
        evicted_pages: Any,
        evicted_offsets: Any,
    ):
        self.hit = hit
        self.admitted = admitted
        self.bypassed = bypassed
        self.evicted_pages = evicted_pages
        self.evicted_offsets = evicted_offsets
        self._outcomes: list[AccessOutcome] | None = None

    def __len__(self) -> int:
        return len(self.hit)

    @property
    def eviction_count(self) -> int:
        """Total pages evicted across the batch."""
        return len(self.evicted_pages)

    @classmethod
    def from_outcomes(cls, outcomes: Sequence[AccessOutcome]) -> "AccessOutcomeBatch":
        """Lift a scalar outcome list into a batch (memoising the list)."""
        if _np is None:  # pragma: no cover - batch paths require numpy
            raise RuntimeError("AccessOutcomeBatch requires numpy")
        n = len(outcomes)
        hit = _np.fromiter((outcome.hit for outcome in outcomes), _np.bool_, n)
        admitted = _np.fromiter(
            (outcome.admitted for outcome in outcomes), _np.bool_, n
        )
        bypassed = _np.fromiter(
            (outcome.bypassed for outcome in outcomes), _np.bool_, n
        )
        offsets = _np.zeros(n + 1, _np.int64)
        _np.cumsum(
            _np.fromiter((len(outcome.evicted) for outcome in outcomes), _np.int64, n),
            out=offsets[1:],
        )
        total = int(offsets[-1])
        if total:
            pages = _np.fromiter(
                (
                    page
                    for outcome in outcomes
                    for page in outcome.evicted
                ),
                _np.int64,
                total,
            )
        else:
            pages = _np.zeros(0, _np.int64)
        batch = cls(hit, admitted, bypassed, pages, offsets)
        batch._outcomes = list(outcomes)
        return batch

    def outcome(self, i: int) -> AccessOutcome:
        """Reconstruct request *i*'s scalar outcome."""
        start = int(self.evicted_offsets[i])
        stop = int(self.evicted_offsets[i + 1])
        hit = bool(self.hit[i])
        admitted = bool(self.admitted[i])
        bypassed = bool(self.bypassed[i])
        if start == stop:
            if hit and not admitted and not bypassed:
                return HIT
            if admitted and not hit and not bypassed:
                return MISS_ADMIT
            if bypassed and not hit and not admitted:
                return MISS_BYPASS
            return AccessOutcome(hit, admitted=admitted, bypassed=bypassed)
        evicted = tuple(int(page) for page in self.evicted_pages[start:stop])
        return AccessOutcome(hit, admitted=admitted, bypassed=bypassed, evicted=evicted)

    def outcomes(self) -> list[AccessOutcome]:
        """Materialise the equivalent scalar outcome list (memoised)."""
        if self._outcomes is None:
            self._outcomes = [self.outcome(i) for i in range(len(self))]
        return self._outcomes


def _admit_batch(
    hit_flags: bytearray, evict_pos: list[int], evicted: list[int]
) -> AccessOutcomeBatch:
    """Assemble a batch for always-admit kernels (LRU/FIFO/CLOCK shape).

    ``hit_flags`` holds 0/1 per request; every miss admits, nothing is
    bypassed, and request ``evict_pos[k]`` evicted page ``evicted[k]`` (at
    most one eviction per access).
    """
    if _np is None:  # pragma: no cover - batch paths require numpy
        raise RuntimeError("AccessOutcomeBatch requires numpy")
    n = len(hit_flags)
    hit = _np.frombuffer(bytes(hit_flags), dtype=_np.bool_)
    bypassed = _np.zeros(n, _np.bool_)
    offsets = _np.zeros(n + 1, _np.int64)
    if evicted:
        counts = _np.zeros(n, _np.int64)
        counts[evict_pos] = 1
        _np.cumsum(counts, out=offsets[1:])
        pages = _np.array(evicted, _np.int64)
    else:
        pages = _np.zeros(0, _np.int64)
    return AccessOutcomeBatch(hit, ~hit, bypassed, pages, offsets)


def _mixed_batch(
    hit_flags: bytearray,
    admit_flags: bytearray,
    bypass_flags: bytearray,
    evict_pos: list[int],
    evicted: list[int],
) -> AccessOutcomeBatch:
    """Assemble a batch for kernels that may bypass (the CLIC shape).

    Explicit 0/1 flags per request for hit/admitted/bypassed, plus at most
    one eviction per access (``evict_pos[k]`` evicted ``evicted[k]``).
    """
    if _np is None:  # pragma: no cover - batch paths require numpy
        raise RuntimeError("AccessOutcomeBatch requires numpy")
    n = len(hit_flags)
    hit = _np.frombuffer(bytes(hit_flags), dtype=_np.bool_)
    admitted = _np.frombuffer(bytes(admit_flags), dtype=_np.bool_)
    bypassed = _np.frombuffer(bytes(bypass_flags), dtype=_np.bool_)
    offsets = _np.zeros(n + 1, _np.int64)
    if evicted:
        counts = _np.zeros(n, _np.int64)
        counts[evict_pos] = 1
        _np.cumsum(counts, out=offsets[1:])
        pages = _np.array(evicted, _np.int64)
    else:
        pages = _np.zeros(0, _np.int64)
    return AccessOutcomeBatch(hit, admitted, bypassed, pages, offsets)


def _all_hit_batch(n: int) -> AccessOutcomeBatch:
    """Assemble the batch for a chunk where every request hit (no state
    change other than recency/reference updates)."""
    if _np is None:  # pragma: no cover - batch paths require numpy
        raise RuntimeError("AccessOutcomeBatch requires numpy")
    return AccessOutcomeBatch(
        _np.ones(n, _np.bool_),
        _np.zeros(n, _np.bool_),
        _np.zeros(n, _np.bool_),
        _np.zeros(0, _np.int64),
        _np.zeros(n + 1, _np.int64),
    )


@dataclass
class CacheStats:
    """Hit/miss accounting for one simulation run of a single policy.

    Produced by the stats observer (:class:`repro.simulation.observers
    .StatsObserver`) from a policy's outcome stream; policies themselves no
    longer carry one.
    """

    read_requests: int = 0
    read_hits: int = 0
    write_requests: int = 0
    write_hits: int = 0
    evictions: int = 0
    admissions: int = 0
    bypasses: int = 0

    @property
    def requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def read_hit_ratio(self) -> float:
        """Read hits / read requests (the paper's metric).  0.0 if no reads."""
        if self.read_requests == 0:
            return 0.0
        return self.read_hits / self.read_requests

    @property
    def overall_hit_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return (self.read_hits + self.write_hits) / self.requests

    def record(self, request: IORequest, hit: bool) -> None:
        """Record the hit/miss outcome of one request."""
        if request.is_read:
            self.read_requests += 1
            if hit:
                self.read_hits += 1
        else:
            self.write_requests += 1
            if hit:
                self.write_hits += 1

    def record_outcome(self, request: IORequest, outcome: AccessOutcome) -> None:
        """Fold one full :class:`AccessOutcome` event into the counters."""
        self.record(request, outcome.hit)
        if outcome.admitted:
            self.admissions += 1
        if outcome.bypassed:
            self.bypasses += 1
        if outcome.evicted:
            self.evictions += len(outcome.evicted)

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` aggregating *self* and *other*."""
        return CacheStats(
            read_requests=self.read_requests + other.read_requests,
            read_hits=self.read_hits + other.read_hits,
            write_requests=self.write_requests + other.write_requests,
            write_hits=self.write_hits + other.write_hits,
            evictions=self.evictions + other.evictions,
            admissions=self.admissions + other.admissions,
            bypasses=self.bypasses + other.bypasses,
        )

    def as_dict(self) -> dict:
        return {
            "read_requests": self.read_requests,
            "read_hits": self.read_hits,
            "read_hit_ratio": self.read_hit_ratio,
            "write_requests": self.write_requests,
            "write_hits": self.write_hits,
            "evictions": self.evictions,
            "admissions": self.admissions,
            "bypasses": self.bypasses,
        }


class CachePolicy(abc.ABC):
    """Abstract base class for storage-server cache replacement policies.

    Subclasses implement the **policy kernel contract**:

    * :meth:`access` processes one request, mutates only replacement state,
      and reports everything it did as an :class:`AccessOutcome` — it must
      never count anything itself;
    * the number of cached pages stays at or below ``capacity`` after every
      access;
    * the evicted pages reported in outcomes are exactly the pages that left
      the cache, so ``admissions - evictions == len(policy)`` holds at all
      times (one admission per residency);
    * kernel state is fully captured by :meth:`snapshot` / :meth:`restore`:
      restoring a snapshot and replaying the same tail produces identical
      outcomes.
    """

    #: Short name used by the policy registry and in experiment output.
    name: str = "base"

    #: Whether the policy reads hints from requests.  Purely informational.
    hint_aware: bool = False

    #: Whether the policy requires the full future request stream up front
    #: (:meth:`prepare`) before simulation.  Only OPT sets this.
    offline: bool = False

    #: Instance attributes excluded from :meth:`snapshot`: anything that is
    #: not kernel state (the replay loop's bookkeeping hooks).
    _SNAPSHOT_EXCLUDE: frozenset[str] = frozenset({"_stats_view"})

    #: Names of attributes shared by reference across snapshots instead of
    #: being deep-copied: immutable-by-contract structures that may be
    #: shared between policy instances (OPT's future-read index).
    _SNAPSHOT_SHARED: tuple[str, ...] = ()

    def __init__(self, capacity: int):
        self._capacity = validate_capacity(capacity)
        #: Stats of the policy's most recent simulation run, installed by the
        #: replay loop for the deprecated :attr:`stats` shim.  Not kernel
        #: state; never read it from within a policy.
        self._stats_view: CacheStats | None = None

    # ------------------------------------------------------------------ API
    @property
    def capacity(self) -> int:
        """Cache capacity in pages."""
        return self._capacity

    @property
    def stats(self) -> CacheStats:
        """Deprecated: stats of the policy's most recent simulation run.

        Policies are pure kernels and no longer do their own accounting;
        read statistics from :attr:`SimulationResult.stats` (or attach a
        :class:`~repro.simulation.observers.StatsObserver`) instead.  This
        shim returns the stats the last replay installed — empty if the
        policy has only been driven directly, outside a simulator.
        """
        warnings.warn(
            "CachePolicy.stats is deprecated: policies no longer own "
            "accounting; read SimulationResult.stats (or attach a "
            "StatsObserver) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        view = self._stats_view
        return view if view is not None else CacheStats()

    def prepare(self, requests: Sequence[IORequest], start_seq: int = 0) -> None:
        """Give offline policies (OPT) the full request stream in advance.

        Online policies ignore this.  The simulator calls it once before the
        first :meth:`access` when the policy declares ``offline = True``.
        ``start_seq`` is the sequence number the simulator will assign to
        ``requests[0]``; offline policies must index future positions in the
        same numbering that :meth:`access` will see.
        """

    @abc.abstractmethod
    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        """Process one request; return what happened as an outcome event.

        ``seq`` is the server-assigned sequence number (0-based position of
        the request in the stream).  Implementations mutate only their
        replacement state and report every admission, bypass and eviction in
        the returned :class:`AccessOutcome`; all statistics are derived from
        outcomes by the replay observers.
        """

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        """Process one columnar chunk of requests; return batched outcomes.

        **Batch kernel contract**: the returned batch must be
        outcome-for-outcome identical to calling :meth:`access` on each of
        the chunk's requests in order (with the chunk's own sequence
        numbers), and must leave the policy in the identical state.  The
        default implementation *is* that scalar loop — it materialises the
        chunk's requests and folds the outcomes — so overriding is purely a
        performance fast path, never a semantic one.  Every override must be
        covered by the scalar==batch equivalence suite
        (``tests/cache/test_batch_parity.py``); lintkit's
        ``batch-kernel-parity`` rule enforces this.
        """
        requests = chunk.requests()
        outcomes = list(map(self.access, requests, chunk.seq_list()))
        return AccessOutcomeBatch.from_outcomes(outcomes)

    @abc.abstractmethod
    def contains(self, page: int) -> bool:
        """Return whether *page* is currently cached (no side effects)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of pages currently cached."""

    def cached_pages(self) -> Iterable[int]:
        """Iterate over the currently cached page ids (order unspecified).

        The default implementation raises ``NotImplementedError``; concrete
        policies in this package all override it, and tests rely on it to
        check invariants.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all cached pages (capacity is kept).

        Also forgets the last run's stats view (the deprecated shim), so a
        reset policy looks freshly built.
        """
        self._stats_view = None

    # ---------------------------------------------------------- snapshotting
    def snapshot(self) -> Mapping[str, object]:
        """Capture the kernel state as an opaque, reusable snapshot.

        The default implementation deep-copies every instance attribute
        except :attr:`_SNAPSHOT_EXCLUDE`; attributes named in
        :attr:`_SNAPSHOT_SHARED` are carried by reference (read-only shared
        structures such as OPT's future-read index).  Snapshots are
        insulated from further mutation of the policy and may be restored
        any number of times (service-mode checkpointing, crash recovery).
        """
        memo: dict[int, object] = {}
        for name in self._SNAPSHOT_SHARED:
            value = self.__dict__.get(name)
            if value is not None:
                memo[id(value)] = value
        state = {
            name: value
            for name, value in self.__dict__.items()
            if name not in self._SNAPSHOT_EXCLUDE
        }
        return copy.deepcopy(state, memo)

    def restore(self, state: Mapping[str, object]) -> None:
        """Restore kernel state captured by :meth:`snapshot`.

        The snapshot itself stays pristine (it is deep-copied back in), so
        one snapshot can seed many restores deterministically.
        """
        memo: dict[int, object] = {}
        for name in self._SNAPSHOT_SHARED:
            value = state.get(name)
            if value is not None:
                memo[id(value)] = value
        self.__dict__.update(copy.deepcopy(dict(state), memo))

    # -------------------------------------------------------------- helpers
    def _check_invariant(self) -> None:
        """Assert the capacity invariant.  Cheap; used by tests."""
        if len(self) > self._capacity:
            raise AssertionError(
                f"{self.name}: cached pages {len(self)} exceed capacity {self._capacity}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(capacity={self._capacity}, cached={len(self)})"
