"""Common interface for storage-server cache replacement policies.

Every policy in this package (and :class:`repro.core.clic.CLICPolicy`)
implements :class:`CachePolicy`.  The trace-driven simulator feeds a policy
one :class:`~repro.simulation.request.IORequest` at a time, in arrival order,
together with the request's server-assigned sequence number; the policy
reports whether the requested page was in the cache and updates its internal
state (admission, promotion, eviction).

The paper's evaluation metric is the *read hit ratio*: the number of read
hits divided by the number of read requests.  Policies report hits for both
reads and writes; the simulator and :class:`CacheStats` do the bookkeeping.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["CacheStats", "CachePolicy", "validate_capacity"]


def validate_capacity(capacity: int) -> int:
    """Validate a cache capacity expressed in pages."""
    if not isinstance(capacity, int):
        raise TypeError(f"capacity must be an int, got {type(capacity).__name__}")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return capacity


@dataclass
class CacheStats:
    """Hit/miss accounting for one simulation run of a single policy."""

    read_requests: int = 0
    read_hits: int = 0
    write_requests: int = 0
    write_hits: int = 0
    evictions: int = 0
    admissions: int = 0
    bypasses: int = 0

    @property
    def requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def read_hit_ratio(self) -> float:
        """Read hits / read requests (the paper's metric).  0.0 if no reads."""
        if self.read_requests == 0:
            return 0.0
        return self.read_hits / self.read_requests

    @property
    def overall_hit_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return (self.read_hits + self.write_hits) / self.requests

    def record(self, request: IORequest, hit: bool) -> None:
        """Record the outcome of one request."""
        if request.is_read:
            self.read_requests += 1
            if hit:
                self.read_hits += 1
        else:
            self.write_requests += 1
            if hit:
                self.write_hits += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` aggregating *self* and *other*."""
        return CacheStats(
            read_requests=self.read_requests + other.read_requests,
            read_hits=self.read_hits + other.read_hits,
            write_requests=self.write_requests + other.write_requests,
            write_hits=self.write_hits + other.write_hits,
            evictions=self.evictions + other.evictions,
            admissions=self.admissions + other.admissions,
            bypasses=self.bypasses + other.bypasses,
        )

    def as_dict(self) -> dict:
        return {
            "read_requests": self.read_requests,
            "read_hits": self.read_hits,
            "read_hit_ratio": self.read_hit_ratio,
            "write_requests": self.write_requests,
            "write_hits": self.write_hits,
            "evictions": self.evictions,
            "admissions": self.admissions,
            "bypasses": self.bypasses,
        }


class CachePolicy(abc.ABC):
    """Abstract base class for storage-server cache replacement policies.

    Subclasses must implement :meth:`access` and :meth:`contains`, keep the
    number of cached pages at or below ``capacity`` at all times, and maintain
    :attr:`stats`.
    """

    #: Short name used by the policy registry and in experiment output.
    name: str = "base"

    #: Whether the policy reads hints from requests.  Purely informational.
    hint_aware: bool = False

    #: Whether the policy requires the full future request stream up front
    #: (:meth:`prepare`) before simulation.  Only OPT sets this.
    offline: bool = False

    def __init__(self, capacity: int):
        self._capacity = validate_capacity(capacity)
        self.stats = CacheStats()

    # ------------------------------------------------------------------ API
    @property
    def capacity(self) -> int:
        """Cache capacity in pages."""
        return self._capacity

    def prepare(self, requests: Sequence[IORequest], start_seq: int = 0) -> None:
        """Give offline policies (OPT) the full request stream in advance.

        Online policies ignore this.  The simulator calls it once before the
        first :meth:`access` when the policy declares ``offline = True``.
        ``start_seq`` is the sequence number the simulator will assign to
        ``requests[0]``; offline policies must index future positions in the
        same numbering that :meth:`access` will see.
        """

    @abc.abstractmethod
    def access(self, request: IORequest, seq: int) -> bool:
        """Process one request; return ``True`` iff the page was cached.

        ``seq`` is the server-assigned sequence number (0-based position of
        the request in the stream).  Implementations must call
        ``self.stats.record(request, hit)`` exactly once.
        """

    @abc.abstractmethod
    def contains(self, page: int) -> bool:
        """Return whether *page* is currently cached (no side effects)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of pages currently cached."""

    def cached_pages(self) -> Iterable[int]:
        """Iterate over the currently cached page ids (order unspecified).

        The default implementation raises ``NotImplementedError``; concrete
        policies in this package all override it, and tests rely on it to
        check invariants.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all cached pages and statistics (capacity is kept)."""
        self.stats = CacheStats()

    # -------------------------------------------------------------- helpers
    def _check_invariant(self) -> None:
        """Assert the capacity invariant.  Cheap; used by tests."""
        if len(self) > self._capacity:
            raise AssertionError(
                f"{self.name}: cached pages {len(self)} exceed capacity {self._capacity}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(capacity={self._capacity}, cached={len(self)})"
