"""CAR: Clock with Adaptive Replacement (Bansal & Modha, FAST '04).

CAR combines ARC's adaptation with CLOCK's reference-bit approximation of
recency.  Two clocks T1 (recency) and T2 (frequency) hold cached pages, and
two LRU ghost lists B1/B2 hold recently evicted ids; ghost hits adapt the
target size ``p`` of T1, exactly as in ARC.

Listed in the CLIC paper's related work; included for extended comparisons.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterable

from repro.cache.base import (
    HIT,
    AccessOutcome,
    AccessOutcomeBatch,
    CachePolicy,
    _admit_batch,
    _all_hit_batch,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = ["CARPolicy"]


class CARPolicy(CachePolicy):
    """Clock with Adaptive Replacement."""

    name = "CAR"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._p = 0.0
        self._t1: deque[int] = deque()   # clock 1 (circular buffer of page ids)
        self._t2: deque[int] = deque()   # clock 2
        self._ref: dict[int, bool] = {}  # reference bit for cached pages
        self._in_t1: set[int] = set()
        self._in_t2: set[int] = set()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()

    # ----------------------------------------------------------- internals
    def _replace(self) -> int | None:
        """The CAR "replace()" procedure: demote from T1/T2 into B1/B2."""
        while True:
            if len(self._t1) >= max(1, int(self._p)) and self._t1:
                page = self._t1.popleft()
                if self._ref[page]:
                    # Second chance: move to tail of T2 with the bit cleared.
                    self._ref[page] = False
                    self._in_t1.discard(page)
                    self._in_t2.add(page)
                    self._t2.append(page)
                else:
                    self._in_t1.discard(page)
                    del self._ref[page]
                    self._b1[page] = None
                    return page
            elif self._t2:
                page = self._t2.popleft()
                if self._ref[page]:
                    self._ref[page] = False
                    self._t2.append(page)
                else:
                    self._in_t2.discard(page)
                    del self._ref[page]
                    self._b2[page] = None
                    return page
            else:  # pragma: no cover - only reachable with capacity 0, which is rejected
                return None

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        c = self.capacity
        if page in self._ref:
            self._ref[page] = True
            return HIT

        in_b1 = page in self._b1
        in_b2 = page in self._b2

        evicted: tuple[int, ...] = ()
        if len(self) == c:
            victim = self._replace()
            if victim is not None:
                evicted = (victim,)
            # Ghost-list housekeeping on a complete miss.
            if not in_b1 and not in_b2:
                if len(self._t1) + len(self._b1) > c and self._b1:
                    self._b1.popitem(last=False)
                elif len(self) + len(self._b1) + len(self._b2) > 2 * c and self._b2:
                    self._b2.popitem(last=False)

        if not in_b1 and not in_b2:
            self._t1.append(page)
            self._in_t1.add(page)
            self._ref[page] = False
        elif in_b1:
            self._p = min(
                self._p + max(1.0, len(self._b2) / max(1, len(self._b1))), float(c)
            )
            del self._b1[page]
            self._t2.append(page)
            self._in_t2.add(page)
            self._ref[page] = False
        else:
            self._p = max(
                self._p - max(1.0, len(self._b1) / max(1, len(self._b2))), 0.0
            )
            del self._b2[page]
            self._t2.append(page)
            self._in_t2.add(page)
            self._ref[page] = False
        return AccessOutcome(False, admitted=True, evicted=evicted)

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        # Fused batch kernel, bit-identical to the access() loop (pinned by
        # tests/cache/test_batch_parity.py).  A hit only sets the page's
        # reference bit — a fully order-independent update — so a chunk
        # whose pages are all resident collapses to one bit-set per distinct
        # page; otherwise a lean loop mirrors access() (the clocks and ghost
        # lists each miss reads depend on every prior request).
        pages = chunk.page.tolist()
        ref = self._ref
        n = len(pages)

        distinct = dict.fromkeys(pages)
        if all(page in ref for page in distinct):
            for page in distinct:
                ref[page] = True
            return _all_hit_batch(n)

        t1 = self._t1
        t2 = self._t2
        t1_popleft = t1.popleft
        t1_append = t1.append
        t2_popleft = t2.popleft
        t2_append = t2.append
        in_t1 = self._in_t1
        in_t2 = self._in_t2
        b1 = self._b1
        b2 = self._b2
        c = self.capacity
        p = self._p
        hit_flags = bytearray(n)
        evict_pos: list[int] = []
        evicted: list[int] = []
        # The replace() clock sweep is inlined below, with the adaptation
        # parameter kept in the local ``p`` (written back once at the end)
        # and its T1-threshold ``max(1, int(p))`` recomputed only when ``p``
        # changes — the dominant per-miss cost in this loop.
        p_min = 1 if p < 1.0 else int(p)
        for i, page in enumerate(pages):
            if page in ref:
                ref[page] = True
                hit_flags[i] = 1
                continue

            in_b1 = page in b1
            in_b2 = page in b2

            if len(ref) == c:
                while True:
                    if len(t1) >= p_min and t1:
                        victim = t1_popleft()
                        if ref[victim]:
                            # Second chance: to tail of T2, bit cleared.
                            ref[victim] = False
                            in_t1.discard(victim)
                            in_t2.add(victim)
                            t2_append(victim)
                        else:
                            in_t1.discard(victim)
                            del ref[victim]
                            b1[victim] = None
                            break
                    elif t2:
                        victim = t2_popleft()
                        if ref[victim]:
                            ref[victim] = False
                            t2_append(victim)
                        else:
                            in_t2.discard(victim)
                            del ref[victim]
                            b2[victim] = None
                            break
                    else:  # pragma: no cover - capacity 0 is rejected upstream
                        victim = None
                        break
                if victim is not None:
                    evicted.append(victim)
                    evict_pos.append(i)
                # Ghost-list housekeeping on a complete miss.
                if not in_b1 and not in_b2:
                    if len(t1) + len(b1) > c and b1:
                        b1.popitem(last=False)
                    elif len(ref) + len(b1) + len(b2) > 2 * c and b2:
                        b2.popitem(last=False)

            if not in_b1 and not in_b2:
                t1_append(page)
                in_t1.add(page)
            elif in_b1:
                p = min(p + max(1.0, len(b2) / max(1, len(b1))), float(c))
                p_min = 1 if p < 1.0 else int(p)
                del b1[page]
                t2_append(page)
                in_t2.add(page)
            else:
                p = max(p - max(1.0, len(b1) / max(1, len(b2))), 0.0)
                p_min = 1 if p < 1.0 else int(p)
                del b2[page]
                t2_append(page)
                in_t2.add(page)
            ref[page] = False
        self._p = p
        return _admit_batch(hit_flags, evict_pos, evicted)

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._ref

    def __len__(self) -> int:
        return len(self._ref)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._ref)

    def reset(self) -> None:
        super().reset()
        self._p = 0.0
        self._t1.clear()
        self._t2.clear()
        self._ref.clear()
        self._in_t1.clear()
        self._in_t2.clear()
        self._b1.clear()
        self._b2.clear()
