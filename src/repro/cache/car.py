"""CAR: Clock with Adaptive Replacement (Bansal & Modha, FAST '04).

CAR combines ARC's adaptation with CLOCK's reference-bit approximation of
recency.  Two clocks T1 (recency) and T2 (frequency) hold cached pages, and
two LRU ghost lists B1/B2 hold recently evicted ids; ghost hits adapt the
target size ``p`` of T1, exactly as in ARC.

Listed in the CLIC paper's related work; included for extended comparisons.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterable

from repro.cache.base import HIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["CARPolicy"]


class CARPolicy(CachePolicy):
    """Clock with Adaptive Replacement."""

    name = "CAR"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._p = 0.0
        self._t1: deque[int] = deque()   # clock 1 (circular buffer of page ids)
        self._t2: deque[int] = deque()   # clock 2
        self._ref: dict[int, bool] = {}  # reference bit for cached pages
        self._in_t1: set[int] = set()
        self._in_t2: set[int] = set()
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()

    # ----------------------------------------------------------- internals
    def _replace(self) -> int | None:
        """The CAR "replace()" procedure: demote from T1/T2 into B1/B2."""
        while True:
            if len(self._t1) >= max(1, int(self._p)) and self._t1:
                page = self._t1.popleft()
                if self._ref[page]:
                    # Second chance: move to tail of T2 with the bit cleared.
                    self._ref[page] = False
                    self._in_t1.discard(page)
                    self._in_t2.add(page)
                    self._t2.append(page)
                else:
                    self._in_t1.discard(page)
                    del self._ref[page]
                    self._b1[page] = None
                    return page
            elif self._t2:
                page = self._t2.popleft()
                if self._ref[page]:
                    self._ref[page] = False
                    self._t2.append(page)
                else:
                    self._in_t2.discard(page)
                    del self._ref[page]
                    self._b2[page] = None
                    return page
            else:  # pragma: no cover - only reachable with capacity 0, which is rejected
                return None

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        c = self.capacity
        if page in self._ref:
            self._ref[page] = True
            return HIT

        in_b1 = page in self._b1
        in_b2 = page in self._b2

        evicted: tuple[int, ...] = ()
        if len(self) == c:
            victim = self._replace()
            if victim is not None:
                evicted = (victim,)
            # Ghost-list housekeeping on a complete miss.
            if not in_b1 and not in_b2:
                if len(self._t1) + len(self._b1) > c and self._b1:
                    self._b1.popitem(last=False)
                elif len(self) + len(self._b1) + len(self._b2) > 2 * c and self._b2:
                    self._b2.popitem(last=False)

        if not in_b1 and not in_b2:
            self._t1.append(page)
            self._in_t1.add(page)
            self._ref[page] = False
        elif in_b1:
            self._p = min(
                self._p + max(1.0, len(self._b2) / max(1, len(self._b1))), float(c)
            )
            del self._b1[page]
            self._t2.append(page)
            self._in_t2.add(page)
            self._ref[page] = False
        else:
            self._p = max(
                self._p - max(1.0, len(self._b1) / max(1, len(self._b2))), 0.0
            )
            del self._b2[page]
            self._t2.append(page)
            self._in_t2.add(page)
            self._ref[page] = False
        return AccessOutcome(False, admitted=True, evicted=evicted)

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._ref

    def __len__(self) -> int:
        return len(self._ref)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._ref)

    def reset(self) -> None:
        super().reset()
        self._p = 0.0
        self._t1.clear()
        self._t2.clear()
        self._ref.clear()
        self._in_t1.clear()
        self._in_t2.clear()
        self._b1.clear()
        self._b2.clear()
