"""CLOCK (second-chance) replacement.

A one-bit approximation of LRU.  Used by the synthetic first-tier buffer-pool
simulator (real DBMS buffer pools typically use clock variants) and available
as an extra baseline for ablations.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.base import HIT, MISS_ADMIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["ClockPolicy"]


class ClockPolicy(CachePolicy):
    """Classic CLOCK: a circular list of pages with reference bits."""

    name = "CLOCK"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._frames: list[int] = []          # page id per frame, in clock order
        self._ref: dict[int, bool] = {}       # page -> reference bit
        self._index: dict[int, int] = {}      # page -> frame position
        self._hand = 0

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        if page in self._ref:
            self._ref[page] = True
            return HIT
        if len(self._frames) < self.capacity:
            self._index[page] = len(self._frames)
            self._frames.append(page)
            self._ref[page] = False
            return MISS_ADMIT
        # Advance the hand, clearing reference bits, until an unreferenced
        # page is found; replace it in place.
        while True:
            victim = self._frames[self._hand]
            if self._ref[victim]:
                self._ref[victim] = False
                self._hand = (self._hand + 1) % self.capacity
            else:
                del self._ref[victim]
                del self._index[victim]
                self._frames[self._hand] = page
                self._index[page] = self._hand
                self._ref[page] = False
                self._hand = (self._hand + 1) % self.capacity
                return AccessOutcome(False, admitted=True, evicted=(victim,))

    def contains(self, page: int) -> bool:
        return page in self._ref

    def __len__(self) -> int:
        return len(self._frames)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._frames)

    def reset(self) -> None:
        super().reset()
        self._frames.clear()
        self._ref.clear()
        self._index.clear()
        self._hand = 0
