"""CLOCK (second-chance) replacement.

A one-bit approximation of LRU.  Used by the synthetic first-tier buffer-pool
simulator (real DBMS buffer pools typically use clock variants) and available
as an extra baseline for ablations.
"""

from __future__ import annotations

from typing import Iterable

from repro.cache.base import (
    HIT,
    MISS_ADMIT,
    AccessOutcome,
    AccessOutcomeBatch,
    CachePolicy,
    _admit_batch,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = ["ClockPolicy"]


class ClockPolicy(CachePolicy):
    """Classic CLOCK: a circular list of pages with reference bits."""

    name = "CLOCK"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._frames: list[int] = []          # page id per frame, in clock order
        self._ref: dict[int, bool] = {}       # page -> reference bit
        self._index: dict[int, int] = {}      # page -> frame position
        self._hand = 0

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        if page in self._ref:
            self._ref[page] = True
            return HIT
        if len(self._frames) < self.capacity:
            self._index[page] = len(self._frames)
            self._frames.append(page)
            self._ref[page] = False
            return MISS_ADMIT
        # Advance the hand, clearing reference bits, until an unreferenced
        # page is found; replace it in place.
        while True:
            victim = self._frames[self._hand]
            if self._ref[victim]:
                self._ref[victim] = False
                self._hand = (self._hand + 1) % self.capacity
            else:
                del self._ref[victim]
                del self._index[victim]
                self._frames[self._hand] = page
                self._index[page] = self._hand
                self._ref[page] = False
                self._hand = (self._hand + 1) % self.capacity
                return AccessOutcome(False, admitted=True, evicted=(victim,))

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        # Fused batch kernel mirroring access() operation for operation (the
        # hand is kept in a local and written back once); pinned
        # bit-identical by tests/cache/test_batch_parity.py.
        frames = self._frames
        ref = self._ref
        index = self._index
        capacity = self._capacity
        hand = self._hand
        hit_flags = bytearray(len(chunk))
        evict_pos: list[int] = []
        evicted: list[int] = []
        for i, page in enumerate(chunk.page.tolist()):
            if page in ref:
                ref[page] = True
                hit_flags[i] = 1
            elif len(frames) < capacity:
                index[page] = len(frames)
                frames.append(page)
                ref[page] = False
            else:
                while True:
                    victim = frames[hand]
                    if ref[victim]:
                        ref[victim] = False
                        hand = (hand + 1) % capacity
                    else:
                        del ref[victim]
                        del index[victim]
                        frames[hand] = page
                        index[page] = hand
                        ref[page] = False
                        hand = (hand + 1) % capacity
                        evicted.append(victim)
                        evict_pos.append(i)
                        break
        self._hand = hand
        return _admit_batch(hit_flags, evict_pos, evicted)

    def contains(self, page: int) -> bool:
        return page in self._ref

    def __len__(self) -> int:
        return len(self._frames)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._frames)

    def reset(self) -> None:
        super().reset()
        self._frames.clear()
        self._ref.clear()
        self._index.clear()
        self._hand = 0
