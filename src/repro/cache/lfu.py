"""Least-Frequently-Used replacement with LRU tie-breaking.

Not part of the paper's comparison set; included as an additional
hint-oblivious baseline for ablation benches, and because frequency-based
policies are the natural contrast to recency-based ones in second-tier
caches.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable

from repro.cache.base import HIT, MISS_ADMIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["LFUPolicy"]


class LFUPolicy(CachePolicy):
    """LFU using a lazy-deletion heap keyed by (frequency, last-use order)."""

    name = "LFU"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._freq: dict[int, int] = {}
        self._heap: list[tuple[int, int, int]] = []   # (freq, tiebreak, page)
        self._counter = itertools.count()

    def _push(self, page: int) -> None:
        heapq.heappush(self._heap, (self._freq[page], next(self._counter), page))

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        if page in self._freq:
            self._freq[page] += 1
            self._push(page)
            return HIT
        if len(self._freq) >= self.capacity:
            victim = self._evict_one()
            self._freq[page] = 1
            self._push(page)
            return AccessOutcome(False, admitted=True, evicted=(victim,))
        self._freq[page] = 1
        self._push(page)
        return MISS_ADMIT

    def _evict_one(self) -> int:
        while self._heap:
            freq, _tiebreak, page = heapq.heappop(self._heap)
            if self._freq.get(page) == freq:
                del self._freq[page]
                return page
        raise RuntimeError("LFU heap exhausted while cache non-empty")  # pragma: no cover

    def contains(self, page: int) -> bool:
        return page in self._freq

    def __len__(self) -> int:
        return len(self._freq)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._freq)

    def reset(self) -> None:
        super().reset()
        self._freq.clear()
        self._heap.clear()
        self._counter = itertools.count()
