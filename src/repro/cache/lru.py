"""Least-Recently-Used replacement (the paper's simplest baseline).

LRU replaces the page whose most recent request is oldest.  Both reads and
writes count as uses and admit the page into the cache.  The paper expects
LRU to perform poorly on second-tier traces because the first-tier cache
absorbs most of the temporal locality.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import HIT, MISS_ADMIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["LRUPolicy"]


class LRUPolicy(CachePolicy):
    """Classic LRU over all requests (reads and writes)."""

    name = "LRU"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        # OrderedDict ordered from least- to most-recently used.
        self._pages: OrderedDict[int, None] = OrderedDict()

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            return HIT
        if len(pages) >= self.capacity:
            victim, _ = pages.popitem(last=False)
            pages[page] = None
            return AccessOutcome(False, admitted=True, evicted=(victim,))
        pages[page] = None
        return MISS_ADMIT

    def contains(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._pages)

    def reset(self) -> None:
        super().reset()
        self._pages.clear()
