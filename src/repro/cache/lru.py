"""Least-Recently-Used replacement (the paper's simplest baseline).

LRU replaces the page whose most recent request is oldest.  Both reads and
writes count as uses and admit the page into the cache.  The paper expects
LRU to perform poorly on second-tier traces because the first-tier cache
absorbs most of the temporal locality.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import (
    HIT,
    MISS_ADMIT,
    AccessOutcome,
    AccessOutcomeBatch,
    CachePolicy,
    _admit_batch,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = ["LRUPolicy"]


class LRUPolicy(CachePolicy):
    """Classic LRU over all requests (reads and writes)."""

    name = "LRU"
    hint_aware = False

    def __init__(self, capacity: int):
        super().__init__(capacity)
        # OrderedDict ordered from least- to most-recently used.
        self._pages: OrderedDict[int, None] = OrderedDict()

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            return HIT
        if len(pages) >= self.capacity:
            victim, _ = pages.popitem(last=False)
            pages[page] = None
            return AccessOutcome(False, admitted=True, evicted=(victim,))
        pages[page] = None
        return MISS_ADMIT

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        # Fused batch kernel: one pass over the page column operating on the
        # recency ranking directly — no request or outcome objects.  Performs
        # the same OrderedDict operations in the same order as access(), so
        # state and outcomes are bit-identical by construction (pinned by
        # tests/cache/test_batch_parity.py).
        pages = self._pages
        capacity = self._capacity
        move_to_end = pages.move_to_end
        popitem = pages.popitem
        hit_flags = bytearray(len(chunk))
        evict_pos: list[int] = []
        evicted: list[int] = []
        for i, page in enumerate(chunk.page.tolist()):
            if page in pages:
                move_to_end(page)
                hit_flags[i] = 1
            else:
                if len(pages) >= capacity:
                    evicted.append(popitem(last=False)[0])
                    evict_pos.append(i)
                pages[page] = None
        return _admit_batch(hit_flags, evict_pos, evicted)

    def contains(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._pages)

    def reset(self) -> None:
        super().reset()
        self._pages.clear()
