"""MQ: Multi-Queue replacement (Zhou, Chen & Li) for second-level caches.

MQ was designed specifically for second-tier buffer caches, where temporal
locality is weak and access frequency matters more.  It maintains ``m`` LRU
queues Q0..Q(m-1); a page with reference count ``f`` lives in queue
``min(log2(f), m-1)``.  Each cached page carries an ``expireTime``; when the
current time passes it, the page is demoted one queue level.  Evicted pages'
ids and reference counts are remembered in a ghost queue Qout so that
frequency survives eviction.

The CLIC paper cites MQ as a representative hint-oblivious second-tier
policy (TQ was shown to beat it when write hints are available).  It is not
plotted in the paper's figures, but we include it for extended comparisons
and ablation benches.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterable

from repro.cache.base import HIT, MISS_ADMIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["MQPolicy"]


class _MQEntry:
    __slots__ = ("page", "freq", "expire", "level")

    def __init__(self, page: int, freq: int, expire: int, level: int):
        self.page = page
        self.freq = freq
        self.expire = expire
        self.level = level


class MQPolicy(CachePolicy):
    """Multi-Queue with ``m`` levels, a lifetime parameter and a ghost queue."""

    name = "MQ"
    hint_aware = False

    def __init__(
        self,
        capacity: int,
        num_queues: int = 8,
        lifetime: int | None = None,
        ghost_size: int | None = None,
    ):
        super().__init__(capacity)
        if num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        self._m = num_queues
        # "lifeTime" controls how quickly pages decay to lower queues.  The MQ
        # paper recommends the peak temporal distance; a multiple of the cache
        # size is the usual simulator default.
        self._lifetime = lifetime if lifetime is not None else 4 * capacity
        self._ghost_capacity = ghost_size if ghost_size is not None else 4 * capacity
        self._queues: list[OrderedDict[int, _MQEntry]] = [
            OrderedDict() for _ in range(self._m)
        ]
        self._where: dict[int, _MQEntry] = {}
        self._ghost: OrderedDict[int, int] = OrderedDict()  # page -> remembered freq
        self._now = 0

    # ----------------------------------------------------------- internals
    def _level_for(self, freq: int) -> int:
        return min(int(math.log2(freq)) if freq > 0 else 0, self._m - 1)

    def _adjust(self) -> None:
        """Demote pages whose lifetime has expired (the MQ "Adjust" step)."""
        for level in range(1, self._m):
            queue = self._queues[level]
            while queue:
                page, entry = next(iter(queue.items()))
                if entry.expire < self._now:
                    del queue[page]
                    entry.level = level - 1
                    entry.expire = self._now + self._lifetime
                    self._queues[level - 1][page] = entry
                else:
                    break

    def _evict_one(self) -> int:
        for level in range(self._m):
            queue = self._queues[level]
            if queue:
                page, entry = queue.popitem(last=False)
                del self._where[page]
                self._ghost[page] = entry.freq
                if len(self._ghost) > self._ghost_capacity:
                    self._ghost.popitem(last=False)
                return page
        raise RuntimeError("MQ eviction requested on an empty cache")  # pragma: no cover

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        self._now += 1
        if page in self._where:
            entry = self._where[page]
            del self._queues[entry.level][page]
            entry.freq += 1
            entry.level = self._level_for(entry.freq)
            entry.expire = self._now + self._lifetime
            self._queues[entry.level][page] = entry
            outcome = HIT
        else:
            evicted: tuple[int, ...] = ()
            if len(self._where) >= self.capacity:
                evicted = (self._evict_one(),)
            freq = self._ghost.pop(page, 0) + 1
            level = self._level_for(freq)
            entry = _MQEntry(page, freq, self._now + self._lifetime, level)
            self._queues[level][page] = entry
            self._where[page] = entry
            outcome = (
                AccessOutcome(False, admitted=True, evicted=evicted)
                if evicted
                else MISS_ADMIT
            )
        self._adjust()
        return outcome

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._where

    def __len__(self) -> int:
        return len(self._where)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._where)

    def reset(self) -> None:
        super().reset()
        for q in self._queues:
            q.clear()
        self._where.clear()
        self._ghost.clear()
        self._now = 0
