"""OPT: Belady's MIN algorithm, specialised for read hit ratio.

The CLIC paper uses the off-line optimal policy as an upper bound: "It
replaces the cached page that will not be *read* for the longest time."
Because the paper's metric is the read hit ratio, only future *read*
references matter; a page that will only be written again (or never touched
again) is worthless in the cache.

This implementation additionally applies the bypass optimisation: on a miss,
if the requested page's next read lies further in the future than every
cached page's next read (in particular, if it will never be read again), the
page is not admitted at all.  This is the true optimum for the read-hit
metric and can only raise the upper bound.

OPT is an off-line policy: the simulator must call :meth:`prepare` with the
complete request stream before feeding requests.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.cache.base import HIT, MISS_ADMIT, MISS_BYPASS, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["OPTPolicy"]

#: Sentinel "time" for pages that are never read again.
_NEVER = float("inf")


class OPTPolicy(CachePolicy):
    """Belady's MIN with future knowledge of read references."""

    name = "OPT"
    hint_aware = False
    offline = True

    #: The future-read index is read-only and may be shared across many OPT
    #: instances (and sharded clusters); snapshots carry it by reference.
    _SNAPSHOT_SHARED = ("_read_positions",)

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._read_positions: dict[int, list[int]] = {}
        self._prepared = False
        self._cached: dict[int, float] = {}      # page -> next read time (may be stale)
        self._heap: list[tuple[float, int]] = [] # (-next_read, page), lazy deletion

    # --------------------------------------------------------------- set-up
    @staticmethod
    def build_read_index(
        requests: Sequence[IORequest], start_seq: int = 0
    ) -> dict[int, list[int]]:
        """Index the future read positions of every page in the stream.

        Positions are numbered from ``start_seq``, matching the sequence
        numbers the simulator assigns during replay.  The index depends only
        on the stream (not on the cache capacity), so one index can be shared
        by many :class:`OPTPolicy` instances via :meth:`adopt_read_index`.
        """
        read_positions: dict[int, list[int]] = {}
        for pos, request in enumerate(requests, start_seq):
            if request.is_read:
                read_positions.setdefault(request.page, []).append(pos)
        return read_positions

    def prepare(self, requests: Sequence[IORequest], start_seq: int = 0) -> None:
        """Index the future read positions of every page in the stream."""
        self._read_positions = self.build_read_index(requests, start_seq)
        self._prepared = True

    def adopt_read_index(self, read_positions: dict[int, list[int]]) -> None:
        """Adopt a pre-built future-read index (treated as read-only).

        The multi-policy engine uses this to build the index once per request
        stream and share it across every OPT instance in a sweep.
        """
        self._read_positions = read_positions
        self._prepared = True

    def _next_read(self, page: int, seq: int) -> float:
        """Position of the first read of *page* strictly after *seq*."""
        positions = self._read_positions.get(page)
        if not positions:
            return _NEVER
        idx = bisect_right(positions, seq)
        if idx == len(positions):
            return _NEVER
        return float(positions[idx])

    # --------------------------------------------------------------- access
    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        if not self._prepared:
            raise RuntimeError("OPTPolicy.access called before prepare()")
        page = request.page
        hit = page in self._cached

        next_read = self._next_read(page, seq)
        if hit:
            if next_read == _NEVER:
                # The page will never be read again: free the slot
                # immediately.  This *hit-path drop* counts as an eviction —
                # the page leaves the cache — so ``evictions`` can exceed
                # the number of capacity-pressure replacements, and
                # ``admissions - evictions == len(cache)`` still holds.
                del self._cached[page]
                return AccessOutcome(True, evicted=(page,))
            self._cached[page] = next_read
            heapq.heappush(self._heap, (-next_read, page))
            return HIT

        if next_read == _NEVER:
            # Never read again: pointless to cache (bypass).
            return MISS_BYPASS

        if len(self._cached) >= self.capacity:
            victim = self._pop_farthest()
            if victim is None or self._cached[victim] <= next_read:
                # Every cached page is read sooner than the new page: bypass.
                if victim is not None:
                    heapq.heappush(self._heap, (-self._cached[victim], victim))
                return MISS_BYPASS
            del self._cached[victim]
            self._cached[page] = next_read
            heapq.heappush(self._heap, (-next_read, page))
            return AccessOutcome(False, admitted=True, evicted=(victim,))

        self._cached[page] = next_read
        heapq.heappush(self._heap, (-next_read, page))
        return MISS_ADMIT

    def _pop_farthest(self) -> int | None:
        """Pop and return the cached page with the farthest next read.

        The page's (current, non-stale) heap entry is removed along the way,
        so a caller that decides *not* to evict the returned page must push
        the entry back (see the bypass branch in :meth:`access`); the page
        itself stays in ``_cached`` either way.  Stale entries skipped
        during the scan are discarded for good.  Returns ``None`` when no
        cached page has a live heap entry.
        """
        while self._heap:
            neg_time, page = self._heap[0]
            current = self._cached.get(page)
            if current is None or current != -neg_time:
                heapq.heappop(self._heap)  # stale entry
                continue
            heapq.heappop(self._heap)
            return page
        return None

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._cached)

    def reset(self) -> None:
        super().reset()
        self._cached.clear()
        self._heap.clear()
        # The future-read index survives reset so the same trace can be re-run.
