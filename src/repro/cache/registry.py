"""Name-based registry of cache replacement policies.

The simulator, experiment harness and example scripts refer to policies by
their short names ("CLIC", "LRU", "ARC", "TQ", "OPT", ...).  The registry
maps those names to factories so new policies — including user-defined ones —
can be plugged into every experiment without touching the harness.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.cache.arc import ARCPolicy
from repro.cache.base import CachePolicy
from repro.cache.car import CARPolicy
from repro.cache.clock import ClockPolicy
from repro.cache.fifo import FIFOPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.mq import MQPolicy
from repro.cache.opt import OPTPolicy
from repro.cache.tq import TQPolicy
from repro.cache.twoq import TwoQPolicy

__all__ = [
    "PolicyFactory",
    "register_policy",
    "create_policy",
    "available_policies",
    "PAPER_POLICIES",
]

PolicyFactory = Callable[..., CachePolicy]

_REGISTRY: dict[str, PolicyFactory] = {}

#: The five policies compared in the paper's evaluation (Section 6.1).
PAPER_POLICIES: tuple[str, ...] = ("OPT", "LRU", "ARC", "TQ", "CLIC")


def register_policy(name: str, factory: PolicyFactory, overwrite: bool = False) -> None:
    """Register *factory* under *name* (case-insensitive lookup).

    Raises ``ValueError`` if the name is already taken and ``overwrite`` is
    false.
    """
    key = name.upper()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[key] = factory


def create_policy(name: str, capacity: int, **kwargs: Any) -> CachePolicy:
    """Instantiate the policy registered under *name* with the given capacity."""
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](capacity=capacity, **kwargs)


def available_policies() -> Iterable[str]:
    """Names of all registered policies, sorted."""
    return sorted(_REGISTRY)


def _sharded_factory(capacity: int, **kwargs: Any) -> CachePolicy:
    # ShardedCache lives in the simulation layer (it composes policies built
    # through this registry), so it is imported at call time: registering it
    # here keeps "SHARDED" resolvable in every process — sweep workers
    # rebuild policies from pickled (name, kwargs) specs — without a
    # circular import at module load.
    from repro.simulation.cluster import ShardedCache

    return ShardedCache(capacity=capacity, **kwargs)


def _register_builtins() -> None:
    # CLICPolicy is imported lazily to avoid a circular import at module load
    # (repro.core.clic depends on repro.cache.base).
    from repro.core.clic import CLICPolicy

    builtin: dict[str, PolicyFactory] = {
        "LRU": LRUPolicy,
        "FIFO": FIFOPolicy,
        "CLOCK": ClockPolicy,
        "LFU": LFUPolicy,
        "ARC": ARCPolicy,
        "2Q": TwoQPolicy,
        "CAR": CARPolicy,
        "MQ": MQPolicy,
        "OPT": OPTPolicy,
        "TQ": TQPolicy,
        "CLIC": CLICPolicy,
        "SHARDED": _sharded_factory,
    }
    for name, factory in builtin.items():
        register_policy(name, factory, overwrite=True)


_register_builtins()
