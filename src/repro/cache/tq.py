"""TQ: the ad-hoc write-hint-aware second-tier policy (Li et al., FAST '05).

TQ is the state-of-the-art hint-aware baseline in the CLIC paper.  It
exploits exactly one kind of hint — *write hints* attached to write requests
by the DBMS — with a hard-coded interpretation:

* **replacement writes** (including synchronous replacement writes) signal
  that the first tier is evicting the page; any future read of the page must
  come to the storage server, so the page is a *good* caching candidate.
* **recovery writes** signal that the page is being persisted for
  recoverability while remaining hot in the first-tier cache; future reads
  will be absorbed by the first tier, so the page is a *poor* caching
  candidate.
* read misses bring pages that the first tier is about to cache itself, so
  they are likewise poor candidates.

The published algorithm manages the cache with two logical queues — a
high-value queue holding pages whose most recent request was a replacement
(or synchronous) write, and a low-value queue holding everything else — and
evicts from the low-value queue (LRU order) before touching the high-value
queue.  A replacement-written page that is *not* read back within a bounded
number of requests loses its protection: it is demoted to the low-value
queue, so stale write pages cannot monopolise the cache.  This module
reproduces that structure (the demotion lifetime defaults to a small multiple
of the cache size).  Because TQ's response is hard-coded, it must be
configured with the name of the hint type that carries the write hint and the
hint values that denote each write class; defaults match the DB2/MySQL
schemas in :mod:`repro.trace.schema`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import HIT, MISS_ADMIT, MISS_BYPASS, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["TQPolicy", "DEFAULT_REQUEST_TYPE_HINT", "DEFAULT_REPLACEMENT_VALUES", "DEFAULT_RECOVERY_VALUES"]

#: Hint type that carries the write hint in the bundled DB2/MySQL schemas.
DEFAULT_REQUEST_TYPE_HINT = "request_type"
#: Hint values denoting replacement-class writes (good caching candidates).
DEFAULT_REPLACEMENT_VALUES = frozenset({"replacement_write", "synchronous_write"})
#: Hint values denoting recovery-class writes (poor caching candidates).
DEFAULT_RECOVERY_VALUES = frozenset({"recovery_write"})


class TQPolicy(CachePolicy):
    """Two-queue, write-hint-aware replacement."""

    name = "TQ"
    hint_aware = True

    def __init__(
        self,
        capacity: int,
        request_type_hint: str = DEFAULT_REQUEST_TYPE_HINT,
        replacement_values: frozenset[str] | set[str] = DEFAULT_REPLACEMENT_VALUES,
        recovery_values: frozenset[str] | set[str] = DEFAULT_RECOVERY_VALUES,
        cache_recovery_writes: bool = False,
        write_queue_lifetime: int | None = None,
    ):
        super().__init__(capacity)
        self._hint_name = request_type_hint
        self._replacement_values = frozenset(replacement_values)
        self._recovery_values = frozenset(recovery_values)
        self._cache_recovery_writes = cache_recovery_writes
        #: Requests a replacement-written page may wait for its read-back
        #: before losing its protected status.
        self._lifetime = write_queue_lifetime if write_queue_lifetime is not None else 4 * capacity
        # Both queues are ordered LRU -> MRU; the high queue remembers when
        # each page was enqueued so stale entries can be demoted.
        self._high: OrderedDict[int, int] = OrderedDict()   # page -> enqueue seq
        self._low: OrderedDict[int, None] = OrderedDict()   # everything else

    # ----------------------------------------------------------- internals
    def _classify(self, request: IORequest) -> str:
        """Classify a request as 'replacement', 'recovery' or 'other'."""
        if request.is_write:
            value = request.hints.get(self._hint_name)
            if value in self._replacement_values:
                return "replacement"
            if value in self._recovery_values:
                return "recovery"
        return "other"

    def _remove(self, page: int) -> None:
        if page in self._high:
            del self._high[page]
        elif page in self._low:
            del self._low[page]

    def _enqueue(self, page: int, klass: str, seq: int) -> None:
        if klass == "replacement":
            self._high[page] = seq
        else:
            self._low[page] = None

    def _demote_stale(self, seq: int) -> None:
        """Move replacement-written pages that were never read back to the low queue."""
        while self._high:
            page, enqueued = next(iter(self._high.items()))
            if seq - enqueued <= self._lifetime:
                break
            del self._high[page]
            self._low[page] = None
            # Demoted pages become the low queue's coldest entries.
            self._low.move_to_end(page, last=False)

    def _evict_one(self) -> int:
        if self._low:
            victim, _ = self._low.popitem(last=False)
        else:
            victim, _ = self._high.popitem(last=False)
        return victim

    # --------------------------------------------------------------- access
    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        hit = page in self._high or page in self._low
        klass = self._classify(request)
        self._demote_stale(seq)

        if hit:
            # Re-queue according to the class of the *most recent* request.
            self._remove(page)
            self._enqueue(page, klass, seq)
            return HIT

        if klass == "recovery" and not self._cache_recovery_writes:
            # Hard-coded response: recovery writes are not worth caching.
            return MISS_BYPASS

        if len(self) >= self.capacity:
            victim = self._evict_one()
            self._enqueue(page, klass, seq)
            return AccessOutcome(False, admitted=True, evicted=(victim,))
        self._enqueue(page, klass, seq)
        return MISS_ADMIT

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._high or page in self._low

    def __len__(self) -> int:
        return len(self._high) + len(self._low)

    def cached_pages(self) -> Iterable[int]:
        yield from self._low
        yield from self._high

    def reset(self) -> None:
        super().reset()
        self._high.clear()
        self._low.clear()
