"""2Q replacement (Johnson & Shasha, VLDB '94) — the "full version" (2Q-2).

2Q avoids LRU's weakness to correlated/scan references by admitting pages
first into a small FIFO queue ``A1in``.  Only pages re-referenced after
falling out of ``A1in`` (their ids are remembered in a ghost queue
``A1out``) are promoted into the main LRU queue ``Am``.

Listed in the CLIC paper's related work as one of the classic hint-oblivious
improvements over LRU; included here for extended comparisons/ablations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.cache.base import HIT, MISS_ADMIT, AccessOutcome, CachePolicy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest

__all__ = ["TwoQPolicy"]


class TwoQPolicy(CachePolicy):
    """2Q with the commonly recommended sizing Kin = 25% of C, Kout = 50% of C."""

    name = "2Q"
    hint_aware = False

    def __init__(self, capacity: int, kin_fraction: float = 0.25, kout_fraction: float = 0.5):
        super().__init__(capacity)
        if not 0.0 < kin_fraction < 1.0:
            raise ValueError("kin_fraction must be in (0, 1)")
        if kout_fraction <= 0.0:
            raise ValueError("kout_fraction must be positive")
        self._kin = max(1, int(capacity * kin_fraction))
        self._kout = max(1, int(capacity * kout_fraction))
        self._a1in: OrderedDict[int, None] = OrderedDict()   # FIFO of new pages
        self._a1out: OrderedDict[int, None] = OrderedDict()  # ghost FIFO (ids only)
        self._am: OrderedDict[int, None] = OrderedDict()     # main LRU

    def _reclaim_for(self, page: int) -> int | None:
        """Free one frame, following the 2Q "reclaimfor" procedure."""
        if len(self) < self.capacity:
            return None
        if len(self._a1in) > self._kin:
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        elif self._am:
            victim, _ = self._am.popitem(last=False)
        else:
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        return victim

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        if page in self._am:
            self._am.move_to_end(page)
            return HIT
        if page in self._a1in:
            # 2Q leaves A1in hits in place (FIFO order unchanged).
            return HIT
        if page in self._a1out:
            # Remove the ghost entry first: reclaiming may itself push an A1in
            # victim into A1out and trim the ghost queue.
            del self._a1out[page]
            victim = self._reclaim_for(page)
            self._am[page] = None
        else:
            victim = self._reclaim_for(page)
            self._a1in[page] = None
        if victim is None:
            return MISS_ADMIT
        return AccessOutcome(False, admitted=True, evicted=(victim,))

    def contains(self, page: int) -> bool:
        return page in self._am or page in self._a1in

    def __len__(self) -> int:
        return len(self._am) + len(self._a1in)

    def cached_pages(self) -> Iterable[int]:
        yield from self._a1in
        yield from self._am

    def reset(self) -> None:
        super().reset()
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()
