"""Core CLIC machinery: hints, hint statistics, priorities and the policy."""

from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.core.grouping import (
    project_hint_key,
    project_hint_set,
    select_informative_hint_types,
)
from repro.core.hints import EMPTY_HINT_SET, HintSchema, HintSet, HintType, make_hint_set
from repro.core.outqueue import OutQueue, OutQueueEntry
from repro.core.priority import PriorityManager
from repro.core.spacesaving import SpaceSaving, SpaceSavingTracker, TrackedItem
from repro.core.statistics import HintSetStats, HintStatsTracker, HintTable, compute_priority

__all__ = [
    "CLICPolicy",
    "CLICConfig",
    "project_hint_key",
    "project_hint_set",
    "select_informative_hint_types",
    "EMPTY_HINT_SET",
    "HintSchema",
    "HintSet",
    "HintType",
    "make_hint_set",
    "OutQueue",
    "OutQueueEntry",
    "PriorityManager",
    "SpaceSaving",
    "SpaceSavingTracker",
    "TrackedItem",
    "HintSetStats",
    "HintStatsTracker",
    "HintTable",
    "compute_priority",
]
