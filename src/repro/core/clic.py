"""The CLIC storage-server cache replacement policy (Sections 3-5).

CLIC assigns every hint set ``H`` a caching priority ``Pr(H)`` learned
on-line from the read re-reference behaviour of requests that carried ``H``
(:mod:`repro.core.priority`).  The replacement policy (paper Figure 4) then
works as follows for a request ``(p, H)`` with sequence number ``s``:

* if ``p`` is cached, refresh ``seq(p)`` and ``H(p)`` — the most recent
  request always determines a page's priority;
* else, if the cache has free space, admit ``p``;
* else, let ``m`` be the minimum priority over all cached pages and ``v``
  the *oldest* (smallest ``seq``) page with priority ``m``.  If
  ``Pr(H) > m``, evict ``v`` (remembering it in the outqueue) and admit
  ``p``; otherwise do not cache ``p`` and remember it in the outqueue.

The implementation mirrors the constant-expected-time data structures the
paper describes: a hash map of cached pages, one recency-ordered list of
pages per hint set, and a (lazily validated) heap over hint sets keyed by
priority.  Priorities only change at window boundaries, at which point the
heap is rebuilt.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.cache.base import (
    HIT,
    MISS_ADMIT,
    MISS_BYPASS,
    AccessOutcome,
    AccessOutcomeBatch,
    CachePolicy,
    _mixed_batch,
)
from repro.core.config import CLICConfig
from repro.core.grouping import project_hint_key
from repro.core.hints import HintSet
from repro.core.outqueue import OutQueue, OutQueueEntry
from repro.core.priority import PriorityManager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type annotations only (avoids an import cycle)
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = ["CLICPolicy"]


@dataclass(slots=True)
class _PageMeta:
    """Per-cached-page metadata: seq(p) and H(p) from the most recent request."""

    seq: int
    hint_key: tuple


class CLICPolicy(CachePolicy):
    """CLient-Informed Caching replacement policy."""

    name = "CLIC"
    hint_aware = True

    def __init__(self, capacity: int, config: CLICConfig | None = None):
        super().__init__(capacity)
        self._config = config or CLICConfig()
        # The paper charges CLIC for its tracking metadata by shrinking the
        # usable cache (~1% for the default parameters).
        self._effective_capacity = self._config.effective_capacity(capacity)
        self._priorities = PriorityManager(
            window_size=self._config.window_size,
            decay=self._config.decay,
            top_k=self._config.top_k,
        )
        self._outqueue = OutQueue(self._config.outqueue_capacity(capacity))
        self._cached: dict[int, _PageMeta] = {}
        # Per-hint-set recency lists: insertion order equals seq order because
        # sequence numbers are monotonically increasing and every re-request
        # moves the page to the tail.
        self._lists: dict[tuple, OrderedDict[int, None]] = {}
        # Lazily validated heap of (priority, head_seq, tiebreak, hint_key).
        self._heap: list[tuple[float, int, int, tuple]] = []
        self._tiebreak = itertools.count()

    # ------------------------------------------------------------ properties
    @property
    def config(self) -> CLICConfig:
        return self._config

    @property
    def effective_capacity(self) -> int:
        """Usable page slots after the metadata charge."""
        return self._effective_capacity

    @property
    def priority_manager(self) -> PriorityManager:
        """The windowed priority estimator (exposed for analysis and tests)."""
        return self._priorities

    @property
    def outqueue(self) -> OutQueue:
        return self._outqueue

    def hint_priority(self, hints: HintSet) -> float:
        """Current ``Pr(H)`` for a hint set (zero if unknown)."""
        return self._priorities.priority(self._hint_key(hints))

    def _hint_key(self, hints: HintSet) -> tuple:
        """The statistics key for a hint set (projected if grouping is enabled)."""
        return project_hint_key(hints, self._config.hint_projection)

    # ------------------------------------------------------------ list upkeep
    def _list_for(self, hint_key: tuple) -> OrderedDict[int, None]:
        lst = self._lists.get(hint_key)
        if lst is None:
            lst = OrderedDict()
            self._lists[hint_key] = lst
        return lst

    def _push_heap_entry(self, hint_key: tuple) -> None:
        lst = self._lists.get(hint_key)
        if not lst:
            return
        head_page = next(iter(lst))
        head_seq = self._cached[head_page].seq
        heapq.heappush(
            self._heap,
            (self._priorities.priority(hint_key), head_seq, next(self._tiebreak), hint_key),
        )

    def _rebuild_heap(self) -> None:
        """Rebuild the hint-set priority heap (called at window boundaries)."""
        self._heap = []
        self._tiebreak = itertools.count()
        for hint_key, lst in self._lists.items():
            if lst:
                self._push_heap_entry(hint_key)

    def _peek_victim(self) -> tuple[float, int, tuple] | None:
        """Return ``(priority m, seq(v), hint_key)`` of the eviction candidate.

        Pops stale heap entries (empty lists, outdated head sequence numbers)
        and re-pushes corrected ones until the top entry is valid.
        """
        while self._heap:
            priority, head_seq, _tb, hint_key = self._heap[0]
            lst = self._lists.get(hint_key)
            if not lst:
                heapq.heappop(self._heap)
                continue
            head_page = next(iter(lst))
            current_seq = self._cached[head_page].seq
            current_priority = self._priorities.priority(hint_key)
            if head_seq != current_seq or priority != current_priority:
                heapq.heappop(self._heap)
                self._push_heap_entry(hint_key)
                continue
            return priority, head_seq, hint_key
        return None

    # -------------------------------------------------------------- mutation
    def _admit(self, page: int, seq: int, hint_key: tuple) -> None:
        lst = self._list_for(hint_key)
        was_empty = not lst
        self._cached[page] = _PageMeta(seq=seq, hint_key=hint_key)
        lst[page] = None
        if was_empty:
            self._push_heap_entry(hint_key)
        self._outqueue.remove(page)

    def _refresh_cached(self, page: int, seq: int, hint_key: tuple) -> None:
        """Update seq(p)/H(p) of a cached page, moving it between hint-set lists."""
        meta = self._cached[page]
        old_key = meta.hint_key
        meta.seq = seq
        if old_key == hint_key:
            self._lists[old_key].move_to_end(page)
            return
        old_list = self._lists[old_key]
        del old_list[page]
        meta.hint_key = hint_key
        new_list = self._list_for(hint_key)
        was_empty = not new_list
        new_list[page] = None
        if was_empty:
            self._push_heap_entry(hint_key)

    def _evict(self, hint_key: tuple) -> int:
        """Evict the oldest page of *hint_key*'s list into the outqueue."""
        lst = self._lists[hint_key]
        victim, _ = lst.popitem(last=False)
        meta = self._cached.pop(victim)
        self._outqueue.put(victim, meta.seq, meta.hint_key)
        return victim

    # --------------------------------------------------------------- access
    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        page = request.page
        hint_key = self._hint_key(request.hints)
        hit = page in self._cached

        # --- Hint analysis (Section 3.1): detect read re-references using the
        # metadata remembered for cached pages and for outqueue pages.
        if hit:
            prev_meta = self._cached[page]
            prev_seq, prev_key = prev_meta.seq, prev_meta.hint_key
        else:
            oq_entry = self._outqueue.get(page)
            if oq_entry is not None:
                prev_seq, prev_key = oq_entry.seq, oq_entry.hint_key
            else:
                prev_seq, prev_key = None, None
        if prev_seq is not None and request.is_read and seq > prev_seq:
            self._priorities.record_read_rereference(prev_key, seq - prev_seq)

        # --- Cache management (Figure 4), using the priorities learned from
        # *previous* windows.
        if hit:
            self._refresh_cached(page, seq, hint_key)
            outcome = HIT
        elif len(self._cached) < self._effective_capacity:
            self._admit(page, seq, hint_key)
            outcome = MISS_ADMIT
        else:
            victim = self._peek_victim()
            if victim is not None and self._priorities.priority(hint_key) > victim[0]:
                evicted_page = self._evict(victim[2])
                self._admit(page, seq, hint_key)
                outcome = AccessOutcome(False, admitted=True, evicted=(evicted_page,))
            else:
                # Do not cache p; remember its most recent request so that a
                # quick read re-reference can still be detected.
                self._outqueue.put(page, seq, hint_key)
                outcome = MISS_BYPASS

        # --- Window accounting (Section 3.2).  The request itself is counted
        # in the window that is now in progress; when it closes, priorities
        # change and the hint-set heap must be rebuilt.
        window_closed = self._priorities.record_request(hint_key)
        if window_closed:
            self._rebuild_heap()

        return outcome

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        # Fused batch kernel.  The cache-management half of CLIC is
        # inherently sequential (each request sees the heap/outqueue state
        # the previous one left), so the loop below performs the exact
        # mutation-helper calls of access() in the same order — bit-identical
        # by construction, pinned by tests/cache/test_batch_parity.py.  What
        # the kernel batches away:
        #
        # * request/outcome object materialisation (columns are consumed as
        #   plain lists, outcomes assembled as flag arrays);
        # * hint-key projection — once per hint-dictionary entry instead of
        #   once per request;
        # * tracker updates — priorities only change at window boundaries,
        #   so within a window segment the tracker is invisible to cache
        #   management; its updates are deferred and applied per segment as
        #   per-key counts (PriorityManager.record_segment) whenever the
        #   tracker can absorb them exactly.  A Space-Saving tracker whose
        #   counters would recycle mid-segment falls back to ordered
        #   per-request updates inside the same loop, preserving tie-breaks.
        priorities = self._priorities
        tracker = priorities.tracker
        projection = self._config.hint_projection
        key_of_id = [
            project_hint_key(hints, projection) for hints in chunk.hint_sets
        ]
        pages = chunk.page.tolist()
        writes = chunk.write.tolist()
        hint_ids = chunk.hint_id.tolist()
        seqs = chunk.seq_list()

        cached = self._cached
        cached_get = cached.get
        outqueue = self._outqueue
        oq_entries = outqueue.entries
        oq_capacity = outqueue.capacity
        oq_get = oq_entries.get
        effective_capacity = self._effective_capacity
        refresh = self._refresh_cached
        admit = self._admit
        peek_victim = self._peek_victim
        evict_list = self._evict

        n = len(chunk)
        hit_flags = bytearray(n)
        admit_flags = bytearray(n)
        bypass_flags = bytearray(n)
        evict_pos: list[int] = []
        evicted: list[int] = []

        start = 0
        while start < n:
            # One segment per window: the boundary falls between requests
            # exactly where the scalar loop would close the window.
            stop = min(n, start + priorities.window_room())
            segment_keys = {key_of_id[h] for h in set(hint_ids[start:stop])}
            defer = tracker.can_defer(segment_keys)
            # Per-key request counts; the pop-and-reinsert update keeps the
            # dict in last-occurrence order, which record_segment requires.
            counts: dict[tuple, int] = {}
            rerefs: list[tuple[tuple, int]] = []
            accepts = tracker.accepts_rereference
            record_reref = priorities.record_read_rereference
            record_request = priorities.record_request
            # Priorities are frozen until the window closes (= the segment
            # boundary), so Pr(H) lookups bind the manager's live mapping;
            # the mapping object is replaced at the boundary, hence the
            # per-segment rebind.
            priority_get = priorities.mapping.get
            window_closed = False
            for i, page, seq, hint_id, write in zip(
                range(start, stop),
                pages[start:stop],
                seqs[start:stop],
                hint_ids[start:stop],
                writes[start:stop],
            ):
                hint_key = key_of_id[hint_id]

                # Hint analysis (Section 3.1), as in access().  In deferred
                # mode the credit is gated now — tracked at segment start or
                # requested earlier in this segment — and recorded at the
                # segment boundary; membership only grows in a no-recycle
                # segment, so the late apply is exact.
                meta = cached_get(page)
                if meta is not None:
                    prev_seq, prev_key = meta.seq, meta.hint_key
                else:
                    oq_entry = oq_get(page)
                    if oq_entry is not None:
                        prev_seq, prev_key = oq_entry.seq, oq_entry.hint_key
                    else:
                        prev_seq = prev_key = None
                if prev_seq is not None and not write and seq > prev_seq:
                    if defer:
                        if accepts(prev_key) or prev_key in counts:
                            rerefs.append((prev_key, seq - prev_seq))
                    else:
                        record_reref(prev_key, seq - prev_seq)

                # Cache management (Figure 4): the same helper calls in the
                # same order as access().
                if meta is not None:
                    refresh(page, seq, hint_key)
                    hit_flags[i] = 1
                elif len(cached) < effective_capacity:
                    admit(page, seq, hint_key)
                    admit_flags[i] = 1
                else:
                    pr = priority_get(hint_key, 0.0)
                    if pr == 0.0:
                        # Pr(H) == 0 can never beat the victim's priority m
                        # (priorities are nonnegative, Equation 2), so the
                        # outcome is a bypass without consulting the heap.
                        # Deferring _peek_victim's lazy cleanup is invisible:
                        # the victim it eventually returns is determined by
                        # the minimum (priority, head seq) over *valid*
                        # entries, which the skipped cleanup does not change.
                        bypass = True
                    else:
                        victim = peek_victim()
                        bypass = victim is None or pr <= victim[0]
                    if bypass:
                        # Inline OutQueue.put — the hot call on mostly-miss
                        # streams; must mirror its refresh/overflow semantics.
                        if oq_capacity:
                            if page in oq_entries:
                                del oq_entries[page]
                            elif len(oq_entries) >= oq_capacity:
                                oq_entries.popitem(last=False)
                            oq_entries[page] = OutQueueEntry(seq, hint_key)
                        bypass_flags[i] = 1
                    else:
                        evicted.append(evict_list(victim[2]))
                        evict_pos.append(i)
                        admit(page, seq, hint_key)
                        admit_flags[i] = 1

                # Window accounting (Section 3.2).
                if defer:
                    counts[hint_key] = counts.pop(hint_key, 0) + 1
                else:
                    window_closed = record_request(hint_key)
            if defer:
                window_closed = priorities.record_segment(
                    list(counts.items()), rerefs, stop - start
                )
            if window_closed:
                self._rebuild_heap()
            start = stop

        return _mixed_batch(hit_flags, admit_flags, bypass_flags, evict_pos, evicted)

    # ------------------------------------------------------------ inspection
    def contains(self, page: int) -> bool:
        return page in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    def cached_pages(self) -> Iterable[int]:
        return iter(self._cached)

    def current_priorities(self) -> dict[tuple, float]:
        """Current Pr(H) assignment (hint-set key -> priority)."""
        return dict(self._priorities.priorities())

    def reset(self) -> None:
        super().reset()
        self._priorities.reset()
        self._outqueue.clear()
        self._cached.clear()
        self._lists.clear()
        self._heap.clear()
        self._tiebreak = itertools.count()
