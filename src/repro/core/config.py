"""Configuration for the CLIC policy.

Gathers every tunable named in the paper:

* ``window_size`` (``W``, Section 3.2) — priorities are re-estimated every
  ``W`` requests.  The paper uses ``W = 10**6`` against traces of 3M-635M
  requests; the scaled-down standard traces in this repository use smaller
  windows with the same *relative* size.
* ``decay`` (``r``, Equation 3) — exponential smoothing weight for the new
  window's statistics.  The paper uses ``r = 1`` throughout.
* ``outqueue_factor`` (``Noutq`` per cache page, Section 6.1) — the outqueue
  holds ``outqueue_factor * capacity`` entries.  The paper uses 5.
* ``top_k`` (``k``, Section 5) — number of hint sets tracked by the
  Space-Saving algorithm; ``None`` tracks every observed hint set exactly.
* ``charge_metadata`` (Section 6.1) — whether to reduce CLIC's usable cache
  capacity to pay for its per-page metadata, as the paper does (roughly 1%
  for the default parameters), keeping comparisons with metadata-free
  policies fair.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CLICConfig"]


@dataclass(frozen=True)
class CLICConfig:
    """Tunable parameters of :class:`repro.core.clic.CLICPolicy`."""

    window_size: int = 50_000
    decay: float = 1.0
    outqueue_factor: float = 5.0
    top_k: int | None = None
    charge_metadata: bool = True
    #: Optional hint-set grouping (the paper's Section 8 future-work idea):
    #: when set, statistics and priorities are tracked per *projection* of the
    #: hint set onto these hint-type names instead of per full hint set.  See
    #: :mod:`repro.core.grouping`.
    hint_projection: tuple[str, ...] | None = None
    #: Bytes of metadata CLIC keeps per tracked page (sequence number + hint
    #: set reference, stored as two 4-byte integers in the paper's costing).
    metadata_bytes_per_page: int = 8
    #: Page size used to convert metadata bytes into page-slots of overhead.
    page_size_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay (r) must be in (0, 1], got {self.decay}")
        if self.outqueue_factor < 0:
            raise ValueError(f"outqueue_factor must be >= 0, got {self.outqueue_factor}")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError(f"top_k must be >= 1 or None, got {self.top_k}")
        if self.metadata_bytes_per_page < 0:
            raise ValueError("metadata_bytes_per_page must be >= 0")
        if self.page_size_bytes <= 0:
            raise ValueError("page_size_bytes must be positive")
        if self.hint_projection is not None:
            if not self.hint_projection:
                raise ValueError("hint_projection must be None or a non-empty tuple of names")
            object.__setattr__(self, "hint_projection", tuple(self.hint_projection))

    def outqueue_capacity(self, cache_capacity: int) -> int:
        """Number of outqueue entries for a cache of ``cache_capacity`` pages."""
        return int(round(self.outqueue_factor * cache_capacity))

    def metadata_overhead_fraction(self) -> float:
        """Fraction of the cache charged for CLIC's tracking metadata.

        CLIC tracks (sequence number, hint set) for every cached page plus
        ``outqueue_factor`` times as many uncached pages, i.e. metadata for
        ``(1 + outqueue_factor) * C`` pages.  With 8 bytes per tracked page
        and 4 KB pages this is ~1.2%, matching the paper's "roughly 1%".
        """
        if not self.charge_metadata:
            return 0.0
        tracked_per_cached_page = 1.0 + self.outqueue_factor
        return tracked_per_cached_page * self.metadata_bytes_per_page / self.page_size_bytes

    def effective_capacity(self, cache_capacity: int) -> int:
        """Usable page slots after charging for metadata (at least 1)."""
        usable = int(cache_capacity * (1.0 - self.metadata_overhead_fraction()))
        return max(1, usable)
