"""Hint-set grouping: tracking statistics per *group* of hint sets.

Section 6.3 of the paper shows that useless ("noise") hint types dilute the
informative hint sets and overwhelm a bounded hint table; Section 8 proposes
grouping related hint sets together — e.g. with a decision tree over hint
types — as future work.  This module implements a practical version of that
idea:

* :func:`project_hint_key` groups hint sets by *projecting* them onto a chosen
  subset of hint types (all hint sets that agree on those types share one
  statistics entry);
* :func:`select_informative_hint_types` chooses that subset greedily, in the
  spirit of decision-tree attribute selection: starting from the empty
  projection it repeatedly adds the hint type whose addition best separates
  hint sets with different caching priorities (weighted by how often they
  occur), until either the requested number of types is reached or no further
  type improves the separation.

:class:`repro.core.clic.CLICPolicy` applies the projection when configured
with ``CLICConfig(hint_projection=...)``, so a deployment facing many noisy
hint types can group them without touching the clients.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.hints import HintSet
from repro.core.statistics import HintSetStats, compute_priority

__all__ = [
    "project_hint_set",
    "project_hint_key",
    "grouping_score",
    "select_informative_hint_types",
]


def project_hint_set(hints: HintSet, keep_names: Sequence[str]) -> HintSet:
    """Project *hints* onto the hint types in *keep_names* that it actually has.

    Unlike :meth:`HintSet.project`, hint types missing from the hint set are
    silently skipped, so one projection can be applied to hint sets from
    clients with different schemas.
    """
    present = [name for name in keep_names if name in hints.names]
    return hints.project(present)


def project_hint_key(hints: HintSet, keep_names: Sequence[str] | None) -> tuple:
    """The statistics key for *hints* under a projection (``None`` = identity)."""
    if keep_names is None:
        return hints.key()
    return project_hint_set(hints, keep_names).key()


def _weighted_priority_variance(groups: Mapping[tuple, HintSetStats]) -> float:
    """Between-group variance of priorities, weighted by request counts.

    This is the "separation" a projection achieves: projections that lump
    high-priority and low-priority hint sets together score low, projections
    that keep them apart score high.
    """
    total_requests = sum(stats.requests for stats in groups.values())
    if total_requests == 0:
        return 0.0
    priorities = {key: compute_priority(stats) for key, stats in groups.items()}
    mean = sum(
        priorities[key] * stats.requests for key, stats in groups.items()
    ) / total_requests
    return sum(
        stats.requests * (priorities[key] - mean) ** 2 for key, stats in groups.items()
    ) / total_requests


def _group_by_projection(
    per_hint_set: Mapping[tuple, HintSetStats],
    hint_names_by_key: Mapping[tuple, tuple[str, ...]],
    keep_names: Sequence[str],
) -> dict[tuple, HintSetStats]:
    """Merge exact per-hint-set statistics into per-group statistics."""
    grouped: dict[tuple, HintSetStats] = {}
    for key, stats in per_hint_set.items():
        client_id, values = key
        names = hint_names_by_key[key]
        kept = tuple(value for name, value in zip(names, values) if name in keep_names)
        kept_names = tuple(name for name in names if name in keep_names)
        group_key = (client_id, kept_names, kept)
        bucket = grouped.setdefault(group_key, HintSetStats())
        bucket.requests += stats.requests
        bucket.read_rereferences += stats.read_rereferences
        bucket.distance_total += stats.distance_total
    return grouped


def grouping_score(
    per_hint_set: Mapping[tuple, HintSetStats],
    hint_names_by_key: Mapping[tuple, tuple[str, ...]],
    keep_names: Sequence[str],
) -> float:
    """How well projecting onto *keep_names* separates caching priorities."""
    grouped = _group_by_projection(per_hint_set, hint_names_by_key, keep_names)
    return _weighted_priority_variance(grouped)


def select_informative_hint_types(
    per_hint_set: Mapping[tuple, HintSetStats],
    hint_names_by_key: Mapping[tuple, tuple[str, ...]],
    max_types: int,
) -> tuple[str, ...]:
    """Greedily choose up to *max_types* hint types to group statistics by.

    Parameters
    ----------
    per_hint_set:
        Exact statistics per full hint-set key, e.g. from
        :func:`repro.analysis.hint_analysis.analyze_hint_sets` converted to
        :class:`HintSetStats`, or from a :class:`~repro.core.statistics.HintTable`.
    hint_names_by_key:
        The hint-type names corresponding to each key's value tuple.
    max_types:
        Upper bound on the number of hint types kept.
    """
    if max_types < 1:
        raise ValueError("max_types must be >= 1")
    candidates: set[str] = set()
    for names in hint_names_by_key.values():
        candidates.update(names)

    selected: list[str] = []
    best_score = grouping_score(per_hint_set, hint_names_by_key, selected)
    while len(selected) < max_types:
        best_candidate = None
        for candidate in sorted(candidates - set(selected)):
            score = grouping_score(per_hint_set, hint_names_by_key, selected + [candidate])
            if score > best_score + 1e-15:
                best_score = score
                best_candidate = candidate
        if best_candidate is None:
            break
        selected.append(best_candidate)
    return tuple(selected)
