"""Generic hint framework for client-informed caching (CLIC, Section 2).

A storage client attaches a *hint set* to every I/O request it sends to the
storage server.  Each client defines its own *hint types* (named, categorical
attributes) and, for each hint type, a *hint value domain*.  A hint set is one
value drawn from each of the client's hint types.

CLIC treats hint values as opaque categorical labels: it neither assumes nor
exploits any ordering or semantics.  Hint types belonging to different clients
are always distinct, even if two clients are instances of the same application
and use identical hint-type names.  This module encodes that namespacing by
making the client identifier part of every :class:`HintSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "HintType",
    "HintSchema",
    "HintSet",
    "EMPTY_HINT_SET",
    "make_hint_set",
]


@dataclass(frozen=True)
class HintType:
    """Description of one hint type exposed by a storage client.

    Parameters
    ----------
    name:
        Name of the hint type (e.g. ``"pool_id"`` or ``"request_type"``).
    domain:
        The set of values the hint may take.  CLIC only requires the domain to
        be categorical; the domain recorded here is used for validation,
        documentation (the paper's Figure 2 reports domain cardinalities) and
        by the synthetic workload generators.  ``None`` means the domain is
        open-ended (values are still categorical but not enumerated up front).
    description:
        Human-readable description, mirroring Figure 2 of the paper.
    """

    name: str
    domain: tuple | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("hint type name must be non-empty")
        if self.domain is not None:
            object.__setattr__(self, "domain", tuple(self.domain))

    @property
    def cardinality(self) -> int | None:
        """Number of values in the domain, or ``None`` for open domains."""
        return None if self.domain is None else len(self.domain)

    def validate(self, value: object) -> None:
        """Raise ``ValueError`` if *value* is outside a closed domain."""
        if self.domain is not None and value not in self.domain:
            raise ValueError(
                f"value {value!r} not in domain of hint type {self.name!r}"
            )


class HintSchema:
    """The ordered collection of hint types defined by one storage client.

    A schema fixes the order of hint types, so a hint set can be represented
    compactly as a tuple of values aligned with the schema.  The schema also
    owns the client identifier used to namespace hint sets (Section 2: hint
    types of different clients are always treated as distinct).
    """

    def __init__(self, client_id: str, hint_types: Sequence[HintType]):
        if not client_id:
            raise ValueError("client_id must be non-empty")
        names = [ht.name for ht in hint_types]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate hint type names in schema: {names}")
        self._client_id = client_id
        self._hint_types = tuple(hint_types)
        self._index = {ht.name: i for i, ht in enumerate(self._hint_types)}

    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def hint_types(self) -> tuple[HintType, ...]:
        return self._hint_types

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(ht.name for ht in self._hint_types)

    def __len__(self) -> int:
        return len(self._hint_types)

    def __iter__(self):
        return iter(self._hint_types)

    def __getitem__(self, name: str) -> HintType:
        return self._hint_types[self._index[name]]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HintSchema(client_id={self._client_id!r}, names={self.names})"

    def max_hint_sets(self) -> int | None:
        """Upper bound on the number of distinct hint sets (Section 5).

        The number of distinct hint sets from a client can be as large as the
        product of the cardinalities of its hint value domains.  Returns
        ``None`` if any domain is open-ended.
        """
        total = 1
        for ht in self._hint_types:
            if ht.cardinality is None:
                return None
            total *= ht.cardinality
        return total

    def make_hint_set(
        self, values: Mapping[str, object] | Sequence[object], validate: bool = False
    ) -> "HintSet":
        """Build a :class:`HintSet` for this schema.

        ``values`` may be a mapping from hint-type name to value, or a
        sequence of values in schema order.  With ``validate=True`` each value
        is checked against its (closed) domain.
        """
        if isinstance(values, Mapping):
            missing = [n for n in self.names if n not in values]
            if missing:
                raise ValueError(f"missing hint values for {missing}")
            extra = [n for n in values if n not in self._index]
            if extra:
                raise ValueError(f"unknown hint types {extra}")
            ordered = tuple(values[n] for n in self.names)
        else:
            ordered = tuple(values)
            if len(ordered) != len(self._hint_types):
                raise ValueError(
                    f"expected {len(self._hint_types)} hint values, got {len(ordered)}"
                )
        if validate:
            for ht, value in zip(self._hint_types, ordered):
                ht.validate(value)
        return HintSet(client_id=self._client_id, names=self.names, values=ordered)

    def describe(self) -> list[dict]:
        """Figure 2-style description: name, domain cardinality, description."""
        return [
            {
                "hint_type": ht.name,
                "cardinality": ht.cardinality,
                "description": ht.description,
            }
            for ht in self._hint_types
        ]


@dataclass(frozen=True)
class HintSet:
    """An immutable, hashable hint set attached to one I/O request.

    The ``client_id`` participates in equality and hashing so that hint sets
    from different clients never collide, as required by Section 2 of the
    paper.
    """

    client_id: str
    names: tuple[str, ...]
    values: tuple

    def __post_init__(self) -> None:
        if len(self.names) != len(self.values):
            raise ValueError("names and values must have equal length")
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "values", tuple(self.values))

    def __len__(self) -> int:
        return len(self.values)

    def get(self, name: str, default: object = None) -> object:
        """Return the value of hint type *name*, or *default* if absent."""
        try:
            return self.values[self.names.index(name)]
        except ValueError:
            return default

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def as_dict(self) -> dict:
        return dict(zip(self.names, self.values))

    def key(self) -> tuple:
        """Compact hashable key: ``(client_id, values)``.

        The hint-type names are implied by the client's schema, so the key
        omits them.  This is the representation used in the hint table and in
        the Space-Saving summary, where memory per tracked hint set matters.

        The key is memoised on the instance: traces reuse hint-set objects
        heavily and every policy asks for the key on every request, so a
        multi-policy replay pays the tuple construction once per distinct
        hint set rather than once per request per policy.
        """
        key = self.__dict__.get("_key")
        if key is None:
            key = (self.client_id, self.values)
            object.__setattr__(self, "_key", key)
        return key

    def identity(self) -> tuple:
        """Full identity: ``(client_id, names, values)``.

        Unlike :meth:`key`, the hint-type names are included.  Trace
        serialization keys its hint-set dictionaries on this, so two hint
        sets that differ only in their names never collide on disk.
        """
        return (self.client_id, self.names, self.values)

    def extended(self, extra_names: Iterable[str], extra_values: Iterable[object]) -> "HintSet":
        """Return a new hint set with additional hint types appended.

        Used by the noise-injection experiment (Section 6.3), which adds ``T``
        synthetic hint types to every request of an existing trace.
        """
        extra_names = tuple(extra_names)
        extra_values = tuple(extra_values)
        if len(extra_names) != len(extra_values):
            raise ValueError("extra names and values must have equal length")
        clashes = set(extra_names) & set(self.names)
        if clashes:
            raise ValueError(f"hint types already present: {sorted(clashes)}")
        return HintSet(
            client_id=self.client_id,
            names=self.names + extra_names,
            values=self.values + extra_values,
        )

    def project(self, keep_names: Sequence[str]) -> "HintSet":
        """Return a hint set restricted to the given hint types (in order).

        Used by the hint-grouping extension, which coarsens hint sets by
        dropping hint types that carry little information.
        """
        keep = tuple(keep_names)
        missing = [n for n in keep if n not in self.names]
        if missing:
            raise ValueError(f"hint types not present: {missing}")
        mapping = self.as_dict()
        return HintSet(
            client_id=self.client_id,
            names=keep,
            values=tuple(mapping[n] for n in keep),
        )

    def __str__(self) -> str:
        pairs = ", ".join(f"{n}={v!r}" for n, v in zip(self.names, self.values))
        return f"<{self.client_id}: {pairs}>"


#: A hint set carrying no information, used for hint-oblivious request streams.
EMPTY_HINT_SET = HintSet(client_id="", names=(), values=())


def make_hint_set(client_id: str, **values: object) -> HintSet:
    """Convenience constructor: ``make_hint_set("db2", pool_id=1, ...)``.

    Hint types are ordered by keyword order.  Prefer
    :meth:`HintSchema.make_hint_set` when a schema is available, since it
    fixes the ordering and can validate domains.
    """
    return HintSet(
        client_id=client_id,
        names=tuple(values.keys()),
        values=tuple(values.values()),
    )
