"""The outqueue: bounded history of recent requests to *uncached* pages.

Section 3.1 of the paper: in order to recognise read re-references, CLIC
remembers ``seq(p)`` (sequence number of the most recent request for p) and
``H(p)`` (hint set attached to that request) for every cached page *and* for
a fixed number ``Noutq`` of additional, uncached pages.  The latter live in
the outqueue.  When the outqueue is full, the least-recently inserted entry
is evicted, which deliberately biases CLIC towards detecting *short*
re-reference distances — exactly the re-references that lead to high caching
priority.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, NamedTuple

__all__ = ["OutQueueEntry", "OutQueue"]


class OutQueueEntry(NamedTuple):
    """Most-recent-request metadata remembered for one uncached page.

    A named tuple rather than a dataclass: entries are constructed once per
    bypassed request on the batch fast path, and tuple construction is
    several times cheaper than a frozen dataclass ``__init__``.
    """

    seq: int
    hint_key: tuple


class OutQueue:
    """A bounded, insertion-ordered map from page id to request metadata."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"outqueue capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[int, OutQueueEntry] = OrderedDict()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def get(self, page: int) -> OutQueueEntry | None:
        """Return the remembered entry for *page*, or ``None``."""
        return self._entries.get(page)

    @property
    def entries(self) -> OrderedDict[int, OutQueueEntry]:
        """The live page -> entry map, least-recently inserted first.

        Exposed for batch kernels that inline :meth:`get`/:meth:`put` in a
        hot loop.  Mutations must preserve :meth:`put` semantics (refresh
        moves to the tail; overflow pops the head) — the scalar and batch
        paths share this state and must stay bit-identical.
        """
        return self._entries

    def put(self, page: int, seq: int, hint_key: tuple) -> int | None:
        """Insert or refresh the entry for *page*.

        Refreshing an existing page moves it to the most-recently-inserted
        position.  Returns the page id evicted to make room, or ``None``.
        """
        if self._capacity == 0:
            return None
        evicted: int | None = None
        if page in self._entries:
            del self._entries[page]
        elif len(self._entries) >= self._capacity:
            evicted, _ = self._entries.popitem(last=False)
        self._entries[page] = OutQueueEntry(seq=seq, hint_key=hint_key)
        return evicted

    def remove(self, page: int) -> OutQueueEntry | None:
        """Remove and return the entry for *page* (``None`` if absent)."""
        return self._entries.pop(page, None)

    def pages(self) -> Iterator[int]:
        """Iterate over remembered pages, least-recently inserted first."""
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OutQueue(capacity={self._capacity}, size={len(self._entries)})"
