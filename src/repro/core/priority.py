"""Windowed hint-set priority estimation (Sections 3 and 3.2).

CLIC divides the request stream into non-overlapping windows of ``W``
requests.  During window ``i`` it collects statistics with a
:class:`~repro.core.statistics.HintStatsTracker`; at the window boundary it
computes the per-window priorities ``p̂r(H)_i = fhit(H) / D(H)`` and blends
them into the running priorities with exponential smoothing (Equation 3)::

    Pr(H)_i = r * p̂r(H)_i + (1 - r) * Pr(H)_{i-1}

The blended priorities drive the replacement policy during window ``i + 1``.
Hint sets that have never been observed have priority zero.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.statistics import (
    HintSetStats,
    HintStatsTracker,
    HintTable,
    compute_priority,
)
from repro.core.spacesaving import SpaceSavingTracker

__all__ = ["PriorityManager"]


class PriorityManager:
    """Maintains smoothed caching priorities ``Pr(H)`` across request windows."""

    def __init__(
        self,
        window_size: int,
        decay: float = 1.0,
        top_k: int | None = None,
    ):
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self._window_size = window_size
        self._decay = decay
        self._tracker: HintStatsTracker = (
            HintTable() if top_k is None else SpaceSavingTracker(top_k)
        )
        self._priorities: dict[tuple, float] = {}
        self._requests_in_window = 0
        self._windows_completed = 0

    # ------------------------------------------------------------ properties
    @property
    def window_size(self) -> int:
        return self._window_size

    @property
    def decay(self) -> float:
        return self._decay

    @property
    def tracker(self) -> HintStatsTracker:
        return self._tracker

    @property
    def windows_completed(self) -> int:
        return self._windows_completed

    @property
    def requests_in_window(self) -> int:
        return self._requests_in_window

    # --------------------------------------------------------------- updates
    def priority(self, hint_key: tuple) -> float:
        """Current caching priority ``Pr(H)``; zero for unknown hint sets."""
        return self._priorities.get(hint_key, 0.0)

    @property
    def mapping(self) -> Mapping[tuple, float]:
        """The live priority map (hint-set key -> Pr(H)).

        Exposed for batch kernels that look priorities up in a hot loop:
        the mapping is frozen between window boundaries, but the *object*
        is replaced when a window closes, so bindings must not outlive a
        segment.  Treat as read-only; missing keys mean priority 0.0.
        """
        return self._priorities

    def priorities(self) -> Mapping[tuple, float]:
        """A copy of the current priority assignment."""
        return dict(self._priorities)

    def record_request(self, hint_key: tuple) -> bool:
        """Count one request towards the current window.

        Returns ``True`` when the request closes the window (the caller should
        then rebuild any priority-ordered structures, since priorities changed).
        """
        self._tracker.record_request(hint_key)
        self._requests_in_window += 1
        if self._requests_in_window >= self._window_size:
            self._finish_window()
            return True
        return False

    def record_read_rereference(self, hint_key: tuple, distance: int) -> None:
        """Credit a read re-reference to the hint set of the original request."""
        self._tracker.record_read_rereference(hint_key, distance)

    def window_room(self) -> int:
        """Requests the current window still accepts before it closes.

        Always >= 1: a window is finished the moment it fills, so the batch
        path can segment a chunk by taking at most this many requests per
        :meth:`record_segment` call.
        """
        return self._window_size - self._requests_in_window

    def record_segment(
        self,
        counts: Sequence[tuple[tuple, int]],
        rereferences: Sequence[tuple[tuple, int]],
        requests: int,
    ) -> bool:
        """Apply one deferred batch segment; returns whether it closed the window.

        *counts* holds ``(hint_key, n)`` pairs in **last-occurrence order**
        (the order the keys were last requested within the segment) — that is
        what keeps a Space-Saving tracker's tie-break order identical to the
        sequential replay.  *rereferences* holds ``(hint_key, distance)``
        credits in stream order, pre-filtered by the caller with
        segment-start :meth:`HintStatsTracker.accepts_rereference` semantics;
        applying them after the counts is exact because tracked-set
        membership only grows within a no-recycle segment.  The segment must
        not span a window boundary (``requests <= window_room()``), so the
        boundary falls on exactly the same request as in scalar replay.
        """
        if requests > self.window_room():
            raise ValueError(
                f"segment of {requests} requests overruns the window "
                f"(room {self.window_room()})"
            )
        tracker = self._tracker
        for hint_key, count in counts:
            tracker.record_request_count(hint_key, count)
        for hint_key, distance in rereferences:
            tracker.record_read_rereference(hint_key, distance)
        self._requests_in_window += requests
        if self._requests_in_window >= self._window_size:
            self._finish_window()
            return True
        return False

    def _finish_window(self) -> None:
        window_priorities = self._tracker.priorities()
        r = self._decay
        updated: dict[tuple, float] = {}
        # Hint sets observed this window: blend new estimate with the old value.
        for key, fresh in window_priorities.items():
            previous = self._priorities.get(key, 0.0)
            updated[key] = r * fresh + (1.0 - r) * previous
        # Hint sets not observed this window decay towards zero (their fresh
        # estimate is zero); with r == 1 they are forgotten entirely.
        if r < 1.0:
            for key, previous in self._priorities.items():
                if key not in updated:
                    updated[key] = (1.0 - r) * previous
        self._priorities = updated
        self._tracker.clear()
        self._requests_in_window = 0
        self._windows_completed += 1

    def force_window_boundary(self) -> None:
        """Close the current window immediately (useful for tests/analysis)."""
        self._finish_window()

    def reset(self) -> None:
        """Forget all statistics and priorities."""
        self._tracker.clear()
        self._priorities.clear()
        self._requests_in_window = 0
        self._windows_completed = 0
