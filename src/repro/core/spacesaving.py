"""Space-Saving frequent-item tracking of hint sets (Section 5).

The number of distinct hint sets can grow as large as the product of the
hint domain cardinalities, so CLIC bounds the space used for hint statistics
by tracking only the (approximately) ``k`` most frequent hint sets with the
Space-Saving algorithm of Metwally, Agrawal and El Abbadi (ICDT '05).

Space-Saving keeps ``k`` counters.  When an item arrives:

* if it is tracked, its count is incremented;
* else, if fewer than ``k`` items are tracked, it is added with count 1 and
  error 0;
* otherwise the tracked item with the minimum count ``m`` is *replaced* by
  the new item, which gets count ``m + 1`` and error ``m``.

``count - error`` is a guaranteed lower bound on an item's true frequency,
and the paper uses it as ``N(H)``.  The CLIC-specific extension
(:class:`SpaceSavingTracker`) adds, for each tracked hint set, a read
re-reference counter ``Nr(H)`` and a distance accumulator (for ``D(H)``)
that only accumulate while the hint set is being tracked; both are reset
when the hint set's slot is recycled.

Hint sets that are not currently tracked report ``Nr(H) = 0`` and therefore
``Pr(H) = 0``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.core.statistics import HintSetStats, HintStatsTracker

__all__ = ["TrackedItem", "SpaceSaving", "SpaceSavingTracker"]


@dataclass
class TrackedItem:
    """One Space-Saving counter."""

    item: Hashable
    count: int
    error: int
    #: Tie-break of the item's most recent heap entry.  Kept on the item so
    #: that compacting the lazy heap preserves the exact pop order among
    #: equal-count items.
    tiebreak: int = 0

    @property
    def guaranteed_count(self) -> int:
        """Lower bound on the item's true frequency (``count - error``)."""
        return self.count - self.error

    @property
    def guaranteed(self) -> bool:
        """Whether the item is guaranteed to have occurred (error-free at least once)."""
        return self.guaranteed_count > 0


class SpaceSaving:
    """The plain Space-Saving algorithm over a stream of hashable items.

    The implementation keeps a dict of tracked items plus a lazily-validated
    min-heap of ``(count, tiebreak, item)`` entries, giving amortised O(log k)
    per update; item replacement reuses the minimum-count slot exactly as the
    published algorithm prescribes.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        self._items: dict[Hashable, TrackedItem] = {}
        self._heap: list[tuple[int, int, Hashable]] = []
        self._tiebreak = itertools.count()
        self._processed = 0
        # Every increment pushes a fresh heap entry and leaves the old one
        # stale, so without compaction the heap grows with the stream length.
        # Rebuilding from the k live entries once the heap passes this bound
        # keeps memory O(k) at amortised O(1) extra cost per update.
        self._compact_limit = max(4 * k, 32)

    # --------------------------------------------------------------- update
    @property
    def k(self) -> int:
        return self._k

    @property
    def processed(self) -> int:
        """Total number of stream items offered so far."""
        return self._processed

    def offer(self, item: Hashable) -> tuple[Hashable | None, bool]:
        """Process one stream item.

        Returns ``(replaced_item, is_tracked_now)`` where ``replaced_item`` is
        the item whose slot was recycled (or ``None``), letting callers reset
        any side statistics they keep for evicted items.
        """
        self._processed += 1
        entry = self._items.get(item)
        if entry is not None:
            entry.count += 1
            self._push(entry)
            return None, True
        if len(self._items) < self._k:
            entry = TrackedItem(item=item, count=1, error=0)
            self._items[item] = entry
            self._push(entry)
            return None, True
        victim = self._pop_min()
        min_count = self._items[victim].count
        del self._items[victim]
        entry = TrackedItem(item=item, count=min_count + 1, error=min_count)
        self._items[item] = entry
        self._push(entry)
        return victim, True

    def offer_repeat(self, item: Hashable, repeat: int) -> None:
        """Process *repeat* consecutive occurrences of one item at once.

        Counter-recycling is where tie-break order is decided, so this fast
        path refuses to replace: the caller must check :meth:`would_recycle`
        over the batch's distinct items first and fall back to ordered
        :meth:`offer` calls when recycling is possible.  For the no-recycle
        case a single push with a fresh tiebreak leaves the heap's *pop
        order* exactly as ``repeat`` sequential offers would have: an item's
        tiebreak always reflects its most recent offer, so batching items in
        last-occurrence order preserves the relative order among equal
        counts (pinned by the batch-vs-scalar regression suite in
        ``tests/core/test_spacesaving.py``).
        """
        if repeat < 1:
            raise ValueError(f"repeat must be >= 1, got {repeat}")
        entry = self._items.get(item)
        if entry is None:
            if len(self._items) >= self._k:
                raise ValueError(
                    "offer_repeat would recycle a counter; replay the batch "
                    "through ordered offer() calls instead"
                )
            entry = TrackedItem(item=item, count=repeat, error=0)
            self._items[item] = entry
        else:
            entry.count += repeat
        self._processed += repeat
        self._push(entry)

    def would_recycle(self, items: Iterable[Hashable]) -> bool:
        """Whether offering every item of *items* could replace a counter."""
        tracked = self._items
        new = len({item for item in items if item not in tracked})
        return len(tracked) + new > self._k

    def _push(self, entry: TrackedItem) -> None:
        entry.tiebreak = next(self._tiebreak)
        heapq.heappush(self._heap, (entry.count, entry.tiebreak, entry.item))
        if len(self._heap) > self._compact_limit:
            self._compact()

    def _compact(self) -> None:
        """Drop stale heap entries, rebuilding from the live counters.

        Each item's live entry is reconstructed from the (count, tiebreak)
        stored on its :class:`TrackedItem`, so the pop order — including ties
        — is exactly what lazy deletion would have produced.
        """
        self._heap = [
            (entry.count, entry.tiebreak, item) for item, entry in self._items.items()
        ]
        heapq.heapify(self._heap)

    @property
    def heap_size(self) -> int:
        """Current size of the lazy heap (bounded by a small multiple of k)."""
        return len(self._heap)

    def _pop_min(self) -> Hashable:
        """Pop and return the currently tracked item with the minimum count."""
        while self._heap:
            count, _tiebreak, item = heapq.heappop(self._heap)
            entry = self._items.get(item)
            if entry is not None and entry.count == count:
                return item
        raise RuntimeError("Space-Saving heap exhausted")  # pragma: no cover

    # ------------------------------------------------------------ reporting
    def __contains__(self, item: Hashable) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def get(self, item: Hashable) -> TrackedItem | None:
        return self._items.get(item)

    def tracked(self) -> Mapping[Hashable, TrackedItem]:
        """All currently tracked items and their counters."""
        return dict(self._items)

    def top(self, n: int | None = None) -> list[TrackedItem]:
        """Tracked items sorted by estimated frequency (descending)."""
        entries = sorted(self._items.values(), key=lambda e: e.count, reverse=True)
        return entries if n is None else entries[:n]

    def clear(self) -> None:
        self._items.clear()
        self._heap.clear()
        self._processed = 0


class SpaceSavingTracker(HintStatsTracker):
    """Hint-set statistics bounded to ``k`` hint sets (paper Section 5).

    * ``N(H)``  — the Space-Saving frequency estimate minus its error bound;
    * ``Nr(H)`` — read re-references observed *while H is tracked*;
    * ``D(H)``  — mean distance of exactly those re-references.

    Untracked hint sets contribute nothing and have priority zero.
    """

    def __init__(self, k: int):
        self._summary = SpaceSaving(k)
        # Side statistics only for currently tracked hint sets.
        self._side: dict[tuple, HintSetStats] = {}

    @property
    def k(self) -> int:
        return self._summary.k

    def record_request(self, hint_key: tuple) -> None:
        replaced, _ = self._summary.offer(hint_key)
        if replaced is not None:
            # The replaced hint set's slot is recycled: drop its side stats.
            self._side.pop(replaced, None)
        if hint_key not in self._side:
            self._side[hint_key] = HintSetStats()

    def record_read_rereference(self, hint_key: tuple, distance: int) -> None:
        if distance <= 0:
            raise ValueError(f"re-reference distance must be positive, got {distance}")
        # Only counted while the hint set is tracked (paper Section 5).
        if hint_key not in self._summary:
            return
        stats = self._side.setdefault(hint_key, HintSetStats())
        stats.read_rereferences += 1
        stats.distance_total += distance

    # ------------------------------------------------------------- batch path
    def accepts_rereference(self, hint_key: tuple) -> bool:
        """A re-reference credit counts only while the hint set is tracked."""
        return hint_key in self._summary

    def can_defer(self, hint_keys: Iterable[tuple]) -> bool:
        """Deferred batching is exact only when no counter is recycled.

        Replacement decides tie-breaks among equal-count items, so a segment
        whose distinct hint keys would overflow the ``k`` counters must be
        replayed through ordered :meth:`record_request` calls instead.
        """
        return not self._summary.would_recycle(hint_keys)

    def record_request_count(self, hint_key: tuple, count: int) -> None:
        """Count *count* consecutive requests of one hint set (no recycling).

        Behaviourally identical to *count* sequential :meth:`record_request`
        calls when :meth:`can_defer` approved the batch: the summary's
        counter gains ``count`` with a fresh tiebreak, and the side stats
        slot exists afterwards, exactly as the scalar path leaves it.
        """
        self._summary.offer_repeat(hint_key, count)
        if hint_key not in self._side:
            self._side[hint_key] = HintSetStats()

    def snapshot(self) -> Mapping[tuple, HintSetStats]:
        result: dict[tuple, HintSetStats] = {}
        for key, tracked in self._summary.tracked().items():
            side = self._side.get(key, HintSetStats())
            result[key] = HintSetStats(
                requests=max(tracked.guaranteed_count, 0),
                read_rereferences=side.read_rereferences,
                distance_total=side.distance_total,
            )
        return result

    def clear(self) -> None:
        self._summary.clear()
        self._side.clear()

    def __len__(self) -> int:
        return len(self._summary)
