"""Per-hint-set statistics: the CLIC hint table (Section 3.1).

For every hint set ``H`` observed by the server, CLIC tracks:

* ``N(H)``   — total number of requests carrying ``H``;
* ``Nr(H)``  — number of those requests whose *next* request for the same
  page was a read ("read re-references");
* ``D(H)``   — average re-reference distance (in requests) of those read
  re-references.

From these, the expected benefit is ``fhit(H) = Nr(H) / N(H)`` (Equation 1)
and the caching priority is ``Pr(H) = fhit(H) / D(H)`` (Equation 2).

Two interchangeable trackers implement this interface:

* :class:`HintTable` keeps exact statistics for every observed hint set;
* :class:`~repro.core.spacesaving.SpaceSavingTracker` (Section 5) bounds the
  number of tracked hint sets to ``k`` using the Space-Saving algorithm.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["HintSetStats", "HintStatsTracker", "HintTable", "compute_priority"]


@dataclass
class HintSetStats:
    """Mutable statistics accumulator for a single hint set."""

    requests: int = 0            # N(H)
    read_rereferences: int = 0   # Nr(H)
    distance_total: float = 0.0  # sum of re-reference distances

    @property
    def n(self) -> int:
        return self.requests

    @property
    def nr(self) -> int:
        return self.read_rereferences

    @property
    def read_hit_rate(self) -> float:
        """``fhit(H) = Nr(H) / N(H)`` (Equation 1)."""
        if self.requests == 0:
            return 0.0
        return self.read_rereferences / self.requests

    @property
    def mean_distance(self) -> float:
        """``D(H)``: mean read re-reference distance; 0.0 when Nr(H) == 0."""
        if self.read_rereferences == 0:
            return 0.0
        return self.distance_total / self.read_rereferences

    @property
    def priority(self) -> float:
        """``Pr(H) = fhit(H) / D(H)`` (Equation 2); 0.0 when undefined."""
        return compute_priority(self)


def compute_priority(stats: HintSetStats) -> float:
    """Benefit/cost priority of a hint set (Equation 2).

    A hint set with no observed read re-reference has zero expected benefit
    and therefore zero priority.
    """
    if stats.read_rereferences == 0 or stats.requests == 0:
        return 0.0
    fhit = stats.read_rereferences / stats.requests
    distance = stats.distance_total / stats.read_rereferences
    if distance <= 0.0:
        # Re-reference distances are >= 1 by construction; guard anyway.
        return 0.0
    return fhit / distance


class HintStatsTracker(abc.ABC):
    """Interface shared by the exact hint table and the top-k tracker."""

    @abc.abstractmethod
    def record_request(self, hint_key: tuple) -> None:
        """Count one arriving request with hint set *hint_key* (N(H) += 1)."""

    @abc.abstractmethod
    def record_read_rereference(self, hint_key: tuple, distance: int) -> None:
        """Count a read re-reference of a request that carried *hint_key*.

        ``distance`` is the difference between the sequence numbers of the
        re-referencing read and the original request.
        """

    @abc.abstractmethod
    def snapshot(self) -> Mapping[tuple, HintSetStats]:
        """Return the statistics of every currently tracked hint set."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Forget all statistics (called at window boundaries, Section 3.2)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of hint sets currently tracked."""

    def priorities(self) -> dict[tuple, float]:
        """Convenience: hint-set key -> Pr(H) for every tracked hint set."""
        return {key: compute_priority(stats) for key, stats in self.snapshot().items()}

    # ------------------------------------------------------------- batch path
    # The columnar CLIC kernel defers a whole window segment's tracker
    # updates and applies them at the segment boundary (see
    # :meth:`repro.core.priority.PriorityManager.record_segment`).  The
    # defaults below are the conservative contract any tracker satisfies;
    # HintTable and SpaceSavingTracker override them with exact fast paths.

    def accepts_rereference(self, hint_key: tuple) -> bool:
        """Whether :meth:`record_read_rereference` would credit *hint_key*
        right now.  The batch path uses this to pre-filter deferred credits
        with segment-start semantics."""
        return True

    def can_defer(self, hint_keys: Iterable[tuple]) -> bool:
        """Whether a segment touching exactly *hint_keys* may be applied as
        per-key counts instead of ordered per-request calls.  Defaults to
        ``False`` (always replay ordered) so unknown trackers stay exact."""
        return False

    def record_request_count(self, hint_key: tuple, count: int) -> None:
        """Count *count* consecutive requests of one hint set.

        Only called when :meth:`can_defer` approved the segment; the default
        simply loops :meth:`record_request`.
        """
        for _ in range(count):
            self.record_request(hint_key)


class HintTable(HintStatsTracker):
    """Exact per-hint-set statistics, one entry per observed hint set."""

    def __init__(self) -> None:
        self._stats: dict[tuple, HintSetStats] = {}

    def record_request(self, hint_key: tuple) -> None:
        stats = self._stats.get(hint_key)
        if stats is None:
            stats = HintSetStats()
            self._stats[hint_key] = stats
        stats.requests += 1

    def record_read_rereference(self, hint_key: tuple, distance: int) -> None:
        if distance <= 0:
            raise ValueError(f"re-reference distance must be positive, got {distance}")
        stats = self._stats.get(hint_key)
        if stats is None:
            # The original request predates the current statistics window (the
            # table was cleared since).  Count the re-reference anyway so that
            # hint sets whose pages linger in the cache across windows still
            # receive credit; the paper's description leaves this corner to
            # the implementation.
            stats = HintSetStats()
            self._stats[hint_key] = stats
        stats.read_rereferences += 1
        stats.distance_total += distance

    # The exact table has no eviction, so every batch shortcut is exact:
    # request counts are plain integer adds and re-reference credits are
    # always accepted (matching record_read_rereference above).
    def can_defer(self, hint_keys: Iterable[tuple]) -> bool:
        return True

    def record_request_count(self, hint_key: tuple, count: int) -> None:
        stats = self._stats.get(hint_key)
        if stats is None:
            stats = HintSetStats()
            self._stats[hint_key] = stats
        stats.requests += count

    def snapshot(self) -> Mapping[tuple, HintSetStats]:
        return dict(self._stats)

    def get(self, hint_key: tuple) -> HintSetStats | None:
        return self._stats.get(hint_key)

    def clear(self) -> None:
        self._stats.clear()

    def __len__(self) -> int:
        return len(self._stats)

    def keys(self) -> Iterable[tuple]:
        return self._stats.keys()
