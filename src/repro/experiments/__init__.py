"""One entry point per table/figure of the paper's evaluation (plus ablations)."""

from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, generate_trace
from repro.experiments.hint_priorities import run_hint_priority_scatter
from repro.experiments.latency import LATENCY_POLICIES, run_latency_experiment
from repro.experiments.multiclient import MultiClientResult, run_multiclient_experiment
from repro.experiments.noise import run_noise_experiment
from repro.experiments.policies import (
    FIGURE6_TRACES,
    FIGURE7_TRACES,
    FIGURE8_TRACES,
    run_figure6,
    run_figure7,
    run_figure8,
    run_policy_comparison,
)
from repro.experiments.registry import EXPERIMENTS, Experiment, get_experiment, list_experiments
from repro.experiments.schemas_table import run_hint_schema_table
from repro.experiments.topk import run_topk_experiment
from repro.experiments.traces_table import run_trace_table
from repro.experiments.ablations import (
    run_decay_ablation,
    run_metadata_charge_ablation,
    run_outqueue_ablation,
    run_window_ablation,
)

__all__ = [
    "DEFAULT_SETTINGS",
    "ExperimentSettings",
    "generate_trace",
    "run_hint_priority_scatter",
    "LATENCY_POLICIES",
    "run_latency_experiment",
    "MultiClientResult",
    "run_multiclient_experiment",
    "run_noise_experiment",
    "FIGURE6_TRACES",
    "FIGURE7_TRACES",
    "FIGURE8_TRACES",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_policy_comparison",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "list_experiments",
    "run_hint_schema_table",
    "run_topk_experiment",
    "run_trace_table",
    "run_window_ablation",
    "run_decay_ablation",
    "run_outqueue_ablation",
    "run_metadata_charge_ablation",
]
