"""Ablations over CLIC's design parameters (not figures in the paper).

The paper fixes ``W = 10^6``, ``r = 1`` and ``Noutq = 5`` entries per cached
page; these ablations sweep each knob to show how sensitive the scaled
reproduction is to them, and quantify the cost of charging CLIC for its
metadata (Section 6.1's ~1% cache-size reduction).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, generate_trace
from repro.simulation.metrics import SweepResult
from repro.simulation.simulator import CacheSimulator
from repro.workloads.standard import clic_window_for

__all__ = [
    "run_window_ablation",
    "run_decay_ablation",
    "run_outqueue_ablation",
    "run_metadata_charge_ablation",
]


def _run_clic(requests, cache_size: int, config: CLICConfig):
    return CacheSimulator(CLICPolicy(capacity=cache_size, config=config)).run(requests)


def run_window_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    window_sizes: Sequence[int] = (1_000, 2_000, 5_000, 10_000, 20_000),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Sensitivity of the hit ratio to the statistics window W (Section 3.2)."""
    trace = generate_trace(trace_name, settings)
    requests = trace.requests()
    sweep = SweepResult(parameter="window_size")
    for window in window_sizes:
        config = CLICConfig(window_size=window, decay=settings.decay, outqueue_factor=settings.outqueue_factor)
        sweep.add(trace_name, float(window), _run_clic(requests, cache_size, config))
    return sweep


def run_decay_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    decays: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Sensitivity to the exponential-smoothing weight r (Equation 3)."""
    trace = generate_trace(trace_name, settings)
    requests = trace.requests()
    window = clic_window_for(settings.target_requests)
    sweep = SweepResult(parameter="decay")
    for decay in decays:
        config = CLICConfig(window_size=window, decay=decay, outqueue_factor=settings.outqueue_factor)
        sweep.add(trace_name, float(decay), _run_clic(requests, cache_size, config))
    return sweep


def run_outqueue_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    outqueue_factors: Sequence[float] = (0.0, 1.0, 2.0, 5.0, 10.0),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Sensitivity to the outqueue size Noutq (Section 3.1).

    With no outqueue CLIC only detects re-references of cached pages, so it
    systematically under-estimates ``Nr(H)`` for hint sets it is not already
    caching — this ablation shows what that costs.
    """
    trace = generate_trace(trace_name, settings)
    requests = trace.requests()
    window = clic_window_for(settings.target_requests)
    sweep = SweepResult(parameter="outqueue_factor")
    for factor in outqueue_factors:
        config = CLICConfig(window_size=window, decay=settings.decay, outqueue_factor=factor)
        sweep.add(trace_name, float(factor), _run_clic(requests, cache_size, config))
    return sweep


def run_metadata_charge_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Cost of paying for CLIC's metadata out of the cache (Section 6.1)."""
    trace = generate_trace(trace_name, settings)
    requests = trace.requests()
    window = clic_window_for(settings.target_requests)
    sweep = SweepResult(parameter="charge_metadata")
    for charged in (False, True):
        config = CLICConfig(
            window_size=window,
            decay=settings.decay,
            outqueue_factor=settings.outqueue_factor,
            charge_metadata=charged,
        )
        sweep.add(trace_name, float(charged), _run_clic(requests, cache_size, config))
    return sweep
