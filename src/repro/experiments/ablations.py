"""Ablations over CLIC's design parameters (not figures in the paper).

The paper fixes ``W = 10^6``, ``r = 1`` and ``Noutq = 5`` entries per cached
page; these ablations sweep each knob to show how sensitive the scaled
reproduction is to them, and quantify the cost of charging CLIC for its
metadata (Section 6.1's ~1% cache-size reduction).

Each ablation is a generic single-policy parameter sweep through the shared
engine: the policy factory is a picklable partial application of
:func:`_make_clic`, so ``settings.jobs > 1`` distributes the sweep cells over
worker processes.
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Sequence

from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, trace_source
from repro.simulation.metrics import SweepResult
from repro.simulation.sweep import sweep_policy_parameter
from repro.workloads.standard import clic_window_for

__all__ = [
    "run_window_ablation",
    "run_decay_ablation",
    "run_outqueue_ablation",
    "run_metadata_charge_ablation",
]


def _make_clic(base_config: CLICConfig, config_field: str, value, capacity: int) -> CLICPolicy:
    """Build CLIC with *base_config*, overriding one configuration field."""
    config = dataclasses.replace(base_config, **{config_field: value})
    return CLICPolicy(capacity=capacity, config=config)


def _sweep_clic_config_field(
    requests,
    cache_size: int,
    base_config: CLICConfig,
    config_field: str,
    values: Sequence[object],
    label: str,
    jobs: int,
) -> SweepResult:
    return sweep_policy_parameter(
        requests,
        capacity=cache_size,
        parameter=config_field,
        values=values,
        make_policy=partial(_make_clic, base_config, config_field),
        label=label,
        jobs=jobs,
    )


def run_window_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    window_sizes: Sequence[int] = (1_000, 2_000, 5_000, 10_000, 20_000),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Sensitivity of the hit ratio to the statistics window W (Section 3.2)."""
    source = trace_source(trace_name, settings)
    # The base window_size is a placeholder: every cell overrides it.
    base = CLICConfig(
        window_size=1,
        decay=settings.decay,
        outqueue_factor=settings.outqueue_factor,
    )
    return _sweep_clic_config_field(
        source, cache_size, base, "window_size", list(window_sizes),
        label=trace_name, jobs=settings.jobs,
    )


def run_decay_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    decays: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Sensitivity to the exponential-smoothing weight r (Equation 3)."""
    source = trace_source(trace_name, settings)
    base = CLICConfig(
        window_size=clic_window_for(settings.target_requests),
        decay=settings.decay,
        outqueue_factor=settings.outqueue_factor,
    )
    return _sweep_clic_config_field(
        source, cache_size, base, "decay", list(decays),
        label=trace_name, jobs=settings.jobs,
    )


def run_outqueue_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    outqueue_factors: Sequence[float] = (0.0, 1.0, 2.0, 5.0, 10.0),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Sensitivity to the outqueue size Noutq (Section 3.1).

    With no outqueue CLIC only detects re-references of cached pages, so it
    systematically under-estimates ``Nr(H)`` for hint sets it is not already
    caching — this ablation shows what that costs.
    """
    source = trace_source(trace_name, settings)
    base = CLICConfig(
        window_size=clic_window_for(settings.target_requests),
        decay=settings.decay,
        outqueue_factor=settings.outqueue_factor,
    )
    return _sweep_clic_config_field(
        source, cache_size, base, "outqueue_factor", list(outqueue_factors),
        label=trace_name, jobs=settings.jobs,
    )


def run_metadata_charge_ablation(
    trace_name: str = "DB2_C300",
    cache_size: int = 3_600,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """Cost of paying for CLIC's metadata out of the cache (Section 6.1)."""
    source = trace_source(trace_name, settings)
    base = CLICConfig(
        window_size=clic_window_for(settings.target_requests),
        decay=settings.decay,
        outqueue_factor=settings.outqueue_factor,
    )
    return _sweep_clic_config_field(
        source, cache_size, base, "charge_metadata", [False, True],
        label=trace_name, jobs=settings.jobs,
    )
