"""Adaptivity experiment: how fast each policy recovers from a phase shift.

CLIC re-learns hint-set priorities every statistics window (paper
Sections 3-5), which is the mechanism that lets a storage-server cache track
a *changing* client mix; the stationary standard traces never exercise it.
This experiment replays a non-stationary phased schedule
(:mod:`repro.workloads.phased`) through CLIC and the online baselines with
rolling time-series accounting enabled, and reports:

* the windowed read-hit-ratio series per policy (the adaptation curves), and
* per phase boundary, each policy's **recovery time** — how many windows it
  takes the windowed hit ratio to climb back to the pre-shift level
  (``regain_windows``) and to reach the new phase's own steady state
  (``settle_windows``).

Rows come in two kinds, tagged by the ``row`` column: ``window`` rows are
the time series (one per policy per window), ``recovery`` rows are the
per-shift summaries.  Everything is deterministic and bit-identical at any
``--jobs`` count; the rolling series is computed inside whichever worker
replays the policy.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    phased_trace_source,
)
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.metrics import RollingMetrics
from repro.workloads.phased import PhasePlan, build_phase_plan
from repro.workloads.standard import clic_window_for

__all__ = [
    "ADAPTIVITY_POLICIES",
    "default_rolling_window",
    "recovery_summary",
    "run_adaptivity_experiment",
]


def default_rolling_window(total_requests: int) -> int:
    """The default window for the adaptation series (and CLIC's statistics).

    :func:`~repro.workloads.standard.clic_window_for` matches the paper's W
    at full scale; the ``total // 8`` cap keeps scaled-down runs (tests,
    golden fixtures) at roughly eight or more windows, so they still resolve
    what happens around a phase boundary instead of averaging a whole phase
    into one window.  The 125-request floor wins below ~1000 requests —
    per-window statistics get too noisy to read before window *count*
    becomes the problem.
    """
    return max(125, min(clic_window_for(total_requests), total_requests // 8))

#: Policies compared across phase boundaries (the paper's online policies).
ADAPTIVITY_POLICIES: tuple[str, ...] = ("CLIC", "ARC", "LRU", "TQ")

#: A policy counts as recovered once its windowed hit ratio is within this
#: absolute tolerance of the reference level.
DEFAULT_TOLERANCE = 0.02


def _windows_until(ratios: Sequence[float], level: float) -> int | None:
    """1-based index of the first ratio reaching *level*, or ``None``."""
    for index, ratio in enumerate(ratios):
        if ratio >= level:
            return index + 1
    return None


def recovery_summary(
    rolling: RollingMetrics,
    plan: PhasePlan,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[dict]:
    """Per phase-boundary recovery statistics for one policy's rolling series.

    For the boundary at request offset *b*:

    * ``pre_shift_hit_ratio`` — the last window that ends at or before *b*;
    * ``post_steady_hit_ratio`` — the mean of the final up-to-3 windows of
      the new phase (its steady state);
    * ``dip_hit_ratio`` — the worst window of the new phase (the cost of
      the shift);
    * ``regain_windows`` — windows after *b* until the series climbs back
      within *tolerance* of the pre-shift level (``None`` = never, e.g.
      when the new workload is inherently less cacheable);
    * ``settle_windows`` — windows after *b* until the series is within
      *tolerance* of the new phase's own steady state (adaptation time).

    Rolling windows are aligned to absolute sequence numbers, not to the
    plan, so a window may straddle a phase boundary and mix traffic from
    both sides.  Such windows are excluded from both phases — symmetric at
    either end of the phase — so ``pre``/``post`` statistics are computed
    from unpolluted windows only and recovery counts run over the new
    phase's *full* windows.  A phase shorter than one window therefore
    produces no recovery row.
    """
    windows = rolling.windows
    offsets = plan.phase_offsets()
    boundaries = plan.shift_offsets()
    rows: list[dict] = []
    for shift_index, boundary in enumerate(boundaries):
        old_phase = plan.phases[shift_index]
        new_phase = plan.phases[shift_index + 1]
        phase_end = (
            offsets[shift_index + 2]
            if shift_index + 2 < len(offsets)
            else plan.total_requests
        )
        pre = [w for w in windows if w.start + w.requests <= boundary]
        post = [
            w
            for w in windows
            if w.start >= boundary and w.start + w.requests <= phase_end
        ]
        if not pre or not post:
            continue
        pre_ratio = pre[-1].read_hit_ratio
        post_ratios = [w.read_hit_ratio for w in post]
        steady = sum(post_ratios[-3:]) / len(post_ratios[-3:])
        rows.append(
            {
                "row": "recovery",
                "shift": f"{old_phase.name}->{new_phase.name}",
                "shift_at": boundary,
                "pre_shift_hit_ratio": pre_ratio,
                "dip_hit_ratio": min(post_ratios),
                "post_steady_hit_ratio": steady,
                "regain_windows": _windows_until(post_ratios, pre_ratio - tolerance),
                "settle_windows": _windows_until(post_ratios, steady - tolerance),
            }
        )
    return rows


def run_adaptivity_experiment(
    plan: PhasePlan | str | None = None,
    cache_size: int = 2_400,
    policies: Sequence[str] = ADAPTIVITY_POLICIES,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    rolling_window: int | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[dict]:
    """Replay a phased schedule and report adaptation curves + recovery times.

    ``plan`` may be a :class:`~repro.workloads.phased.PhasePlan`, the name
    of a registered plan, or ``None`` (the settings' ``phase_plan``, scaled
    to ``settings.target_requests``).  CLIC's statistics window and the
    rolling metrics window are the same size by default, so "recovery in N
    windows" reads directly against the paper's window mechanism.
    """
    if plan is None:
        plan = settings.build_phase_plan()
    elif isinstance(plan, str):
        plan = build_phase_plan(
            plan, total_requests=settings.target_requests, seed=settings.seed
        )
    window = (
        default_rolling_window(plan.total_requests)
        if rolling_window is None
        else int(rolling_window)
    )

    policies = list(policies)
    specs = []
    for name in policies:
        kwargs: dict[str, object] = {}
        if name.upper() == "CLIC":
            kwargs = {"config": settings.clic_config(window_size=window)}
        specs.append(
            PolicySpec(label=name, name=name, capacity=cache_size, kwargs=kwargs)
        )
    # One cell per policy: all cells share the phased stream, so at jobs=1
    # they fold into a single replay pass, while jobs>1 splits the policies
    # across workers — identical results either way.
    cells = [
        SweepCell(x=float(index), specs=(spec,)) for index, spec in enumerate(specs)
    ]
    runner = ParallelSweepRunner(
        phased_trace_source(plan), jobs=settings.jobs, rolling_window=window
    )
    sweep = runner.run(cells, parameter="policy_index")

    rows: list[dict] = []
    for name in policies:
        result = sweep.series[name][0].result
        rolling = result.rolling
        for entry in rolling.windows:
            rows.append(
                {
                    "row": "window",
                    "policy": name,
                    "window": rolling.window_index(entry),
                    "start": entry.start,
                    "phase": plan.phase_at(entry.start).name,
                    "read_hit_ratio": entry.read_hit_ratio,
                    "evictions": entry.evictions,
                }
            )
    for name in policies:
        result = sweep.series[name][0].result
        for summary in recovery_summary(result.rolling, plan, tolerance=tolerance):
            rows.append({"row": summary.pop("row"), "policy": name, **summary})
    return rows
