"""Command-line entry point for regenerating the paper's tables and figures.

Usage (after installing the package)::

    python -m repro.experiments.cli --list
    python -m repro.experiments.cli fig6 --requests 60000
    python -m repro.experiments.cli fig9 fig10 --requests 30000 --csv-dir out/

Each experiment prints the same rows/series recorded in ``EXPERIMENTS.md``;
``--csv-dir`` additionally writes one CSV per experiment for re-plotting.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.reporting import rows_to_csv, rows_to_table
from repro.experiments.common import ExperimentSettings
from repro.experiments.multiclient import MultiClientResult
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.simulation.costmodel import DEVICE_PROFILES, WRITE_POLICIES
from repro.simulation.metrics import SweepResult
from repro.trace.cache import (
    CACHE_ENV_VAR,
    TraceCache,
    default_trace_cache,
    set_default_trace_cache,
)
from repro.workloads.arrivals import ARRIVAL_KINDS
from repro.workloads.phased import PHASE_PLANS

__all__ = ["main", "build_parser", "render_result"]


def _offered_loads(text: str) -> tuple[float, ...]:
    """Parse ``--offered-load`` (e.g. ``0.5,0.9,1.2``) into positive floats."""
    try:
        loads = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid offered loads {text!r}")
    if not loads or any(load <= 0.0 for load in loads):
        raise argparse.ArgumentTypeError(f"offered loads must be > 0, got {text!r}")
    return loads


def _shard_counts(text: str) -> tuple[int, ...]:
    """Parse ``--shards`` (e.g. ``1,2,4``) into a tuple of positive ints."""
    try:
        counts = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid shard counts {text!r}")
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError(f"shard counts must be >= 1, got {text!r}")
    return counts


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the CLIC paper (FAST '09).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiment ids to run (available: {', '.join(sorted(EXPERIMENTS))})",
    )
    parser.add_argument(
        "--experiment",
        action="append",
        default=None,
        metavar="EXPERIMENT",
        dest="experiment_flags",
        help="experiment id to run (repeatable; appended after positional ids)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--requests",
        type=int,
        default=60_000,
        help="storage-server requests per generated trace (default: 60000)",
    )
    parser.add_argument("--seed", type=int, default=17, help="workload seed (default: 17)")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep grids (default: 1 = serial; "
        "results are identical at any job count)",
    )
    parser.add_argument(
        "--shards",
        type=_shard_counts,
        default=None,
        metavar="S1,S2,...",
        help="comma-separated shard counts for the cluster experiment "
        "(default: 1,2,4,8; shard count 1 is the unified-cache baseline)",
    )
    parser.add_argument(
        "--phase-plan",
        choices=sorted(PHASE_PLANS),
        default=None,
        dest="phase_plan",
        help="phase schedule replayed by the adaptivity experiment "
        "(default: churn; see repro.workloads.phased)",
    )
    parser.add_argument(
        "--device",
        choices=sorted(DEVICE_PROFILES),
        default=None,
        help="device profile priced by the latency experiment "
        "(default: ssd; HDD misses are seek-distance-aware)",
    )
    parser.add_argument(
        "--cost-model",
        choices=WRITE_POLICIES,
        default=None,
        dest="cost_model",
        help="write-handling variant of the service-time cost model "
        "(default: write-through; write-back absorbs writes at cache speed)",
    )
    parser.add_argument(
        "--offered-load",
        type=_offered_loads,
        default=None,
        metavar="F1,F2,...",
        dest="offered_loads",
        help="comma-separated offered-load fractions swept by the load "
        "experiment, as multiples of the modeled single-server capacity "
        "(default: 0.25,0.5,0.75,0.9,1.1,1.5)",
    )
    parser.add_argument(
        "--arrival",
        choices=ARRIVAL_KINDS,
        default=None,
        help="arrival process used by the load experiment "
        "(default: poisson; see repro.workloads.arrivals)",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="directory to write one CSV per experiment (created if missing)",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--trace-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for the on-disk trace cache (default: "
        "$REPRO_TRACE_CACHE or ~/.cache/repro-clic/traces)",
    )
    cache_group.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the on-disk trace cache (regenerate traces in memory)",
    )
    return parser


def render_result(experiment_id: str, result) -> tuple[str, list[dict]]:
    """Render an experiment's return value as (text, rows-for-csv)."""
    if isinstance(result, SweepResult):
        return result.to_table(), result.as_rows()
    if isinstance(result, MultiClientResult):
        rows = result.as_rows()
        return rows_to_table(rows), rows
    if isinstance(result, dict):
        # Figures 6-8 return {trace name: SweepResult}.
        blocks = []
        rows: list[dict] = []
        for name, sweep in result.items():
            blocks.append(f"[{name}]\n{sweep.to_table()}")
            for row in sweep.as_rows():
                rows.append({"trace": name, **row})
        return "\n\n".join(blocks), rows
    if isinstance(result, list):
        return rows_to_table(result), result
    return str(result), []


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:<14} {experiment.paper_artifact:<10} {experiment.description}")
        return 0
    if args.experiment_flags:
        args.experiments = list(args.experiments) + list(args.experiment_flags)
    if not args.experiments:
        parser.error("no experiments given (use --list to see what is available)")

    # The environment variable is set (not just the in-process default), so
    # sweep worker processes resolve the same cache directory.
    if args.no_trace_cache:
        os.environ[CACHE_ENV_VAR] = "off"
        set_default_trace_cache(TraceCache(enabled=False))
    elif args.trace_cache is not None:
        os.environ[CACHE_ENV_VAR] = str(args.trace_cache)
        set_default_trace_cache(TraceCache(root=args.trace_cache))

    settings_kwargs = dict(
        target_requests=args.requests, seed=args.seed, jobs=args.jobs
    )
    if args.shards is not None:
        settings_kwargs["shard_counts"] = args.shards
    if args.device is not None:
        settings_kwargs["device"] = args.device
    if args.cost_model is not None:
        settings_kwargs["write_policy"] = args.cost_model
    if args.phase_plan is not None:
        settings_kwargs["phase_plan"] = args.phase_plan
    if args.offered_loads is not None:
        settings_kwargs["offered_loads"] = args.offered_loads
    if args.arrival is not None:
        settings_kwargs["arrival"] = args.arrival
    settings = ExperimentSettings(**settings_kwargs)
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)

    for experiment_id in args.experiments:
        experiment = get_experiment(experiment_id)
        print(f"\n### {experiment.paper_artifact}: {experiment.description}")
        if experiment_id == "fig2":
            result = experiment.runner()
        else:
            result = experiment.runner(settings=settings)
        text, rows = render_result(experiment_id, result)
        print(text)
        if args.csv_dir is not None and rows:
            path = rows_to_csv(rows, args.csv_dir / f"{experiment_id}.csv")
            print(f"(wrote {path})")
    # Diagnostics go to stderr so experiment stdout stays byte-identical
    # across runs and --jobs values (and safely redirectable to files).
    print(f"({default_trace_cache().summary()})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
