"""Cluster scaling: unified cache vs. an equal-total-capacity sharded fleet.

The paper's Figure 11 compares one shared cache against static per-client
partitions of the same total space.  This experiment generalizes that
comparison to a storage-server *cluster*: the total cache capacity is split
across S shards (:class:`~repro.simulation.cluster.ShardedCache`) and a
router assigns every page to exactly one shard, as a fleet of cache servers
would.  Sweeping S for each policy shows what page partitioning costs (or
buys) relative to the unified cache:

* the single-client workloads use **hash routing** — the uniform page
  spread a production cluster would deploy;
* the interleaved multi-client workload (the Figure 11 traces) uses
  **client-affinity routing**, so each client's pages live on one shard —
  at S = number of clients this *is* the paper's static partitioning,
  rebuilt from cluster parts.

``shards=1`` is the unified baseline (bit-identical to the unsharded
policy), so every series starts at the paper's configuration.  Besides the
overall read hit ratio, each row reports the per-shard hit-ratio spread and
the max-over-mean load imbalance — the skew statistic that decides whether
a routing strategy keeps a real fleet evenly loaded.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    clic_kwargs,
    generate_trace,
    trace_source,
)
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.metrics import SweepResult
from repro.simulation.multiclient import interleave_round_robin

__all__ = ["CLUSTER_POLICIES", "run_cluster_experiment", "sweep_shard_counts"]

#: Policies compared across shard counts (the paper's online policies).
CLUSTER_POLICIES: tuple[str, ...] = ("CLIC", "ARC", "LRU", "TQ")


def sweep_shard_counts(
    requests,
    cache_size: int,
    shard_counts: Sequence[int],
    policies: Sequence[str],
    router: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    page_span: int | None = None,
) -> SweepResult:
    """Shard count x policy grid over one request stream.

    Every cell holds one :class:`ShardedCache` per policy, all with the same
    *total* ``cache_size``; ``shards=1`` is the unified baseline.  Cells are
    plain picklable specs, so ``settings.jobs > 1`` fans them out over
    worker processes with results identical to the serial run.
    """
    cells = []
    for shards in shard_counts:
        specs = []
        for name in policies:
            kwargs: dict[str, object] = {
                "policy": name,
                "shards": shards,
                "router": router,
            }
            if page_span is not None:
                kwargs["page_span"] = page_span
            if name.upper() == "CLIC":
                kwargs["policy_kwargs"] = clic_kwargs(settings)
            specs.append(
                PolicySpec(
                    label=name, name="SHARDED", capacity=cache_size, kwargs=kwargs
                )
            )
        cells.append(SweepCell(x=float(shards), specs=tuple(specs)))
    runner = ParallelSweepRunner(requests, jobs=settings.jobs)
    return runner.run(cells, parameter="shards")


def _sweep_rows(
    workload: str, router: str, sweep: SweepResult, policies: Sequence[str]
) -> list[dict]:
    """Flatten one workload's sweep into report rows, (shards, policy) ordered."""
    rows = []
    point_count = len(sweep.series[policies[0]])
    for index in range(point_count):
        for name in policies:
            point = sweep.series[name][index]
            result = point.result
            # Spread over *serving* shards only: an idle shard (no reads
            # routed to it) is a load-imbalance fact, not a 0% hit ratio.
            shard_ratios = [
                stats.read_hit_ratio
                for stats in result.per_shard
                if stats.read_requests > 0
            ] or [result.read_hit_ratio]
            rows.append(
                {
                    "workload": workload,
                    "router": router,
                    "shards": int(point.x),
                    "policy": name,
                    "read_hit_ratio": result.read_hit_ratio,
                    "load_imbalance": result.load_imbalance,
                    "min_shard_hit_ratio": min(shard_ratios),
                    "max_shard_hit_ratio": max(shard_ratios),
                }
            )
    return rows


def run_cluster_experiment(
    trace_names: Sequence[str] = ("DB2_C300",),
    multi_trace_names: Sequence[str] = ("DB2_C60", "DB2_C300", "DB2_C540"),
    cache_size: int = 3_600,
    policies: Sequence[str] = CLUSTER_POLICIES,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    shard_counts: Sequence[int] | None = None,
) -> list[dict]:
    """Shard-count x policy scaling rows for the standard and interleaved workloads.

    Returns one row per (workload, shard count, policy) with the overall
    read hit ratio, the per-shard hit-ratio spread, and the max-over-mean
    load imbalance.  ``shard_counts`` defaults to ``settings.shard_counts``;
    the count 1 row is the unified-cache baseline.
    """
    policies = list(policies)
    counts = list(shard_counts if shard_counts is not None else settings.shard_counts)
    rows: list[dict] = []

    # --- Single-client standard traces: uniform page-hash routing.
    for name in trace_names:
        sweep = sweep_shard_counts(
            trace_source(name, settings),
            cache_size=cache_size,
            shard_counts=counts,
            policies=policies,
            router="hash",
            settings=settings,
        )
        rows.extend(_sweep_rows(name, "hash", sweep, policies))

    # --- The Figure 11 multi-client workload: client-affinity routing, so
    # at S = len(multi_trace_names) the cluster is the paper's static
    # partitioning rebuilt from shards.
    if multi_trace_names:
        traces = [
            generate_trace(name, settings, client_id=f"client-{name}")
            for name in multi_trace_names
        ]
        interleaved = interleave_round_robin([trace.requests() for trace in traces])
        sweep = sweep_shard_counts(
            interleaved,
            cache_size=cache_size,
            shard_counts=counts,
            policies=policies,
            router="client",
            settings=settings,
        )
        rows.extend(_sweep_rows("interleaved", "client", sweep, policies))
    return rows
