"""Shared plumbing for the per-figure experiments.

Every experiment generates one or more of the standard traces, runs one or
more policies over them and reports read hit ratios.  This module centralises
the defaults (how long the generated traces are, how CLIC is configured for a
given trace length) so the figure modules stay small and consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cache.registry import PAPER_POLICIES
from repro.core.config import CLICConfig
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import RequestSource
from repro.trace.cache import TraceSpec, default_trace_cache
from repro.trace.records import Trace
from repro.workloads.standard import clic_window_for, standard_trace

if TYPE_CHECKING:  # imported for type annotations only (lazy at runtime)
    from repro.simulation.queueing import QueueingModel
    from repro.workloads.phased import PhasePlan

__all__ = [
    "ExperimentSettings",
    "clic_kwargs",
    "generate_trace",
    "phased_trace_source",
    "trace_spec",
    "trace_source",
    "DEFAULT_SETTINGS",
]

#: Distinct "not given" marker for optional overrides whose valid values
#: include ``None`` and other falsy values (``top_k=None`` means "exact hint
#: table", ``window_size`` must not be coerced by truthiness).
_UNSET = object()


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    ``target_requests`` trades fidelity for runtime: the paper's traces are
    millions of requests long; the default here keeps a full figure
    regeneration in the minutes range on a laptop while preserving the
    qualitative shapes.  Increase it for closer-to-paper curves.
    """

    target_requests: int = 60_000
    seed: int = 17
    policies: tuple[str, ...] = PAPER_POLICIES
    decay: float = 1.0               # the paper's r
    outqueue_factor: float = 5.0     # the paper's Noutq (entries per cache page)
    top_k: int | None = None         # None = exact hint table (Sections 3-4)
    #: Worker processes for sweep grids (1 = serial, bit-identical results).
    jobs: int = 1
    #: Shard counts swept by the cluster experiment; 1 is the unified cache.
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    #: Device profile priced by the latency experiment (``hdd``/``ssd``/
    #: ``nvme``, see :data:`repro.simulation.costmodel.DEVICE_PROFILES`).
    device: str = "ssd"
    #: Write-handling variant of the cost model (``write-through`` puts the
    #: device write on the critical path; ``write-back`` absorbs writes at
    #: cache speed).
    write_policy: str = "write-through"
    #: Named phase schedule replayed by the adaptivity experiment
    #: (see :data:`repro.workloads.phased.PHASE_PLANS`).  Churn is the
    #: default because both its phases are cacheable at reproduction scale,
    #: so recovery times are meaningful; the TPC-C -> TPC-H switch plan's
    #: second phase is scan-dominated and bottoms out near zero.
    phase_plan: str = "churn"
    #: Offered-load fractions swept by the ``load`` experiment, as multiples
    #: of the reference single-server capacity (the unsharded first policy's
    #: modeled throughput).  Spans under- to over-load so the saturation
    #: knee lands inside the sweep.
    offered_loads: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 1.1, 1.5)
    #: Arrival-process kind used by the ``load`` experiment
    #: (see :data:`repro.workloads.arrivals.ARRIVAL_KINDS`).
    arrival: str = "poisson"

    def build_phase_plan(self) -> "PhasePlan":
        """The phase schedule these settings describe, scaled to the trace length."""
        from repro.workloads.phased import build_phase_plan

        return build_phase_plan(
            self.phase_plan, total_requests=self.target_requests, seed=self.seed
        )

    def clic_config(self, top_k=_UNSET, window_size=_UNSET) -> CLICConfig:
        """CLIC configuration matching the paper's settings, scaled to the trace length.

        Both overrides distinguish "not given" (``_UNSET``) from every
        explicit value: ``top_k=None`` overrides a settings-level ``top_k``
        back to the exact hint table, and ``window_size`` is taken verbatim
        instead of being replaced by the default whenever it is falsy.
        """
        return CLICConfig(
            window_size=(
                clic_window_for(self.target_requests)
                if window_size is _UNSET
                else window_size
            ),
            decay=self.decay,
            outqueue_factor=self.outqueue_factor,
            top_k=self.top_k if top_k is _UNSET else top_k,
        )

    def cost_model(
        self, device: str | None = None, page_span: int | None = None
    ) -> CostModel:
        """The service-time cost model these settings describe.

        ``device`` overrides :attr:`device` (the latency experiment prices
        several devices against one settings object); ``page_span`` scales
        HDD seeks to the workload's page-id space.
        """
        return CostModel(
            device=device or self.device,
            write_policy=self.write_policy,
            page_span=page_span,
        )

    def queueing_model(
        self, rate_rps: float, page_span: int | None = None
    ) -> "QueueingModel":
        """An open-loop queueing model at *rate_rps* under these settings.

        Builds the arrival process named by :attr:`arrival` at the given
        mean rate (seeded from :attr:`seed`) over the same device/write
        policy as :meth:`cost_model`.  The ``load`` experiment rescales the
        returned model to each offered-load fraction with
        :meth:`~repro.simulation.queueing.QueueingModel.scaled`.
        """
        from repro.simulation.queueing import QueueingModel
        from repro.workloads.arrivals import build_arrivals

        return QueueingModel(
            arrivals=build_arrivals(self.arrival, rate_rps, seed=self.seed),
            device=self.device,
            write_policy=self.write_policy,
            page_span=page_span,
        )


DEFAULT_SETTINGS = ExperimentSettings()

#: Cache of generated traces keyed by (name, seed, target_requests, client_id)
#: so that a figure touching the same trace at several cache sizes only pays
#: the generation cost once per process.
_TRACE_CACHE: dict[tuple, Trace] = {}


def trace_spec(
    name: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    client_id: str | None = None,
) -> TraceSpec:
    """The picklable on-disk-cache key/handle for one standard trace."""
    return TraceSpec(
        name=name,
        seed=settings.seed,
        target_requests=settings.target_requests,
        client_id=client_id,
    )


def trace_source(
    name: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    client_id: str | None = None,
) -> RequestSource:
    """The preferred request source for sweeps over a standard trace.

    With the on-disk trace cache enabled (the default) this is a lazy
    :class:`~repro.trace.cache.TraceSpec`: replay streams from the cached
    binary file with bounded memory, and parallel sweep workers open the
    file themselves instead of receiving pickled request lists.  With the
    cache disabled it falls back to the materialized request list.  Both
    produce bit-identical sweep results.
    """
    if default_trace_cache().enabled:
        spec = trace_spec(name, settings, client_id)
        spec.ensure()
        return spec
    return generate_trace(name, settings, client_id).requests()


def phased_trace_source(plan: "PhasePlan") -> RequestSource:
    """The preferred request source for replays of a phased schedule.

    Mirrors :func:`trace_source`: a lazy, picklable
    :class:`~repro.trace.cache.TraceSpec` through the on-disk cache when it
    is enabled (the cache key hashes the whole plan), otherwise the
    materialized request list.
    """
    from repro.workloads.phased import phased_trace

    if default_trace_cache().enabled:
        spec = TraceSpec.for_plan(plan)
        spec.ensure()
        return spec
    return phased_trace(plan).requests()


def generate_trace(
    name: str,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    client_id: str | None = None,
    use_cache: bool = True,
) -> Trace:
    """Generate (or fetch from the in-process/on-disk caches) one standard trace.

    Materialized traces are memoized in-process as before; on a process-local
    miss the trace is loaded through the on-disk trace cache
    (:mod:`repro.trace.cache`) when it is enabled, so repeated runs — and
    concurrent sweep workers — pay the generation cost once per machine, not
    once per process.
    """
    key = (name, settings.seed, settings.target_requests, client_id)
    if use_cache and key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    disk_cache = default_trace_cache()
    if disk_cache.enabled:
        trace = disk_cache.load(trace_spec(name, settings, client_id))
    else:
        trace = standard_trace(
            name,
            seed=settings.seed,
            target_requests=settings.target_requests,
            client_id=client_id,
        )
    if use_cache:
        _TRACE_CACHE[key] = trace
    return trace


def clic_kwargs(settings: ExperimentSettings, top_k=_UNSET) -> dict:
    """Keyword arguments for constructing CLIC through the policy registry.

    ``top_k`` follows the same sentinel convention as
    :meth:`ExperimentSettings.clic_config`: omitted means "use the
    settings-level value", ``None`` means the exact hint table.
    """
    return {"config": settings.clic_config(top_k=top_k)}


def clear_trace_cache() -> None:
    """Drop all cached traces (mainly for tests)."""
    _TRACE_CACHE.clear()
