"""Figure 3: hint-set caching priorities versus frequency for a TPC-C trace.

The paper plots, for the DB2_C60 trace, one point per hint set: its frequency
of occurrence (x) against its benefit/cost caching priority (y), and observes
that a few hint sets (e.g. replacement writes to the STOCK table) stand out
with much higher priorities than others (e.g. ORDER_LINE reads).
"""

from __future__ import annotations

from repro.analysis.hint_analysis import figure3_rows
from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, generate_trace

__all__ = ["run_hint_priority_scatter"]


def run_hint_priority_scatter(
    trace_name: str = "DB2_C60",
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    include_zero_priority: bool = False,
) -> list[dict]:
    """The Figure 3 scatter: one row per hint set with frequency and priority.

    Rows are sorted by priority (highest first) and annotated with the hint
    values so the standout hint sets can be interpreted, exactly as the paper
    annotates "STOCK table replacement writes" and "ORDERLINE table reads".
    """
    trace = generate_trace(trace_name, settings)
    rows = figure3_rows(trace.requests(), include_zero_priority=include_zero_priority)
    for row in rows:
        client_id, values = row["hint_set"]
        row["client"] = client_id
        row["hint_values"] = values
    return rows
