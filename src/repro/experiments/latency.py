"""Service-time experiment: what the hit-ratio differences cost in latency.

The paper argues that CLIC's higher second-tier hit ratios translate into
lower storage-server service time; every other experiment in this package
stops at the hit ratio.  This one prices the same replays against a device
profile (:mod:`repro.simulation.costmodel`) and reports, per policy, the
modeled mean/p50/p99 read latency and throughput — for the unified server
cache and for an equal-capacity sharded cluster, whose rows additionally
carry the hottest-shard queueing penalty (the busiest shard's service-time
excess over the fleet average).

HDD seeks are scaled to each workload's actual page-id space
(``database_pages`` from the standard-trace configuration), so the same
trace priced against ``hdd`` vs ``nvme`` shows how much of CLIC's advantage
survives on media where misses are cheap.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    clic_kwargs,
    trace_source,
)
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.workloads.standard import STANDARD_TRACES

__all__ = ["LATENCY_POLICIES", "run_latency_experiment"]

#: Policies priced against each device (the paper's online policies).
LATENCY_POLICIES: tuple[str, ...] = ("CLIC", "ARC", "LRU", "TQ")


def _policy_spec(
    name: str,
    cache_size: int,
    settings: ExperimentSettings,
    shards: int,
) -> PolicySpec:
    """One unified (``shards=1``) or sharded sweep spec for *name*."""
    policy_kwargs = clic_kwargs(settings) if name.upper() == "CLIC" else {}
    if shards == 1:
        return PolicySpec(
            label=name, name=name, capacity=cache_size, kwargs=policy_kwargs
        )
    kwargs: dict[str, object] = {"policy": name, "shards": shards, "router": "hash"}
    if policy_kwargs:
        kwargs["policy_kwargs"] = policy_kwargs
    return PolicySpec(
        label=f"{name} x{shards}", name="SHARDED", capacity=cache_size, kwargs=kwargs
    )


def run_latency_experiment(
    trace_names: Sequence[str] = ("DB2_C300",),
    cache_size: int = 3_600,
    policies: Sequence[str] = LATENCY_POLICIES,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    devices: Sequence[str] | None = None,
    cluster_shards: int = 4,
) -> list[dict]:
    """Per-policy modeled service time for unified and sharded configurations.

    Returns one row per (workload, device, configuration, policy) with the
    read hit ratio and the cost-model columns (mean/p50/p99 read latency in
    microseconds, modeled throughput).  Sharded rows add the per-shard
    queueing statistics — heterogeneous columns by design, which the
    reporting layer renders as a first-seen-order union.  ``devices``
    defaults to the settings' device; the cells are plain picklable specs,
    so ``settings.jobs > 1`` fans them out with bit-identical results.
    """
    if cluster_shards < 1:
        raise ValueError(f"cluster_shards must be >= 1, got {cluster_shards}")
    policies = list(policies)
    devices = list(devices) if devices is not None else [settings.device]
    # shards=1 *is* the unified configuration; don't run (or label) it twice.
    shard_variants = [1] + ([cluster_shards] if cluster_shards > 1 else [])
    rows: list[dict] = []
    for name in trace_names:
        source = trace_source(name, settings)
        config = STANDARD_TRACES.get(name)
        page_span = config.database_pages if config is not None else None

        def run_priced_sweep(model):
            cells = [
                SweepCell(
                    x=float(shards),
                    specs=tuple(
                        _policy_spec(p, cache_size, settings, shards)
                        for p in policies
                    ),
                )
                for shards in shard_variants
            ]
            runner = ParallelSweepRunner(source, jobs=settings.jobs, cost_model=model)
            return runner.run(cells, parameter="shards")

        # Hit/miss outcomes are device-independent, and for
        # position-independent devices the per-request accounting provably
        # equals the analytic derivation from the final counts — so all
        # such devices share ONE replay and the rest are re-priced from its
        # stats.  Only seek-aware devices (HDD) need their own per-request
        # pricing pass.
        shared_sweep = None
        for device in devices:
            model = settings.cost_model(device=device, page_span=page_span)
            reprice = None
            if model.profile.position_dependent:
                sweep = run_priced_sweep(model)
            elif shared_sweep is None:
                shared_sweep = sweep = run_priced_sweep(model)
            else:
                sweep, reprice = shared_sweep, model
            for shards in shard_variants:
                for policy in policies:
                    label = policy if shards == 1 else f"{policy} x{shards}"
                    result = next(
                        point.result
                        for point in sweep.series[label]
                        if point.x == float(shards)
                    )
                    if reprice is not None:
                        result = dataclasses.replace(
                            result,
                            latency=reprice.latency_from_stats(result.stats),
                            shard_latency=reprice.shard_latencies(result.per_shard),
                        )
                    # Sharded rows price the fleet as independent devices
                    # (one seek head per shard), the same per-request
                    # method as the unified rows they are compared with.
                    latency = result.effective_latency
                    row = {
                        "workload": name,
                        "device": device,
                        "configuration": (
                            "unified" if shards == 1 else f"{shards} shards"
                        ),
                        "policy": policy,
                        "read_hit_ratio": result.read_hit_ratio,
                        **latency.report_columns(),
                    }
                    if result.shard_latency:
                        row["hottest_shard_penalty"] = result.hottest_shard_penalty
                        row["cluster_throughput_rps"] = result.cluster_throughput_rps
                    rows.append(row)
    return rows
