"""Open-loop load experiment: latency under offered load, per policy.

The latency experiment prices replays serially — every request starts the
moment the previous one finishes, so its latencies are pure service times.
This experiment puts the same replays behind an open-loop arrival process
(:mod:`repro.workloads.arrivals`) and a per-shard FCFS queue
(:mod:`repro.simulation.queueing`), sweeping the offered load from well
under to past the server's capacity.  Each row reports the policy's hit
ratio and service-time columns next to the queueing columns (mean/p50/p99
queueing delay and sojourn, utilization), so the saturation knee — where
queueing delay takes off as utilization approaches 1 — is read directly
off the sweep.

Offered loads are expressed as fractions of a *reference capacity*: the
modeled serial throughput of the first policy running unsharded, measured
by a pricing pre-pass over the same trace.  That anchors the sweep to the
workload (a trace with many cache hits has a much faster server than one
without) while keeping every policy and shard configuration under the
*same* arrival clock per fraction, which is what makes their queueing
columns comparable.  The arrival processes for different fractions are
rescalings of one underlying random sequence
(:meth:`~repro.workloads.arrivals.ArrivalProcess.scaled`), so queueing
delays are pathwise monotone in offered load and the knee is exact, not a
sampling artifact.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    trace_source,
)
from repro.experiments.latency import _policy_spec
from repro.simulation.engine import ParallelSweepRunner, SweepCell
from repro.workloads.standard import STANDARD_TRACES

__all__ = ["LOAD_POLICIES", "reference_capacity_rps", "run_load_experiment"]

#: Policies swept against offered load (the paper's strongest online
#: policies; TQ is omitted to keep the grid small — add it via ``policies``).
LOAD_POLICIES: tuple[str, ...] = ("CLIC", "ARC", "LRU")


def reference_capacity_rps(
    trace_name: str,
    cache_size: int,
    policy: str,
    settings: ExperimentSettings,
    page_span: int | None = None,
) -> float:
    """Modeled serial throughput (requests/s) of *policy* unsharded.

    One pricing pre-pass over the trace; the ``load`` sweep expresses its
    offered loads as fractions of this rate.  Deterministic for fixed
    settings, so golden fixtures of the sweep are stable.
    """
    runner = ParallelSweepRunner(
        trace_source(trace_name, settings),
        jobs=1,
        cost_model=settings.cost_model(page_span=page_span),
    )
    sweep = runner.run(
        [SweepCell(x=1.0, specs=(_policy_spec(policy, cache_size, settings, 1),))],
        parameter="reference",
    )
    result = sweep.series[policy][0].result
    rate = result.latency.throughput_rps
    if rate <= 0.0:
        raise ValueError(
            f"reference replay of {policy!r} on {trace_name!r} has no modeled "
            "throughput; cannot anchor offered loads"
        )
    return rate


def run_load_experiment(
    trace_names: Sequence[str] = ("DB2_C300",),
    cache_size: int = 3_600,
    policies: Sequence[str] = LOAD_POLICIES,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    cluster_shards: int = 4,
) -> list[dict]:
    """Queueing delay / sojourn / utilization vs offered load, per policy.

    Returns one row per (workload, offered load, configuration, policy)
    with the read hit ratio, the serial service-time columns and the
    queueing columns.  ``configuration`` is ``unified`` or ``N shards``
    (an equal-capacity hash-routed cluster, each shard its own server).
    Offered-load fractions come from ``settings.offered_loads`` and the
    arrival-process kind from ``settings.arrival``; cells are plain
    picklable specs, so ``settings.jobs > 1`` fans the grid out with
    bit-identical results.
    """
    if cluster_shards < 1:
        raise ValueError(f"cluster_shards must be >= 1, got {cluster_shards}")
    if not settings.offered_loads:
        raise ValueError("settings.offered_loads is empty")
    if any(fraction <= 0.0 for fraction in settings.offered_loads):
        raise ValueError(
            f"offered loads must be > 0, got {settings.offered_loads!r}"
        )
    policies = list(policies)
    shard_variants = [1] + ([cluster_shards] if cluster_shards > 1 else [])
    rows: list[dict] = []
    for name in trace_names:
        config = STANDARD_TRACES.get(name)
        page_span = config.database_pages if config is not None else None
        capacity_rps = reference_capacity_rps(
            name, cache_size, policies[0], settings, page_span
        )
        base_model = settings.queueing_model(capacity_rps, page_span=page_span)
        source = trace_source(name, settings)
        specs = tuple(
            _policy_spec(policy, cache_size, settings, shards)
            for shards in shard_variants
            for policy in policies
        )
        # One cell per offered load: every policy and shard configuration
        # shares that load's replay pass (and arrival clock), while
        # distinct loads are distinct (stream, queueing) groups.
        cells = [
            SweepCell(
                x=fraction, specs=specs, queueing=base_model.scaled(fraction)
            )
            for fraction in settings.offered_loads
        ]
        runner = ParallelSweepRunner(
            source,
            jobs=settings.jobs,
            cost_model=settings.cost_model(page_span=page_span),
        )
        sweep = runner.run(cells, parameter="offered_load")
        for fraction in settings.offered_loads:
            for shards in shard_variants:
                for policy in policies:
                    label = policy if shards == 1 else f"{policy} x{shards}"
                    result = next(
                        point.result
                        for point in sweep.series[label]
                        if point.x == fraction
                    )
                    rows.append(
                        {
                            "workload": name,
                            "arrival": settings.arrival,
                            "offered_load": fraction,
                            "configuration": (
                                "unified" if shards == 1 else f"{shards} shards"
                            ),
                            "policy": policy,
                            "read_hit_ratio": result.read_hit_ratio,
                            **result.effective_latency.report_columns(),
                            **result.queueing.report_columns(),
                        }
                    )
    return rows
