"""Figure 11: multiple storage clients sharing one CLIC-managed cache.

Section 6.4 interleaves three DB2 TPC-C traces (collected with different
first-tier buffer sizes) round-robin into one storage-server workload and
compares two arrangements of the same total cache space:

* one shared cache managed by CLIC (the paper uses 180K pages; scaled here
  to 3 600 pages), which is free to give more space to whichever client
  offers the best caching opportunities; and
* equal static partitioning — each client gets a private cache of one third
  of the space, managed by CLIC independently (the paper's "3 x 60K" bars).

The paper finds that the shared cache concentrates on the high-locality
client (DB2_C60) and wins on overall hit ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, generate_trace
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.multiclient import interleave_round_robin, partition_capacity

__all__ = ["MultiClientResult", "run_multiclient_experiment"]


@dataclass(frozen=True)
class MultiClientResult:
    """Per-client and overall read hit ratios for both cache arrangements."""

    shared_cache_size: int
    private_cache_sizes: tuple[int, ...]
    shared_per_client: dict[str, float]
    shared_overall: float
    private_per_client: dict[str, float]
    private_overall: float

    def as_rows(self) -> list[dict]:
        """Figure 11-style rows: one per client plus the overall bars."""
        rows = []
        for client in self.shared_per_client:
            rows.append(
                {
                    "trace": client,
                    "shared_hit_ratio": self.shared_per_client[client],
                    "private_hit_ratio": self.private_per_client.get(client, 0.0),
                }
            )
        rows.append(
            {
                "trace": "overall",
                "shared_hit_ratio": self.shared_overall,
                "private_hit_ratio": self.private_overall,
            }
        )
        return rows


def run_multiclient_experiment(
    trace_names: Sequence[str] = ("DB2_C60", "DB2_C300", "DB2_C540"),
    shared_cache_size: int = 3_600,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> MultiClientResult:
    """Reproduce Figure 11 with the scaled traces.

    Each client is a separate instance (distinct client id), so CLIC treats
    their hint types as distinct, exactly as Section 2 requires.
    """
    traces = [
        generate_trace(name, settings, client_id=f"client-{name}")
        for name in trace_names
    ]
    client_ids = [f"client-{name}" for name in trace_names]

    # --- One engine grid: the shared-cache cell replays the round-robin
    # interleaved workload, and one private-cache cell per client replays
    # that client's full-length (untruncated) trace, as in the paper.
    # ``settings.jobs > 1`` runs the cells on worker processes.
    config = settings.clic_config()
    interleaved = interleave_round_robin([trace.requests() for trace in traces])
    private_sizes = partition_capacity(shared_cache_size, len(traces))
    cells = [
        SweepCell(
            x=0.0,
            specs=(
                PolicySpec(
                    label="shared",
                    name="CLIC",
                    capacity=shared_cache_size,
                    kwargs={"config": config},
                ),
            ),
            requests=interleaved,
        )
    ]
    for index, (name, trace, size) in enumerate(zip(trace_names, traces, private_sizes)):
        cells.append(
            SweepCell(
                x=float(index + 1),
                specs=(
                    PolicySpec(
                        label=f"private:{name}",
                        name="CLIC",
                        capacity=size,
                        kwargs={"config": config},
                    ),
                ),
                requests=trace.requests(),
            )
        )
    grid = ParallelSweepRunner(jobs=settings.jobs).run(cells, parameter="cell")

    shared_result = grid.series["shared"][0].result
    shared_per_client = {
        name: shared_result.client_read_hit_ratio(client_id)
        for name, client_id in zip(trace_names, client_ids)
    }

    private_per_client: dict[str, float] = {}
    total_hits = 0
    total_reads = 0
    for name in trace_names:
        result = grid.series[f"private:{name}"][0].result
        private_per_client[name] = result.read_hit_ratio
        total_hits += result.stats.read_hits
        total_reads += result.stats.read_requests
    private_overall = total_hits / total_reads if total_reads else 0.0

    return MultiClientResult(
        shared_cache_size=shared_cache_size,
        private_cache_sizes=tuple(private_sizes),
        shared_per_client=shared_per_client,
        shared_overall=shared_result.read_hit_ratio,
        private_per_client=private_per_client,
        private_overall=private_overall,
    )
