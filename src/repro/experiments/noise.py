"""Figure 10: robustness to useless ("noise") hint types.

Section 6.3 injects ``T`` synthetic hint types, each drawn from a domain of
``D = 10`` values with a Zipf(z=1) distribution, into the DB2 TPC-C traces,
while CLIC's hint tracking stays capped at ``k = 100`` hint sets.  Because
the noise multiplies the number of distinct hint sets (up to ``D**T``-fold),
it dilutes the informative hint sets and degrades the hit ratio — mildly for
the high-locality trace, more severely for the others.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, generate_trace
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.metrics import SweepResult
from repro.trace.noise import inject_noise_hints

__all__ = ["run_noise_experiment"]


def run_noise_experiment(
    trace_names: Sequence[str] = ("DB2_C60", "DB2_C300", "DB2_C540"),
    noise_levels: Sequence[int] = (0, 1, 2, 3),
    cache_size: int = 3_600,
    top_k: int = 100,
    noise_domain: int = 10,
    noise_skew: float = 1.0,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """CLIC read hit ratio as a function of the number of noise hint types T.

    Every (trace, T) combination replays its own noise-injected stream, so
    each is a separate sweep cell carrying its stream; ``settings.jobs > 1``
    runs the cells on worker processes.
    """
    config = settings.clic_config(top_k=top_k)
    cells = []
    for name in trace_names:
        trace = generate_trace(name, settings)
        for t in noise_levels:
            noisy = inject_noise_hints(
                trace.requests(),
                num_types=t,
                domain_size=noise_domain,
                skew=noise_skew,
                seed=settings.seed + t,
            )
            cells.append(
                SweepCell(
                    x=float(t),
                    specs=(
                        PolicySpec(
                            label=name,
                            name="CLIC",
                            capacity=cache_size,
                            kwargs={"config": config},
                        ),
                    ),
                    requests=noisy,
                )
            )
    runner = ParallelSweepRunner(jobs=settings.jobs)
    return runner.run(cells, parameter="noise_hint_types")
