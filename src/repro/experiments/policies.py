"""Figures 6, 7 and 8: read hit ratio versus server cache size, per policy.

The paper sweeps the storage-server cache size and plots the read hit ratio
of OPT, LRU, ARC, TQ and CLIC for each trace family:

* Figure 6 — DB2 TPC-C traces (DB2_C60, DB2_C300, DB2_C540);
* Figure 7 — DB2 TPC-H traces (DB2_H80, DB2_H400, DB2_H720);
* Figure 8 — MySQL TPC-H traces (MY_H65, MY_H98).

Each figure is a family of per-trace sweeps; this module produces them as
:class:`~repro.simulation.metrics.SweepResult` objects keyed by trace name.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.common import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    clic_kwargs,
    trace_source,
)
from repro.simulation.metrics import SweepResult
from repro.simulation.sweep import sweep_cache_sizes
from repro.workloads.standard import server_cache_sizes

__all__ = [
    "FIGURE6_TRACES",
    "FIGURE7_TRACES",
    "FIGURE8_TRACES",
    "run_policy_comparison",
    "run_figure6",
    "run_figure7",
    "run_figure8",
]

FIGURE6_TRACES: tuple[str, ...] = ("DB2_C60", "DB2_C300", "DB2_C540")
FIGURE7_TRACES: tuple[str, ...] = ("DB2_H80", "DB2_H400", "DB2_H720")
FIGURE8_TRACES: tuple[str, ...] = ("MY_H65", "MY_H98")


def run_policy_comparison(
    trace_names: Sequence[str],
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    cache_sizes: Sequence[int] | None = None,
) -> dict[str, SweepResult]:
    """Sweep server cache sizes for every policy over each named trace.

    Traces are consumed as lazy sources (:func:`trace_source`): replay
    streams from the on-disk trace cache, and ``settings.jobs > 1`` ships
    the tiny spec to workers instead of pickling the request list.
    """
    results: dict[str, SweepResult] = {}
    policy_kwargs: Mapping[str, Mapping[str, object]] = {"CLIC": clic_kwargs(settings)}
    for name in trace_names:
        source = trace_source(name, settings)
        sizes = list(cache_sizes) if cache_sizes is not None else server_cache_sizes(name)
        results[name] = sweep_cache_sizes(
            source,
            cache_sizes=sizes,
            policies=settings.policies,
            policy_kwargs=policy_kwargs,
            jobs=settings.jobs,
        )
    return results


def run_figure6(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    cache_sizes: Sequence[int] | None = None,
) -> dict[str, SweepResult]:
    """Figure 6: the DB2 TPC-C trace family."""
    return run_policy_comparison(FIGURE6_TRACES, settings, cache_sizes)


def run_figure7(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    cache_sizes: Sequence[int] | None = None,
) -> dict[str, SweepResult]:
    """Figure 7: the DB2 TPC-H trace family."""
    return run_policy_comparison(FIGURE7_TRACES, settings, cache_sizes)


def run_figure8(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    cache_sizes: Sequence[int] | None = None,
) -> dict[str, SweepResult]:
    """Figure 8: the MySQL TPC-H trace family."""
    return run_policy_comparison(FIGURE8_TRACES, settings, cache_sizes)
