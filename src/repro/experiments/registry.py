"""Experiment registry: one entry per table/figure of the paper's evaluation.

Maps experiment identifiers (``fig2`` ... ``fig11``, plus the ablations) to
the callables that regenerate them, so benchmarks, examples and command-line
use all share one source of truth.  The mapping mirrors the experiment index
in ``DESIGN.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import ablations, adaptivity, cluster, hint_priorities, latency
from repro.experiments import load, multiclient, noise, policies, schemas_table, topk
from repro.experiments import traces_table

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper's evaluation."""

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable


EXPERIMENTS: dict[str, Experiment] = {
    "fig2": Experiment(
        "fig2",
        "Figure 2",
        "Hint types of the DB2-like and MySQL-like clients with domain cardinalities.",
        schemas_table.run_hint_schema_table,
    ),
    "fig3": Experiment(
        "fig3",
        "Figure 3",
        "Hint-set caching priority vs. frequency scatter for the DB2_C60 trace.",
        hint_priorities.run_hint_priority_scatter,
    ),
    "fig5": Experiment(
        "fig5",
        "Figure 5",
        "Summary table of the standard (scaled) I/O request traces.",
        traces_table.run_trace_table,
    ),
    "fig6": Experiment(
        "fig6",
        "Figure 6",
        "Read hit ratio vs. server cache size, DB2 TPC-C traces, all policies.",
        policies.run_figure6,
    ),
    "fig7": Experiment(
        "fig7",
        "Figure 7",
        "Read hit ratio vs. server cache size, DB2 TPC-H traces, all policies.",
        policies.run_figure7,
    ),
    "fig8": Experiment(
        "fig8",
        "Figure 8",
        "Read hit ratio vs. server cache size, MySQL TPC-H traces, all policies.",
        policies.run_figure8,
    ),
    "fig9": Experiment(
        "fig9",
        "Figure 9",
        "Effect of top-k hint-set filtering on CLIC's read hit ratio.",
        topk.run_topk_experiment,
    ),
    "fig10": Experiment(
        "fig10",
        "Figure 10",
        "Effect of injected noise hint types on CLIC's read hit ratio (k=100).",
        noise.run_noise_experiment,
    ),
    "fig11": Experiment(
        "fig11",
        "Figure 11",
        "Three DB2 clients sharing one CLIC cache vs. equal static partitioning.",
        multiclient.run_multiclient_experiment,
    ),
    "adaptivity": Experiment(
        "adaptivity",
        "extension",
        "Non-stationary phased workload: windowed hit-ratio series + recovery times.",
        adaptivity.run_adaptivity_experiment,
    ),
    "cluster": Experiment(
        "cluster",
        "extension",
        "Shard count x policy: unified cache vs. equal-capacity sharded cluster.",
        cluster.run_cluster_experiment,
    ),
    "latency": Experiment(
        "latency",
        "extension",
        "Service-time cost model: per-policy mean/p50/p99 read latency and throughput.",
        latency.run_latency_experiment,
    ),
    "load": Experiment(
        "load",
        "extension",
        "Open-loop queueing: delay/sojourn/utilization vs offered load, per policy.",
        load.run_load_experiment,
    ),
    "abl-window": Experiment(
        "abl-window",
        "ablation",
        "Sensitivity to the statistics window size W.",
        ablations.run_window_ablation,
    ),
    "abl-decay": Experiment(
        "abl-decay",
        "ablation",
        "Sensitivity to the exponential smoothing weight r.",
        ablations.run_decay_ablation,
    ),
    "abl-outqueue": Experiment(
        "abl-outqueue",
        "ablation",
        "Sensitivity to the outqueue size Noutq.",
        ablations.run_outqueue_ablation,
    ),
    "abl-metadata": Experiment(
        "abl-metadata",
        "ablation",
        "Cost of charging CLIC's tracking metadata against the cache.",
        ablations.run_metadata_charge_ablation,
    ),
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (raises ``KeyError`` with the known ids)."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)
