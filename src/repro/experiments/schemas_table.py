"""Figure 2: the hint types exposed by the DB2-like and MySQL-like clients.

The paper's Figure 2 tabulates every hint type, its value-domain cardinality
(for TPC-C and TPC-H) and a description.  This experiment re-derives the same
table from the schemas actually used by the synthetic clients, so the table
always reflects the code.
"""

from __future__ import annotations

from repro.trace.schema import db2_schema, mysql_schema
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload

__all__ = ["run_hint_schema_table"]


def run_hint_schema_table() -> list[dict]:
    """Rows of Figure 2: one per hint type, with domain cardinalities."""
    tpcc_db = TPCCWorkload(total_pages=2_000, seed=0).database
    tpch_db = TPCHWorkload(total_pages=2_000, seed=0).database

    db2_tpcc = db2_schema(num_pools=max(tpcc_db.pool_ids()) + 1, num_objects=tpcc_db.object_count())
    db2_tpch = db2_schema(num_pools=max(tpch_db.pool_ids()) + 1, num_objects=tpch_db.object_count())
    mysql_tpch = mysql_schema()

    rows: list[dict] = []
    tpch_by_name = {ht.name: ht for ht in db2_tpch}
    for hint_type in db2_tpcc:
        rows.append(
            {
                "dbms": "DB2",
                "hint_type": hint_type.name,
                "cardinality_tpcc": hint_type.cardinality,
                "cardinality_tpch": tpch_by_name[hint_type.name].cardinality,
                "description": hint_type.description,
            }
        )
    for hint_type in mysql_tpch:
        rows.append(
            {
                "dbms": "MySQL",
                "hint_type": hint_type.name,
                "cardinality_tpcc": None,
                "cardinality_tpch": hint_type.cardinality,
                "description": hint_type.description,
            }
        )
    return rows
