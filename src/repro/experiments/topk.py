"""Figure 9: effect of top-k hint-set filtering on the read hit ratio.

Section 5 bounds CLIC's hint-tracking space by tracking only the ``k`` most
frequent hint sets with the Space-Saving algorithm.  Figure 9 varies ``k``
and shows that a small ``k`` (10-20 for the DB2 traces, ~4 for MySQL) already
achieves nearly the hit ratio of tracking every hint set.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, trace_source
from repro.simulation.metrics import SweepResult
from repro.simulation.sweep import sweep_top_k

__all__ = ["DEFAULT_K_VALUES", "run_topk_experiment"]

#: The k values swept by default (the paper's x-axis is logarithmic in k).
DEFAULT_K_VALUES: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100)


def run_topk_experiment(
    trace_names: Sequence[str] = ("DB2_C60", "DB2_C300", "DB2_C540"),
    cache_size: int = 3_600,
    k_values: Sequence[int | None] = DEFAULT_K_VALUES,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> SweepResult:
    """CLIC read hit ratio as a function of ``k``, one series per trace.

    ``None`` in *k_values* adds the "track every hint set" reference point
    (plotted by the paper as the right edge of the x-axis).  The default
    ``cache_size`` of 3 600 pages is the scaled equivalent of the paper's
    180K-page server cache.  Each trace's k-cells run through the sweep
    engine, so ``settings.jobs > 1`` fans them out over worker processes.
    """
    sweep = SweepResult(parameter="k")
    for name in trace_names:
        source = trace_source(name, settings)
        part = sweep_top_k(
            source,
            capacity=cache_size,
            k_values=k_values,
            base_config=settings.clic_config(),
            label_for=lambda k, name=name: name,
            jobs=settings.jobs,
        )
        for label, points in part.series.items():
            sweep.series.setdefault(label, []).extend(points)
    return sweep
