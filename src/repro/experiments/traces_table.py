"""Figure 5: the trace summary table.

For every standard trace configuration this experiment reports the same
columns the paper does: DBMS, workload, database size, first-tier buffer
size, number of requests, number of distinct hint sets and number of distinct
pages — for the scaled traces this reproduction generates.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import DEFAULT_SETTINGS, ExperimentSettings, generate_trace
from repro.workloads.standard import STANDARD_TRACES

__all__ = ["run_trace_table"]


def run_trace_table(
    trace_names: Sequence[str] | None = None,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> list[dict]:
    """One row per standard trace, mirroring Figure 5's columns."""
    names = list(trace_names) if trace_names is not None else list(STANDARD_TRACES)
    rows: list[dict] = []
    for name in names:
        config = STANDARD_TRACES[name]
        trace = generate_trace(name, settings)
        summary = trace.summary()
        rows.append(
            {
                "trace": name,
                "dbms": config.dbms.upper(),
                "workload": config.workload.upper(),
                "db_size_pages": config.database_pages,
                "dbms_buffer_pages": config.buffer_pages,
                "requests": summary.requests,
                "distinct_hint_sets": summary.distinct_hint_sets,
                "distinct_pages": summary.distinct_pages,
                "paper_db_size_pages": config.paper_database_pages,
                "paper_dbms_buffer_pages": config.paper_buffer_pages,
            }
        )
    return rows
