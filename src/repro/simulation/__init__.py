"""Trace-driven simulation of the storage-server cache."""

from repro.simulation.cluster import (
    ClientAffinityRouter,
    HashRouter,
    PageRangeRouter,
    ShardedCache,
    ShardRouter,
    make_router,
)
from repro.simulation.costmodel import (
    DEVICE_PROFILES,
    CostModel,
    DeviceProfile,
    LatencyStats,
    make_device_profile,
)
from repro.simulation.engine import (
    MultiPolicySimulator,
    ParallelSweepRunner,
    PolicySpec,
    RequestSource,
    SweepCell,
)
from repro.simulation.metrics import (
    RollingMetrics,
    RollingWindow,
    SimulationResult,
    SweepPoint,
    SweepResult,
    format_table,
)
from repro.simulation.multiclient import (
    interleave_round_robin,
    partition_capacity,
    remap_pages,
)
from repro.simulation.queueing import QueueingModel, QueueingObserver, QueueingStats
from repro.simulation.request import IORequest, RequestKind, read_request, write_request
from repro.simulation.simulator import CacheSimulator, simulate
from repro.simulation.sweep import (
    compare_policies,
    run_policy,
    sweep_cache_sizes,
    sweep_policy_parameter,
    sweep_top_k,
)

__all__ = [
    "IORequest",
    "RequestKind",
    "read_request",
    "write_request",
    "CacheSimulator",
    "simulate",
    "CostModel",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "LatencyStats",
    "make_device_profile",
    "MultiPolicySimulator",
    "ParallelSweepRunner",
    "PolicySpec",
    "RequestSource",
    "SweepCell",
    "QueueingModel",
    "QueueingObserver",
    "QueueingStats",
    "RollingMetrics",
    "RollingWindow",
    "SimulationResult",
    "SweepPoint",
    "SweepResult",
    "format_table",
    "interleave_round_robin",
    "partition_capacity",
    "remap_pages",
    "ShardedCache",
    "ShardRouter",
    "HashRouter",
    "PageRangeRouter",
    "ClientAffinityRouter",
    "make_router",
    "compare_policies",
    "run_policy",
    "sweep_cache_sizes",
    "sweep_policy_parameter",
    "sweep_top_k",
]
