"""Sharded storage-server cluster simulation.

The paper evaluates one storage server shared by several DBMS clients
(Section 6.4); a production deployment serves the same traffic from a
*fleet* of cache servers with the page space partitioned across them.  This
module models that fleet as a single composite policy:

* :class:`ShardedCache` implements the :class:`~repro.cache.base.CachePolicy`
  interface by routing each request to one of S independent per-shard policy
  instances, so a cluster composes transparently with the existing engine
  (:class:`~repro.simulation.engine.MultiPolicySimulator`), the sweep
  drivers, and ``jobs=`` parallelism — a cluster is just another policy.
* Routers (:class:`HashRouter`, :class:`PageRangeRouter`,
  :class:`ClientAffinityRouter`) decide which shard owns a request.  All
  routing is a pure function of the request, so replay is deterministic:
  the same stream produces the same per-shard sub-streams in every process
  and at every ``jobs=`` count.

Determinism guarantees:

* ``shards=1`` routes every request to the single shard, which therefore
  sees exactly the request/sequence stream the unsharded policy would see —
  results are bit-identical to the wrapped policy.
* Shard capacities come from
  :func:`~repro.simulation.multiclient.partition_capacity`, so the cluster's
  total capacity always equals the unified cache it is compared against
  (generalizing the paper's Figure 11 static partitioning).

The cluster is registered in the policy registry as ``"SHARDED"``; sweep
cells describe it with plain picklable kwargs::

    PolicySpec(label="LRU x4", name="SHARDED", capacity=3_600,
               kwargs={"policy": "LRU", "shards": 4, "router": "hash"})
"""

from __future__ import annotations

import abc
import copy
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

try:  # optional acceleration for the columnar replay path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.cache.base import AccessOutcome, AccessOutcomeBatch, CachePolicy
from repro.cache.opt import OPTPolicy
from repro.simulation.multiclient import partition_capacity

if TYPE_CHECKING:  # imported for type annotations only
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = [
    "ShardRouter",
    "HashRouter",
    "PageRangeRouter",
    "ClientAffinityRouter",
    "ROUTER_NAMES",
    "make_router",
    "ShardedCache",
]


def _validate_shards(shards: int) -> int:
    if not isinstance(shards, int):
        raise TypeError(f"shards must be an int, got {type(shards).__name__}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


class ShardRouter(abc.ABC):
    """Maps each request to the shard that owns it.

    Routing must be a pure function of the request (never of arrival order
    or any mutable replay state), so that the same stream shards identically
    in every worker process and at every ``jobs=`` count.
    """

    #: Short name used by :func:`make_router` and in experiment output.
    name: str = "base"

    def __init__(self, shards: int):
        self.shards = _validate_shards(shards)

    @abc.abstractmethod
    def route(self, request: IORequest) -> int:
        """Return the shard index in ``range(self.shards)`` for *request*."""

    def route_batch(self, chunk: "ColumnarChunk") -> Any:
        """Vector route: one shard index per request of *chunk* (int64).

        Must agree element-for-element with :meth:`route` applied to the
        chunk's requests in order.  The default implementation *is* that
        scalar loop; subclasses override it where the routing function
        vectorises.
        """
        route = self.route
        return _np.fromiter(
            (route(request) for request in chunk.requests()),
            _np.int64,
            len(chunk),
        )

    def reset(self) -> None:
        """Drop any per-stream routing state (for stateless routers: no-op).

        :meth:`ShardedCache.reset` calls this so a reset cluster routes
        exactly like a freshly built one.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shards={self.shards})"


def _mix_page(page: int) -> int:
    """Deterministic 64-bit integer mix (murmur3 fmix64 finalizer).

    Plain ``page % shards`` would alias the strided access patterns of the
    synthetic workloads onto single shards; the mix spreads any page-id
    structure uniformly.  Pure arithmetic — stable across processes and
    Python versions (unlike ``hash`` for strings).
    """
    page &= 0xFFFFFFFFFFFFFFFF
    page = ((page ^ (page >> 33)) * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    page = ((page ^ (page >> 33)) * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    return page ^ (page >> 33)


class HashRouter(ShardRouter):
    """Uniform page-hash routing: shard = mix(page) mod S."""

    name = "hash"

    def route(self, request: IORequest) -> int:
        return _mix_page(request.page) % self.shards

    def route_batch(self, chunk: "ColumnarChunk") -> Any:
        # The wrapping uint64 pipeline is exact — identical to the scalar
        # _mix_page — so vector and scalar routing always agree.
        pages = chunk.page.astype(_np.uint64)
        pages ^= pages >> _np.uint64(33)
        pages *= _np.uint64(0xFF51AFD7ED558CCD)
        pages ^= pages >> _np.uint64(33)
        pages *= _np.uint64(0xC4CEB9FE1A85EC53)
        pages ^= pages >> _np.uint64(33)
        return (pages % _np.uint64(self.shards)).astype(_np.int64)


class PageRangeRouter(ShardRouter):
    """Contiguous page-range routing: shard i owns pages [i*span/S, (i+1)*span/S).

    ``span`` is the total page-id space (pages 0..span-1); ids outside it
    clamp to the edge shards so a mis-estimated span degrades to imbalance
    instead of an error.  Range routing preserves spatial locality per shard
    — and concentrates skewed workloads, which is exactly the imbalance the
    cluster experiment measures.
    """

    name = "range"

    def __init__(self, shards: int, span: int):
        super().__init__(shards)
        if span < 1:
            raise ValueError(f"span must be >= 1, got {span}")
        self.span = span

    def route(self, request: IORequest) -> int:
        shard = request.page * self.shards // self.span
        if shard < 0:
            return 0
        if shard >= self.shards:
            return self.shards - 1
        return shard

    def route_batch(self, chunk: "ColumnarChunk") -> Any:
        page = chunk.page
        if len(page) and int(page.max()) > (2**63 - 1) // self.shards:
            # page * shards would overflow an int64 lane; the scalar loop
            # carries arbitrary-precision Python ints.
            return ShardRouter.route_batch(self, chunk)
        # numpy's int64 floor division rounds toward -inf exactly like
        # Python's //, so clamping matches the scalar branches.
        return _np.clip(page * self.shards // self.span, 0, self.shards - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageRangeRouter(shards={self.shards}, span={self.span})"


class ClientAffinityRouter(ShardRouter):
    """Route every request of a client to one shard.

    Clients are assigned shards round-robin in order of first appearance, so
    with as many shards as clients every client gets a private cache — the
    paper's Figure 11 static partitioning rebuilt from cluster parts; with
    fewer shards clients share, with more some shards idle, and both show up
    in the load-imbalance statistic.  First-appearance order is a property
    of the stream (not of scheduling), so routing is deterministic in every
    process and at every ``jobs=`` count.
    """

    name = "client"

    def __init__(self, shards: int):
        super().__init__(shards)
        self._assignments: dict[str, int] = {}

    def route(self, request: IORequest) -> int:
        client_id = request.client_id
        shard = self._assignments.get(client_id)
        if shard is None:
            shard = len(self._assignments) % self.shards
            self._assignments[client_id] = shard
        return shard

    def route_batch(self, chunk: "ColumnarChunk") -> Any:
        # Same first-appearance round-robin as route(), driven from the
        # client-index column (no request materialisation).
        assignments = self._assignments
        clients = chunk.clients
        shards = self.shards
        out = _np.empty(len(chunk), _np.int64)
        for i, cidx in enumerate(chunk.client_idx.tolist()):
            client_id = clients[cidx]
            shard = assignments.get(client_id)
            if shard is None:
                shard = len(assignments) % shards
                assignments[client_id] = shard
            out[i] = shard
        return out

    def reset(self) -> None:
        self._assignments.clear()


#: Router names accepted by :func:`make_router` (and the cluster experiment).
ROUTER_NAMES: tuple[str, ...] = ("hash", "range", "client")


def make_router(
    router: str | ShardRouter, shards: int, page_span: int | None = None
) -> ShardRouter:
    """Build a router from a name (``"hash"``, ``"range"``, ``"client"``).

    A ready-made :class:`ShardRouter` instance passes through unchanged
    (its shard count must match).  ``page_span`` is required by ``"range"``.
    """
    if isinstance(router, ShardRouter):
        if router.shards != shards:
            raise ValueError(
                f"router is built for {router.shards} shards, cluster has {shards}"
            )
        return router
    if router == "hash":
        return HashRouter(shards)
    if router == "client":
        return ClientAffinityRouter(shards)
    if router == "range":
        if page_span is None:
            raise ValueError("PageRangeRouter needs page_span (total page-id space)")
        return PageRangeRouter(shards, span=page_span)
    raise ValueError(f"unknown router {router!r}; available: {ROUTER_NAMES}")


class ShardedCache(CachePolicy):
    """S independent per-shard policies behind one :class:`CachePolicy` facade.

    Each request is routed to exactly one shard, which processes it with the
    request's original (global) sequence number; the other shards never see
    it.  The facade returns the routed shard's :class:`AccessOutcome`
    unchanged, so one outcome stream describes the whole cluster; the
    per-shard breakdown surfaced as ``per_shard`` on results is rebuilt by
    the replay loop's shard observer (:class:`~repro.simulation.observers
    .ShardStatsObserver`), which routes each outcome with the cluster's own
    router.

    The total ``capacity`` is split across shards with
    :func:`~repro.simulation.multiclient.partition_capacity` (any remainder
    goes to the first shards), so a cluster always competes against a
    unified cache of the same total size.

    Offline support: a cluster of OPT shards is itself offline.  The shared
    future-read index is global (page -> read positions in global sequence
    numbers), so every shard adopts the same index and consults only the
    pages routed to it.
    """

    hint_aware = False  # refined per instance from the wrapped policy

    def __init__(
        self,
        capacity: int,
        policy: str = "LRU",
        shards: int = 1,
        router: str | ShardRouter = "hash",
        policy_kwargs: Mapping[str, object] | None = None,
        page_span: int | None = None,
    ):
        from repro.cache.registry import create_policy

        super().__init__(capacity)
        shards = _validate_shards(shards)
        self._router = make_router(router, shards, page_span=page_span)
        kwargs = dict(policy_kwargs or {})
        self._shards: list[CachePolicy] = [
            create_policy(policy, capacity=size, **kwargs)
            for size in partition_capacity(capacity, shards)
        ]
        inner = self._shards[0]
        self.name = f"{inner.name}x{shards}[{self._router.name}]"
        self.hint_aware = inner.hint_aware

    # ------------------------------------------------------------------ API
    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def shards(self) -> list[CachePolicy]:
        """The per-shard policy instances, in shard order."""
        return list(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def offline(self) -> bool:  # type: ignore[override]
        return any(shard.offline for shard in self._shards)

    def access(self, request: IORequest, seq: int) -> AccessOutcome:
        return self._shards[self._router.route(request)].access(request, seq)

    def batch_access(self, chunk: "ColumnarChunk") -> AccessOutcomeBatch:
        """Batch kernel: route the whole chunk, then batch per shard.

        Each shard receives its requests as a gathered sub-chunk in original
        order, carrying the original (global) sequence numbers — exactly the
        sub-stream the scalar loop would feed it — and the per-shard batches
        are scattered back into request order.  When any shard policy lacks
        a batch fast path the whole cluster falls back to the scalar-loop
        default (per-shard gathering would only add overhead).
        """
        base = CachePolicy.batch_access
        if any(type(shard).batch_access is base for shard in self._shards):
            return base(self, chunk)
        shard_ids = self._router.route_batch(chunk)
        n = len(chunk)
        hit = _np.zeros(n, _np.bool_)
        admitted = _np.zeros(n, _np.bool_)
        bypassed = _np.zeros(n, _np.bool_)
        counts = _np.zeros(n, _np.int64)
        evicting: list[tuple[Any, AccessOutcomeBatch]] = []
        for s, shard in enumerate(self._shards):
            idx = _np.flatnonzero(shard_ids == s)
            if not idx.size:
                continue
            batch = shard.batch_access(chunk.take(idx))
            hit[idx] = batch.hit
            admitted[idx] = batch.admitted
            bypassed[idx] = batch.bypassed
            counts[idx] = _np.diff(batch.evicted_offsets)
            if batch.eviction_count:
                evicting.append((idx, batch))
        offsets = _np.zeros(n + 1, _np.int64)
        _np.cumsum(counts, out=offsets[1:])
        pages = _np.zeros(int(offsets[-1]), _np.int64)
        for idx, batch in evicting:
            sub_offsets = batch.evicted_offsets
            sub_counts = _np.diff(sub_offsets)
            for local in _np.flatnonzero(sub_counts).tolist():
                request_i = int(idx[local])
                start = int(offsets[request_i])
                sub_start = int(sub_offsets[local])
                span = int(sub_counts[local])
                pages[start : start + span] = batch.evicted_pages[
                    sub_start : sub_start + span
                ]
        return AccessOutcomeBatch(hit, admitted, bypassed, pages, offsets)

    def contains(self, page: int) -> bool:
        return any(shard.contains(page) for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def cached_pages(self) -> Iterator[int]:
        for shard in self._shards:
            yield from shard.cached_pages()

    def reset(self) -> None:
        super().reset()
        for shard in self._shards:
            shard.reset()
        self._router.reset()

    # --------------------------------------------------------- snapshotting
    def snapshot(self) -> Mapping[str, object]:
        """Delegate to the shards (each applies its own snapshot policy,
        e.g. OPT shards carry the shared future-read index by reference)."""
        return {
            "shards": tuple(shard.snapshot() for shard in self._shards),
            "router": copy.deepcopy(self._router),
        }

    def restore(self, state: Mapping[str, object]) -> None:
        for shard, shard_state in zip(self._shards, state["shards"]):
            shard.restore(shard_state)
        self._router = copy.deepcopy(state["router"])

    # ------------------------------------------------------- offline support
    def prepare(self, requests: Sequence[IORequest], start_seq: int = 0) -> None:
        """Hand offline shards the full stream (global sequence numbering).

        Each shard only ever looks up the pages routed to it, so sharing the
        full-stream index is equivalent to indexing its sub-stream.  Shards
        supporting ``adopt_read_index`` (OPT) share **one** index built in a
        single pass; only offline shards without that hook pay their own
        ``prepare`` pass over the stream.
        """
        shared_index = None
        for shard in self._shards:
            if not shard.offline:
                continue
            if hasattr(shard, "adopt_read_index"):
                if shared_index is None:
                    shared_index = self.build_read_index(requests, start_seq)
                shard.adopt_read_index(shared_index)
            else:
                shard.prepare(requests, start_seq)

    #: The global future-read index builder.  Deliberately the *same
    #: function object* as ``OPTPolicy.build_read_index`` so the engine's
    #: shared-index cache (keyed by builder identity) hands one index to a
    #: unified OPT and every OPT-backed cluster in the same pass.
    build_read_index = staticmethod(OPTPolicy.build_read_index)

    def adopt_read_index(self, read_positions: dict[int, list[int]]) -> None:
        """Forward a pre-built future-read index to the offline shards."""
        for shard in self._shards:
            if not shard.offline:
                continue
            adopt = getattr(shard, "adopt_read_index", None)
            if adopt is None:
                raise NotImplementedError(
                    f"offline shard policy {shard.name!r} does not support "
                    "adopt_read_index; replay it through prepare() instead"
                )
            adopt(read_positions)
