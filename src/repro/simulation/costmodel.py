"""Service-time cost model: from hit ratios to device-level latency.

The paper's argument for CLIC is ultimately about *service time*: a better
second-tier hit ratio means fewer device reads, and the storage server
answers faster (Section 6 reports hit ratios as the proxy).  This module
closes that gap by pricing every replayed request against a pluggable
:class:`DeviceProfile` and accumulating the result into
:class:`LatencyStats`, so any sweep can report modeled read latency and
throughput next to the hit ratio it already measures.

The pricing rules (per request):

* **read hit** — served from the server cache at DRAM speed
  (``cache_hit_us``);
* **read miss** — a device read: fixed overhead (controller latency, and
  for rotating media the average rotational delay) plus the per-page
  transfer, plus — for seek devices (``seek_us > 0``) — a seek whose cost
  grows with the square root of the head travel distance (the classic
  seek-curve shape).  Seek pricing makes HDD misses *request-dependent*:
  the accumulator tracks the head position left by the previous device
  access;
* **write** — under ``write-through`` the device write is on the critical
  path (``write_us``, plus the seek on seek devices, which also moves the
  head); under ``write-back`` the write is absorbed by the server cache at
  ``cache_hit_us`` and destaging happens off the critical path (not
  modeled).

Read latencies additionally feed a fixed-bucket geometric histogram, from
which :class:`LatencyStats` reports p50/p99 without storing per-request
samples; histograms merge by bucket-wise addition, so per-shard and
per-worker results compose deterministically.

Everything here is pure arithmetic over the request stream — no clocks, no
randomness — so cost-model results are bit-identical across processes and
``jobs=`` counts, exactly like the hit-ratio accounting they extend.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.cache.base import CacheStats
from repro.simulation.request import RequestKind

if TYPE_CHECKING:  # imported for type annotations only
    from repro.simulation.cluster import ShardRouter
    from repro.simulation.request import IORequest

__all__ = [
    "DeviceProfile",
    "DEVICE_PROFILES",
    "make_device_profile",
    "WRITE_POLICIES",
    "LatencyStats",
    "CostModel",
]

#: Write-handling variants accepted by :class:`CostModel`.
WRITE_POLICIES: tuple[str, ...] = ("write-through", "write-back")

#: Expected value of ``sqrt(|X - Y|)`` for X, Y uniform on [0, 1] — the mean
#: sqrt-seek fraction between two independent random positions.  Used to
#: price a miss when no head position is known (the first device access, and
#: the analytic :meth:`CostModel.latency_from_stats` derivation).
_MEAN_RANDOM_SEEK_FRACTION = 8.0 / 15.0

# ----------------------------------------------------------------- histogram
#: Geometric bucket upper bounds (microseconds) shared by every histogram:
#: an exact-zero bucket plus 64 buckets from 0.5us growing by 1.3x (~7.6s
#: at the top), so one fixed bucketisation covers zero queueing delay and
#: NVMe hits through worst-case HDD seeks.  Percentiles report the upper
#: bound of the bucket the quantile falls in; the leading 0.0 bound keeps
#: that exact for zero-latency samples (an idle queue's delay is 0.0, not
#: "somewhere under 0.5us").
HISTOGRAM_BUCKET_BOUNDS_US: tuple[float, ...] = (0.0,) + tuple(
    0.5 * 1.3**index for index in range(64)
)
_LAST_BUCKET = len(HISTOGRAM_BUCKET_BOUNDS_US) - 1


def _bucket_index(latency_us: float) -> int:
    """Index of the first bucket whose upper bound is >= *latency_us*."""
    return min(bisect_left(HISTOGRAM_BUCKET_BOUNDS_US, latency_us), _LAST_BUCKET)


@dataclass
class LatencyStats:
    """Modeled service-time accounting for one simulation run of one policy.

    ``read_histogram`` holds per-bucket read-latency counts over the shared
    geometric bucketisation (:data:`HISTOGRAM_BUCKET_BOUNDS_US`); the
    percentile accessors resolve quantiles against it.  All fields are plain
    sums/counts, so :meth:`merge` composes shard- or worker-level stats into
    exactly the stats a single pass would have produced.
    """

    read_count: int = 0
    total_read_us: float = 0.0
    write_count: int = 0
    total_write_us: float = 0.0
    read_histogram: list[int] = field(
        default_factory=lambda: [0] * len(HISTOGRAM_BUCKET_BOUNDS_US)
    )

    # ------------------------------------------------------------- accessors
    @property
    def request_count(self) -> int:
        return self.read_count + self.write_count

    @property
    def mean_read_us(self) -> float:
        """Mean modeled read latency in microseconds (0.0 if no reads)."""
        if self.read_count == 0:
            return 0.0
        return self.total_read_us / self.read_count

    @property
    def total_us(self) -> float:
        """Total modeled service time (reads + writes) in microseconds."""
        return self.total_read_us + self.total_write_us

    @property
    def busy_seconds(self) -> float:
        """Total modeled service time in seconds: the *server's* busy time
        (cache-hit service plus device accesses), not device utilization."""
        return self.total_us / 1e6

    @property
    def throughput_rps(self) -> float:
        """Modeled requests/second of one server serving this run serially."""
        busy = self.busy_seconds
        if busy <= 0.0:
            return 0.0
        return self.request_count / busy

    def read_percentile(self, quantile: float) -> float:
        """Read-latency quantile (e.g. ``0.99``) from the fixed-bucket histogram.

        Returns the upper bound of the bucket the quantile falls in — an
        upper estimate that is exact whenever a pricing class maps to a
        single bucket.  0.0 if no reads were recorded.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if self.read_count == 0:
            return 0.0
        rank = quantile * self.read_count
        cumulative = 0
        for index, count in enumerate(self.read_histogram):
            cumulative += count
            if cumulative >= rank and count:
                return HISTOGRAM_BUCKET_BOUNDS_US[index]
        return HISTOGRAM_BUCKET_BOUNDS_US[_LAST_BUCKET]

    @property
    def p50_read_us(self) -> float:
        return self.read_percentile(0.50)

    @property
    def p99_read_us(self) -> float:
        return self.read_percentile(0.99)

    # ------------------------------------------------------------ composition
    @classmethod
    def merge_all(cls, stats: "Sequence[LatencyStats]") -> "LatencyStats":
        """Fold several stats into one aggregate (fresh object, inputs kept)."""
        merged = cls()
        for item in stats:
            merged = merged.merge(item)
        return merged

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Return a new :class:`LatencyStats` aggregating *self* and *other*."""
        if len(self.read_histogram) != len(other.read_histogram):
            raise ValueError(
                "cannot merge LatencyStats with different histogram sizes "
                f"({len(self.read_histogram)} vs {len(other.read_histogram)})"
            )
        return LatencyStats(
            read_count=self.read_count + other.read_count,
            total_read_us=self.total_read_us + other.total_read_us,
            write_count=self.write_count + other.write_count,
            total_write_us=self.total_write_us + other.total_write_us,
            read_histogram=[
                a + b for a, b in zip(self.read_histogram, other.read_histogram)
            ],
        )

    def record_read(self, latency_us: float, count: int = 1) -> None:
        """Record *count* reads that each took *latency_us*."""
        self.read_count += count
        self.total_read_us += latency_us * count
        self.read_histogram[_bucket_index(latency_us)] += count

    def record_write(self, latency_us: float, count: int = 1) -> None:
        """Record *count* writes that each took *latency_us*."""
        self.write_count += count
        self.total_write_us += latency_us * count

    def report_columns(self) -> dict:
        """The modeled-latency columns every row-level surface emits.

        Shared by :meth:`as_dict`, sweep rows and the latency experiment,
        so a renamed or added column changes everywhere at once.
        """
        return {
            "mean_read_latency_us": self.mean_read_us,
            "p50_read_latency_us": self.p50_read_us,
            "p99_read_latency_us": self.p99_read_us,
            "modeled_throughput_rps": self.throughput_rps,
        }

    def as_dict(self) -> dict:
        row = self.report_columns()
        row["total_read_latency_us"] = self.total_read_us
        row["total_write_latency_us"] = self.total_write_us
        return row


# ------------------------------------------------------------ device profiles
@dataclass(frozen=True)
class DeviceProfile:
    """Timing parameters of one storage device, in microseconds.

    ``seek_us`` is the full-stroke seek time; 0 makes the device
    position-independent (SSD/NVMe).  ``seek_span`` is the page-id span the
    stroke covers: a seek over ``d`` pages costs
    ``seek_us * sqrt(min(d, seek_span) / seek_span)``.  Custom devices are
    plain instances of this class (or :func:`make_device_profile` with
    overrides on a stock profile).
    """

    name: str
    cache_hit_us: float
    read_base_us: float
    read_transfer_us: float
    write_us: float
    seek_us: float = 0.0
    seek_span: int = 1 << 22  # ~32 GiB of 8 KiB pages

    def __post_init__(self) -> None:
        for field_name in (
            "cache_hit_us",
            "read_base_us",
            "read_transfer_us",
            "write_us",
            "seek_us",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")
        if self.seek_span < 1:
            raise ValueError(f"seek_span must be >= 1, got {self.seek_span}")

    # --------------------------------------------------------------- pricing
    @property
    def position_dependent(self) -> bool:
        """Whether miss cost depends on the previous device access (HDD)."""
        return self.seek_us > 0.0

    def seek_cost_us(self, distance: int) -> float:
        """Seek time for a head travel of *distance* pages (sqrt seek curve)."""
        if self.seek_us == 0.0 or distance <= 0:
            return 0.0
        fraction = min(distance, self.seek_span) / self.seek_span
        return self.seek_us * math.sqrt(fraction)

    @property
    def nominal_seek_us(self) -> float:
        """Expected seek between two independent random positions."""
        return self.seek_us * _MEAN_RANDOM_SEEK_FRACTION

    @property
    def nominal_read_miss_us(self) -> float:
        """Position-free miss cost: overhead + transfer + expected random seek.

        Exactly the per-request miss cost for position-independent devices;
        the analytic stand-in for seek devices (used for per-shard
        breakdowns and for the first device access of a replay).
        """
        return self.read_base_us + self.read_transfer_us + self.nominal_seek_us


#: Stock profiles.  The numbers are nominal datasheet-scale figures chosen
#: for plausible *ratios* (DRAM << NVMe << SSD << HDD), not measurements of
#: any specific part: 7.2k-rpm HDD (~8 ms full-stroke seek, 4.17 ms average
#: rotational delay, 8 KiB page at ~150 MB/s), SATA-class SSD, and a
#: PCIe-class NVMe drive.
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    "hdd": DeviceProfile(
        name="hdd",
        cache_hit_us=5.0,
        read_base_us=4170.0,
        read_transfer_us=55.0,
        write_us=4225.0,
        seek_us=8000.0,
    ),
    "ssd": DeviceProfile(
        name="ssd",
        cache_hit_us=5.0,
        read_base_us=80.0,
        read_transfer_us=10.0,
        write_us=90.0,
    ),
    "nvme": DeviceProfile(
        name="nvme",
        cache_hit_us=5.0,
        read_base_us=12.0,
        read_transfer_us=3.0,
        write_us=15.0,
    ),
}


def make_device_profile(device: str | DeviceProfile, **overrides: object) -> DeviceProfile:
    """Resolve a device name (or pass through a profile), applying overrides.

    ``make_device_profile("ssd", read_base_us=60.0)`` is the configurable
    "custom profile" path: any :class:`DeviceProfile` field can be replaced
    on a stock profile (the result keeps the overridden values and renames
    to ``"custom"`` unless a ``name`` override is given).
    """
    if isinstance(device, DeviceProfile):
        profile = device
    else:
        try:
            profile = DEVICE_PROFILES[device]
        except KeyError:
            raise ValueError(
                f"unknown device {device!r}; available: {sorted(DEVICE_PROFILES)}"
            ) from None
    if overrides:
        overrides.setdefault("name", "custom")
        profile = replace(profile, **overrides)
    return profile


# ------------------------------------------------------------------ the model
class CostModel:
    """Prices replayed requests against one device profile.

    Picklable (plain attributes only), so a sweep's cost model ships to
    ``jobs > 1`` worker processes alongside the cells.  ``page_span``
    overrides the profile's ``seek_span`` with the workload's actual page-id
    space, so HDD seeks scale with the modeled database size.
    """

    def __init__(
        self,
        device: str | DeviceProfile = "ssd",
        write_policy: str = "write-through",
        page_span: int | None = None,
    ):
        if write_policy not in WRITE_POLICIES:
            raise ValueError(
                f"unknown write policy {write_policy!r}; available: {WRITE_POLICIES}"
            )
        profile = make_device_profile(device)
        if page_span is not None:
            profile = replace(profile, seek_span=page_span)
        self.profile = profile
        self.write_policy = write_policy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostModel(device={self.profile.name!r}, write_policy={self.write_policy!r})"

    @property
    def write_cost_us(self) -> float:
        """Critical-path cost of one write, before any seek component."""
        if self.write_policy == "write-back":
            return self.profile.cache_hit_us
        return self.profile.write_us

    @property
    def _writes_touch_device(self) -> bool:
        return self.write_policy == "write-through"

    def accumulator(self) -> "CostAccumulator":
        """A fresh per-policy accumulator for one replay pass."""
        return CostAccumulator(self)

    def accumulator_for(self, policy: object) -> "CostAccumulator | ShardedCostAccumulator":
        """The right accumulator for *policy*: per-shard heads for clusters.

        A sharded cluster on a seek device is a fleet of independently
        positioned devices; pricing its stream through one accumulator
        would walk a single head across all shards.  Policies exposing a
        ``router`` and ``shard_count`` (:class:`~repro.simulation.cluster
        .ShardedCache`) therefore get one sub-accumulator (head) per shard,
        with requests routed exactly as the cluster routes them.  Position-
        independent devices keep the plain accumulator — per-shard pricing
        is then derived analytically from the per-shard counts, which is
        exact.
        """
        router = getattr(policy, "router", None)
        if (
            self.profile.position_dependent
            and router is not None
            and hasattr(router, "route")
            and getattr(policy, "shard_count", 0) >= 1
        ):
            # Also for shards=1: the single sub-accumulator prices exactly
            # like the wrapped policy, preserving the cluster layer's
            # shards=1 bit-identity on every reporting surface.
            return ShardedCostAccumulator(self, router, policy.shard_count)
        return CostAccumulator(self)

    # ------------------------------------------------------------- derivation
    def latency_from_stats(self, stats: CacheStats) -> LatencyStats:
        """Analytically price a finished run from its hit/miss counts.

        For position-independent devices this is *exactly* what the
        per-request accumulator produces (every pricing class has one
        cost), which is what makes re-pricing a finished replay against
        another such device free.  For seek devices it prices every device
        access at the expected random seek
        (:attr:`DeviceProfile.nominal_read_miss_us`) — a position-free
        approximation; per-request accounting (with per-shard heads for
        clusters, see :meth:`accumulator_for`) is the exact path.
        """
        profile = self.profile
        latency = LatencyStats()
        read_misses = stats.read_requests - stats.read_hits
        if stats.read_hits:
            latency.record_read(profile.cache_hit_us, stats.read_hits)
        if read_misses:
            latency.record_read(profile.nominal_read_miss_us, read_misses)
        if stats.write_requests:
            write_us = self.write_cost_us
            if self._writes_touch_device:
                write_us += profile.nominal_seek_us
            latency.record_write(write_us, stats.write_requests)
        return latency

    def shard_latencies(
        self, per_shard: Iterable[CacheStats]
    ) -> tuple[LatencyStats, ...]:
        """Per-shard latency breakdown (each shard its own device)."""
        return tuple(self.latency_from_stats(stats) for stats in per_shard)


class CostAccumulator:
    """Per-policy, per-run service-time accounting (one replay pass).

    The engine calls :meth:`charge` once per (request, hit) outcome, in
    stream order; :meth:`finalize` folds the constant-cost pricing classes
    into the histogram and returns the run's :class:`LatencyStats`.  Only
    seek devices pay per-request arithmetic beyond class counting — the
    head-position walk that makes HDD misses distance-dependent.
    """

    __slots__ = (
        "_model",
        "_read_kind",
        "_hit_us",
        "_miss_const_us",
        "_write_const_us",
        "_profile",
        "_writes_seek",
        "_position",
        "_read_hits",
        "_read_misses",
        "_writes",
        "_latency",
    )

    def __init__(self, model: CostModel):
        self._model = model
        self._read_kind = RequestKind.READ
        profile = model.profile
        self._profile = profile
        self._hit_us = profile.cache_hit_us
        # Position-independent devices price every miss identically, so the
        # hot path only counts classes; None switches on the per-request
        # seek-aware path.
        self._miss_const_us = (
            None if profile.position_dependent else profile.nominal_read_miss_us
        )
        self._writes_seek = profile.position_dependent and model._writes_touch_device
        self._write_const_us = model.write_cost_us
        self._position: int | None = None
        self._read_hits = 0
        self._read_misses = 0
        self._writes = 0
        self._latency = LatencyStats()

    def _seek_to(self, page: int) -> float:
        """Seek cost of moving the head to *page* (and leave it there).

        The first device access of a run has no known head position and is
        charged the expected random seek.
        """
        if self._position is None:
            seek_us = self._profile.nominal_seek_us
        else:
            seek_us = self._profile.seek_cost_us(abs(page - self._position))
        self._position = page
        return seek_us

    def charge(self, request: "IORequest", hit: bool) -> None:
        """Price one replayed request given its hit/miss outcome."""
        if request.kind is self._read_kind:
            if hit:
                self._read_hits += 1
            elif self._miss_const_us is not None:
                self._read_misses += 1
            else:
                profile = self._profile
                self._latency.record_read(
                    profile.read_base_us
                    + profile.read_transfer_us
                    + self._seek_to(request.page)
                )
        else:
            self._writes += 1
            if self._writes_seek:
                self._latency.total_write_us += self._seek_to(request.page)
        return None

    @property
    def class_counting(self) -> bool:
        """Whether pricing is purely by outcome class (position-independent
        device): :meth:`charge` only bumps counters, so batch consumers may
        fold whole-chunk counts via :meth:`charge_counts` instead.  False on
        seek-aware devices, whose pricing depends on per-request order."""
        return self._miss_const_us is not None

    def charge_counts(self, read_hits: int, read_misses: int, writes: int) -> None:
        """Batch equivalent of *n* :meth:`charge` calls on a class-counting
        accumulator.  Only valid when :attr:`class_counting` is true."""
        self._read_hits += read_hits
        self._read_misses += read_misses
        self._writes += writes

    def price(self, request: "IORequest", hit: bool) -> float:
        """The service time (us) :meth:`charge` would record for this event.

        Same pricing rules, same seek-head walk (seek devices advance the
        head exactly as :meth:`charge` does), but nothing is accumulated —
        the caller owns the sample.  The queueing layer uses this to feed
        per-request service times into its event clock; interleaving
        ``price`` and ``charge`` calls on one accumulator would double-walk
        the head, so each consumer owns its accumulator.
        """
        if request.kind is self._read_kind:
            if hit:
                return self._hit_us
            if self._miss_const_us is not None:
                return self._miss_const_us
            profile = self._profile
            return (
                profile.read_base_us
                + profile.read_transfer_us
                + self._seek_to(request.page)
            )
        if self._writes_seek:
            return self._write_const_us + self._seek_to(request.page)
        return self._write_const_us

    def finalize(self) -> LatencyStats:
        """Fold the class counters into the histogram and return the stats."""
        latency = self._latency
        if self._read_hits:
            latency.record_read(self._hit_us, self._read_hits)
            self._read_hits = 0
        if self._read_misses:
            latency.record_read(self._miss_const_us, self._read_misses)
            self._read_misses = 0
        if self._writes:
            latency.record_write(self._write_const_us, self._writes)
            self._writes = 0
        return latency

    def shard_latencies(self) -> tuple[LatencyStats, ...]:
        """Per-shard breakdown; empty for this single-device accumulator."""
        return ()


class ShardedCostAccumulator:
    """Seek-aware accounting for a sharded cluster: one head per shard.

    Each request is routed with the cluster's own router (a pure function
    of the request — and :meth:`charge` runs after the facade's ``access``,
    so stateful routers have already made their assignment) to a per-shard
    :class:`CostAccumulator`, keeping every shard's seek head independent.
    :meth:`finalize` returns the merged fleet view — which is therefore
    *exactly* the sum of the per-shard breakdowns exposed by
    :meth:`shard_latencies` — priced with the same per-request seek walk as
    an unsharded policy, so unified-vs-cluster comparisons measure the
    topology, not the pricing method.
    """

    __slots__ = ("_router", "_shards", "_finalized")

    def __init__(self, model: CostModel, router: "ShardRouter", shard_count: int):
        self._router = router
        self._shards = [CostAccumulator(model) for _ in range(shard_count)]
        self._finalized: tuple[LatencyStats, ...] | None = None

    def charge(self, request: "IORequest", hit: bool) -> None:
        self._shards[self._router.route(request)].charge(request, hit)

    def finalize(self) -> LatencyStats:
        self._finalized = tuple(shard.finalize() for shard in self._shards)
        return LatencyStats.merge_all(self._finalized)

    def shard_latencies(self) -> tuple[LatencyStats, ...]:
        """Per-shard latency (exact, per-request); call after :meth:`finalize`."""
        if self._finalized is None:
            raise RuntimeError("finalize() must run before shard_latencies()")
        return self._finalized
