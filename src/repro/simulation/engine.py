"""Shared-replay simulation engine: one trace pass, many policies.

Every figure in the paper's evaluation is a family of curves produced by
replaying the same trace once per (policy, cache-size) cell.  The seed
implementation walked the request stream once per cell, strictly serially —
a 5-policy x 8-size sweep iterated the trace 40 times.  This module provides
the two building blocks that every sweep now runs through:

* :class:`MultiPolicySimulator` iterates the request stream **once** and
  feeds each request to N independent policies, amortising trace iteration,
  per-client statistics bookkeeping and offline preparation (OPT's
  future-read index is built once and shared by every OPT instance) across
  the policies.
* :class:`ParallelSweepRunner` fans (policy, parameter) cells out over a
  ``concurrent.futures.ProcessPoolExecutor`` and merges the results back
  into a :class:`~repro.simulation.metrics.SweepResult` in deterministic
  cell order.  With the default ``jobs=1`` everything runs in-process and
  the output is identical to the serial path, bit for bit; cells that share
  a request stream are then folded into a single shared replay pass.

Policies are described by :class:`PolicySpec` (a registry name plus
constructor arguments, or an arbitrary zero-argument factory) so that cells
can be pickled to worker processes; specs whose factories cannot be pickled
make the runner fall back to the serial path with a warning rather than
fail.

Request streams come in two shapes, unified by the *request-source
protocol*:

* plain sequences (lists/tuples of :class:`IORequest`), replayed by slicing;
* **lazy sources** — any object with a re-iterable ``iter_requests()``
  method, e.g. :class:`repro.trace.cache.TraceSpec` or
  :class:`repro.trace.binio.StreamedTrace` — replayed chunk-by-chunk with
  bounded memory (the full request list is never materialized).  A lazy
  source that is also cheaply picklable is what ``jobs > 1`` ships to worker
  processes: each worker opens the trace itself instead of receiving
  millions of pickled request objects.
"""

from __future__ import annotations

import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import islice
from math import gcd
from typing import Callable, Iterable, Iterator, Mapping, Protocol, Sequence

try:  # optional acceleration; the object path is bit-identical
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.cache.base import CachePolicy, CacheStats
from repro.cache.registry import create_policy
from repro.simulation.costmodel import CostModel
from repro.simulation.metrics import (
    SimulationResult,
    SweepResult,
    validate_rolling_window,
)
from repro.simulation.observers import (
    CostObserver,
    ReplayObserver,
    RollingObserver,
    StatsObserver,
    shard_observer_for,
)
from repro.simulation.queueing import QueueingModel
from repro.simulation.request import IORequest, RequestKind
from repro.trace.columnar import ColumnarChunk, columnar_chunks

__all__ = [
    "MultiPolicySimulator",
    "PolicySpec",
    "SweepCell",
    "ParallelSweepRunner",
    "RequestSource",
]

class LazyRequestSource(Protocol):
    """A re-iterable request stream the engine can replay without
    materializing it (e.g. :class:`repro.trace.cache.TraceSpec` or
    :class:`repro.trace.binio.StreamedTrace`)."""

    def iter_requests(self) -> Iterator[IORequest]: ...


#: Anything the engine can replay: a request sequence or a lazy source.
RequestSource = Sequence[IORequest] | LazyRequestSource


def _as_request_source(requests: Iterable[IORequest]) -> RequestSource:
    """Normalize to a sequence or a re-iterable lazy source.

    One-shot iterables (plain generators) are materialized, because replay
    may need several passes (offline preparation + the replay itself).
    """
    if isinstance(requests, (list, tuple)):
        return requests
    if hasattr(requests, "iter_requests"):
        return requests
    return list(requests)


def _iter_request_chunks(source: RequestSource, chunk_size: int) -> Iterator[list[IORequest]]:
    """Yield *source* as consecutive request lists (at most ~*chunk_size*).

    Sources exposing ``iter_chunks()`` (:class:`StreamedTrace` decodes its
    blocks into lists already) are consumed chunk-by-chunk directly instead
    of being re-buffered through a per-request iterator.  Replay results do
    not depend on chunk boundaries, so the native chunking is used as-is.
    """
    if isinstance(source, (list, tuple)):
        for start in range(0, len(source), chunk_size):
            yield source[start : start + chunk_size]
        return
    if hasattr(source, "iter_chunks"):
        yield from source.iter_chunks()
        return
    iterator = source.iter_requests()
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def _split_chunks_at_windows(
    chunks: Iterator[list[IORequest]], window: int, start_seq: int
) -> Iterator[list[IORequest]]:
    """Re-chunk a stream so no chunk crosses a window boundary.

    Replay results never depend on chunk boundaries, so splitting is free of
    observable effect on hit/miss outcomes; it only guarantees that the
    replay loop sees every ``seq % window == 0`` crossing between chunks,
    where rolling snapshots are taken.
    """
    seq = start_seq
    for chunk in chunks:
        offset, length = 0, len(chunk)
        while offset < length:
            room = window - (seq % window)
            take = min(room, length - offset)
            if offset == 0 and take == length:
                yield chunk
            else:
                yield chunk[offset : offset + take]
            seq += take
            offset += take


def _iter_columnar_chunks(
    source: RequestSource, chunk_size: int, start_seq: int
) -> Iterator[ColumnarChunk]:
    """Yield *source* as columnar chunks.

    Sources exposing ``iter_columnar()`` (:class:`StreamedTrace`,
    :class:`~repro.trace.cache.TraceSpec`,
    :class:`~repro.trace.columnar.ColumnarSource`) decode straight into
    arrays; anything else is replayed through the object chunker and lifted
    with :meth:`ColumnarChunk.from_requests` (correct, but no faster than
    the object path — it exists so ``columnar=True`` works on any source).
    """
    if hasattr(source, "iter_columnar"):
        yield from source.iter_columnar()
        return
    yield from columnar_chunks(_iter_request_chunks(source, chunk_size), start_seq)


def _split_columnar_at_windows(
    chunks: Iterator[ColumnarChunk], window: int, start_seq: int
) -> Iterator[ColumnarChunk]:
    """Columnar twin of :func:`_split_chunks_at_windows` (slices are views)."""
    seq = start_seq
    for chunk in chunks:
        offset, length = 0, len(chunk)
        while offset < length:
            room = window - (seq % window)
            take = min(room, length - offset)
            if offset == 0 and take == length:
                yield chunk
            else:
                yield chunk.slice(offset, offset + take)
            seq += take
            offset += take


class MultiPolicySimulator:
    """Drives N independent cache policies with a single pass over a stream.

    Feeding every policy from one loop is equivalent to N separate
    :class:`~repro.simulation.simulator.CacheSimulator` runs — the policies
    never interact — but pays the trace iteration, the per-client lookup and
    the read/write classification once per request instead of once per
    request per policy.  Offline policies exposing ``build_read_index`` /
    ``adopt_read_index`` (OPT) additionally share one future-read index.

    All accounting is observers (:mod:`repro.simulation.observers`) over the
    outcome stream the policies emit: a :class:`StatsObserver` per policy
    always; a :class:`ShardStatsObserver` when the policy is a sharded
    cluster; a :class:`CostObserver` when ``cost_model`` prices the replay;
    a :class:`RollingObserver` when ``rolling_window`` opts into windowed
    time series.  ``observer_factories`` attaches arbitrary extra observers:
    each factory is called ``factory(policy, start_seq)`` once per policy
    per run, and the caller keeps its own references to the instances it
    built (the engine only drives them).
    """

    def __init__(
        self,
        policies: Sequence[CachePolicy],
        track_per_client: bool = True,
        cost_model: CostModel | None = None,
        rolling_window: int | None = None,
        queueing_model: QueueingModel | None = None,
        observer_factories: Sequence[
            Callable[[CachePolicy, int], ReplayObserver]
        ] = (),
        columnar: bool | None = None,
    ):
        self._policies = list(policies)
        self._track_per_client = track_per_client
        self._cost_model = cost_model
        self._rolling_window = validate_rolling_window(rolling_window)
        #: Optional open-loop queueing accounting
        #: (:mod:`repro.simulation.queueing`): one QueueingObserver per
        #: policy, fed from the same outcome stream as everything else.
        self._queueing_model = queueing_model
        self._observer_factories = tuple(observer_factories)
        #: Columnar dispatch: ``None`` auto-detects (engage when numpy is
        #: available and the source decodes to arrays natively), ``True``
        #: forces it for any source, ``False`` pins the object path.  The
        #: two paths are bit-identical; this is purely a throughput switch.
        self._columnar = columnar
        if columnar and _np is None:
            raise RuntimeError(
                "columnar replay requires numpy; pass columnar=False (or "
                "None) to use the object path"
            )

    @property
    def policies(self) -> list[CachePolicy]:
        return list(self._policies)

    #: Requests per chunk of the replay loop.  Within a chunk each policy
    #: runs in its own tight loop, so the interpreter's call-site caches stay
    #: monomorphic and a policy's data structures stay hot for a whole chunk
    #: instead of being evicted N-1 times per request by the other policies.
    CHUNK_SIZE = 4096

    def run(
        self,
        requests: Iterable[IORequest],
        start_seq: int = 0,
    ) -> list[SimulationResult]:
        """Replay *requests* once through every policy.

        The policies never interact, so the engine is free to reorder work
        across them; it replays chunk-by-chunk, each policy consuming a whole
        chunk at a time, which is observably identical to N independent
        request-by-request runs.  Returns one :class:`SimulationResult` per
        policy, in policy order.  ``elapsed_seconds`` reports the duration of
        the shared pass and is therefore the same for every result.

        ``requests`` may be a sequence or a lazy source (the request-source
        protocol, see the module docstring).  A lazy source is replayed with
        bounded memory — at most one chunk of requests is alive at a time —
        and produces results bit-identical to replaying the materialized
        list.
        """
        policies = self._policies
        if not policies:
            return []
        source = _as_request_source(requests)
        if any(policy.offline for policy in policies):
            self._prepare_offline(source, start_seq)

        n = len(policies)
        accessors = [policy.access for policy in policies]
        track = self._track_per_client
        read_kind = RequestKind.READ
        chunk_size = self.CHUNK_SIZE
        cost_model = self._cost_model
        rolling = self._rolling_window

        # One observer pipeline per policy.  Stats are always reconstructed
        # (they are the result); everything else is opt-in.  Observers are
        # fresh per run, so every result counts exactly this run.
        stats_obs: list[StatsObserver] = []
        shard_obs: list = []
        cost_obs: list = []
        rolling_obs: list = []
        queueing_obs: list = []
        queueing_model = self._queueing_model
        # All policies replay identical chunks in sequence, so their
        # queueing observers share one arrival tape: each chunk's arrival
        # timestamps are drawn once and reused N times.
        queueing_tape = (
            queueing_model.tape(start_seq) if queueing_model is not None else None
        )
        pipelines: list[list[ReplayObserver]] = []
        for policy in policies:
            pipeline: list[ReplayObserver] = []
            observer = StatsObserver()
            stats_obs.append(observer)
            pipeline.append(observer)
            shard = shard_observer_for(policy)
            shard_obs.append(shard)
            if shard is not None:
                pipeline.append(shard)
            cost = CostObserver(cost_model.accumulator_for(policy)) if cost_model else None
            cost_obs.append(cost)
            if cost is not None:
                pipeline.append(cost)
            roll = RollingObserver(rolling, start_seq) if rolling else None
            rolling_obs.append(roll)
            if roll is not None:
                pipeline.append(roll)
            queueing = (
                queueing_model.observer_for(policy, start_seq, tape=queueing_tape)
                if queueing_model is not None
                else None
            )
            queueing_obs.append(queueing)
            if queueing is not None:
                pipeline.append(queueing)
            for factory in self._observer_factories:
                pipeline.append(factory(policy, start_seq))
            pipelines.append(pipeline)

        # Observers declaring a boundary interval get chunks aligned to it:
        # splitting at the gcd of all intervals guarantees no chunk crosses a
        # multiple of any individual interval.
        boundary = 0
        for pipeline in pipelines:
            for observer in pipeline:
                interval = observer.boundary_interval
                if interval:
                    boundary = gcd(boundary, interval)

        use_columnar = self._columnar
        if use_columnar is None:
            use_columnar = _np is not None and hasattr(source, "iter_columnar")

        started = time.perf_counter()  # lintkit: ignore[wall-clock] elapsed_seconds is runtime telemetry, never replay state
        if use_columnar:
            per_client = self._replay_columnar(
                source, start_seq, accessors, pipelines, stats_obs, boundary
            )
            elapsed = time.perf_counter() - started  # lintkit: ignore[wall-clock] elapsed_seconds is runtime telemetry, never replay state
            return self._assemble_results(
                per_client, elapsed, stats_obs, shard_obs, cost_obs, rolling_obs, queueing_obs
            )

        # client_id -> [read_requests, write_requests, read hits per policy,
        # write hits per policy].  The request counts are policy-independent,
        # so they are counted once per chunk and shared by all N per-client
        # results; ``chunk_targets`` maps each request of a chunk to the
        # hit-counter list its hits go to.
        #
        # Streams from a single client (every standard trace) never pay that
        # bookkeeping: as long as only one client has been seen, the replay
        # loop lets ``map`` drive each policy through a whole chunk at C
        # speed, and the client's counts are recovered from the stats
        # observers afterwards.  The moment a second client appears (only
        # possible at a chunk boundary, since each chunk is scanned before it
        # is replayed) the totals so far are attributed to the first client
        # and the per-request slow path takes over.
        per_client: dict[str, list] = {}
        sole_client: str | None = None
        multi_client = False
        seq_base = start_seq

        def snapshot_counts() -> list:
            stats0 = stats_obs[0]
            return [
                stats0.read_requests,
                stats0.write_requests,
                [observer.read_hits for observer in stats_obs],
                [observer.write_hits for observer in stats_obs],
            ]

        chunks = _iter_request_chunks(source, chunk_size)
        if boundary:
            chunks = _split_chunks_at_windows(chunks, boundary, start_seq)
        for chunk in chunks:
            if track and not multi_client:
                chunk_clients = {request.client_id for request in chunk}
                if sole_client is None and len(chunk_clients) == 1:
                    # The singleton's value, read without set iteration.
                    sole_client = chunk[0].client_id
                if len(chunk_clients) > 1 or (
                    sole_client is not None and chunk_clients != {sole_client}
                ):
                    multi_client = True
                    if sole_client is not None and seq_base > start_seq:
                        per_client[sole_client] = snapshot_counts()
            if track and multi_client:
                chunk_targets: list[list[int]] = []
                append_target = chunk_targets.append
                for request in chunk:
                    row = per_client.get(request.client_id)
                    if row is None:
                        row = [0, 0, [0] * n, [0] * n]
                        per_client[request.client_id] = row
                    if request.kind is read_kind:
                        row[0] += 1
                        append_target(row[2])
                    else:
                        row[1] += 1
                        append_target(row[3])
                for j in range(n):
                    access = accessors[j]
                    seq = seq_base
                    outcomes = []
                    append = outcomes.append
                    for request, hits in zip(chunk, chunk_targets):
                        outcome = access(request, seq)
                        if outcome.hit:
                            hits[j] += 1
                        append(outcome)
                        seq += 1
                    for observer in pipelines[j]:
                        observer.on_chunk(chunk, seq_base, outcomes)
            else:
                # Sole-client fast path: ``map`` drives each policy through
                # the whole chunk at C speed; the chunk's outcome list is
                # then handed to every observer in one batched call.
                seqs = range(seq_base, seq_base + len(chunk))
                for j in range(n):
                    outcomes = list(map(accessors[j], chunk, seqs))
                    for observer in pipelines[j]:
                        observer.on_chunk(chunk, seq_base, outcomes)
            seq_base += len(chunk)
            for pipeline in pipelines:
                for observer in pipeline:
                    observer.on_chunk_end(seq_base)

        if track and not multi_client and sole_client is not None:
            per_client[sole_client] = snapshot_counts()
        elapsed = time.perf_counter() - started  # lintkit: ignore[wall-clock] elapsed_seconds is runtime telemetry, never replay state
        return self._assemble_results(
            per_client, elapsed, stats_obs, shard_obs, cost_obs, rolling_obs, queueing_obs
        )

    def _replay_columnar(
        self,
        source: RequestSource,
        start_seq: int,
        accessors: list[Callable[[IORequest, int], object]],
        pipelines: list[list[ReplayObserver]],
        stats_obs: list[StatsObserver],
        boundary: int,
    ) -> dict[str, list]:
        """The columnar twin of the object replay loop in :meth:`run`.

        Chunks flow through as arrays: policies with a batch kernel get the
        chunk itself (`batch_access`), the rest run the identical scalar
        loop over the chunk's memoised request list; observers are fed via
        ``on_batch`` (batch-native or materialising fallback) or
        ``on_chunk`` respectively.  All accounting — per-client rows, the
        sole-/multi-client transition, observer boundaries — mirrors the
        object loop decision for decision, so both paths produce
        bit-identical results.
        """
        policies = self._policies
        n = len(policies)
        track = self._track_per_client
        scalar_base = CachePolicy.batch_access
        batch_kernels = [
            policy.batch_access
            if type(policy).batch_access is not scalar_base
            else None
            for policy in policies
        ]
        per_client: dict[str, list] = {}
        sole_client: str | None = None
        multi_client = False
        seq_base = start_seq

        def snapshot_counts() -> list:
            stats0 = stats_obs[0]
            return [
                stats0.read_requests,
                stats0.write_requests,
                [observer.read_hits for observer in stats_obs],
                [observer.write_hits for observer in stats_obs],
            ]

        chunks = _iter_columnar_chunks(source, self.CHUNK_SIZE, start_seq)
        if boundary:
            chunks = _split_columnar_at_windows(chunks, boundary, start_seq)
        for chunk in chunks:
            if chunk.seq_base != seq_base:
                # Sources number chunks from their own origin (0 for a
                # decoded trace); the engine's numbering wins.
                chunk = chunk.rebase(seq_base)
            size = len(chunk)
            client_rows: list[tuple[list, object, object]] | None = None
            if track:
                present = chunk.present_clients()
                if not multi_client:
                    chunk_clients = {client_id for client_id, _ in present}
                    if sole_client is None and len(chunk_clients) == 1:
                        sole_client = present[0][0]
                    if len(chunk_clients) > 1 or (
                        sole_client is not None and chunk_clients != {sole_client}
                    ):
                        multi_client = True
                        if sole_client is not None and seq_base > start_seq:
                            per_client[sole_client] = snapshot_counts()
                if multi_client:
                    write = chunk.write
                    client_rows = []
                    for client_id, mask in present:
                        row = per_client.get(client_id)
                        if row is None:
                            row = [0, 0, [0] * n, [0] * n]
                            per_client[client_id] = row
                        read_mask = mask & ~write
                        write_mask = mask & write
                        row[0] += int(_np.count_nonzero(read_mask))
                        row[1] += int(_np.count_nonzero(write_mask))
                        client_rows.append((row, read_mask, write_mask))
            for j in range(n):
                kernel = batch_kernels[j]
                if kernel is not None:
                    batch = kernel(chunk)
                    if client_rows is not None:
                        hit = batch.hit
                        for row, read_mask, write_mask in client_rows:
                            row[2][j] += int(_np.count_nonzero(hit & read_mask))
                            row[3][j] += int(_np.count_nonzero(hit & write_mask))
                    for observer in pipelines[j]:
                        observer.on_batch(chunk, batch)
                else:
                    requests = chunk.requests()
                    outcomes = list(
                        map(accessors[j], requests, range(seq_base, seq_base + size))
                    )
                    if client_rows is not None:
                        hit = _np.fromiter(
                            (outcome.hit for outcome in outcomes), _np.bool_, size
                        )
                        for row, read_mask, write_mask in client_rows:
                            row[2][j] += int(_np.count_nonzero(hit & read_mask))
                            row[3][j] += int(_np.count_nonzero(hit & write_mask))
                    for observer in pipelines[j]:
                        observer.on_chunk(requests, seq_base, outcomes)
            seq_base += size
            for pipeline in pipelines:
                for observer in pipeline:
                    observer.on_chunk_end(seq_base)
        if track and not multi_client and sole_client is not None:
            per_client[sole_client] = snapshot_counts()
        return per_client

    def _assemble_results(
        self,
        per_client: dict[str, list],
        elapsed: float,
        stats_obs: list[StatsObserver],
        shard_obs: list,
        cost_obs: list,
        rolling_obs: list,
        queueing_obs: list,
    ) -> list[SimulationResult]:
        """Fold the observer pipelines into one result per policy."""
        cost_model = self._cost_model
        results = []
        for j, policy in enumerate(self._policies):
            client_stats = {
                client_id: CacheStats(
                    read_requests=row[0],
                    read_hits=row[2][j],
                    write_requests=row[1],
                    write_hits=row[3][j],
                )
                for client_id, row in per_client.items()
            }
            stats = stats_obs[j].finalize()
            # Back-compat: the deprecated ``policy.stats`` shim reports this
            # run's accounting until the policy's next reset.
            policy._stats_view = stats
            shard = shard_obs[j]
            per_shard = shard.finalize() if shard is not None else ()
            latency = None
            shard_latency: tuple = ()
            cost = cost_obs[j]
            if cost is not None:
                latency = cost.finalize()
                if per_shard:
                    # Seek-aware cluster accumulators price each shard
                    # exactly; otherwise derive analytically (exact for
                    # position-independent devices).
                    shard_latency = cost.shard_latencies() or (
                        cost_model.shard_latencies(per_shard)
                    )
            roll = rolling_obs[j]
            queueing = queueing_obs[j]
            results.append(
                SimulationResult(
                    policy_name=policy.name,
                    capacity=policy.capacity,
                    stats=stats,
                    per_client=client_stats,
                    elapsed_seconds=elapsed,
                    per_shard=per_shard,
                    latency=latency,
                    shard_latency=shard_latency,
                    rolling=roll.finalize() if roll is not None else None,
                    queueing=queueing.finalize() if queueing is not None else None,
                )
            )
        return results

    def _prepare_offline(self, source: RequestSource, start_seq: int) -> None:
        """Prepare offline policies, sharing one future index per index builder.

        OPT-style policies (``build_read_index``/``adopt_read_index``) are
        fed a streaming pass, so a lazy source never has to materialize; a
        generic ``prepare`` contract expects a sequence, so only that legacy
        path materializes a lazy source (once).  The shared-index cache is
        keyed by the builder function itself, so types that delegate to the
        same builder (``ShardedCache`` reuses OPT's) share one index with it
        instead of each indexing the stream.
        """
        shared_indexes: dict[object, object] = {}
        materialized: Sequence[IORequest] | None = None
        for policy in self._policies:
            if not policy.offline:
                continue
            cls = type(policy)
            if hasattr(cls, "build_read_index") and hasattr(policy, "adopt_read_index"):
                builder = cls.build_read_index
                index = shared_indexes.get(builder)
                if index is None:
                    stream = (
                        source
                        if isinstance(source, (list, tuple))
                        else source.iter_requests()
                    )
                    index = builder(stream, start_seq)
                    shared_indexes[builder] = index
                policy.adopt_read_index(index)
            else:
                if materialized is None:
                    materialized = (
                        source
                        if isinstance(source, (list, tuple))
                        else list(source.iter_requests())
                    )
                policy.prepare(materialized, start_seq)


@dataclass(frozen=True)
class PolicySpec:
    """A picklable description of one policy instance in a sweep cell.

    Either ``name``/``capacity`` (resolved through the policy registry, with
    ``kwargs`` forwarded to the constructor) or an arbitrary zero-argument
    ``factory``.  Factories must be picklable (module-level functions or
    :func:`functools.partial` of them) to run under ``jobs > 1``; otherwise
    the runner falls back to the serial path.
    """

    label: str
    name: str | None = None
    capacity: int | None = None
    kwargs: Mapping[str, object] = field(default_factory=dict)
    factory: Callable[[], CachePolicy] | None = None

    def build(self) -> CachePolicy:
        if self.factory is not None:
            return self.factory()
        if self.name is None or self.capacity is None:
            raise ValueError(
                f"PolicySpec {self.label!r} needs either a factory or name+capacity"
            )
        return create_policy(self.name, capacity=self.capacity, **dict(self.kwargs))


@dataclass(frozen=True)
class SweepCell:
    """One x-coordinate of a sweep: the policies that share a replay pass.

    ``requests`` overrides the runner's shared stream for this cell (used by
    sweeps whose cells replay different streams, e.g. the noise-injection
    experiment); ``None`` means the runner's stream.  Either may be a
    sequence or a lazy request source (e.g. a
    :class:`repro.trace.cache.TraceSpec`).

    ``queueing`` overrides the runner's queueing model for this cell (used
    by the ``load`` experiment, whose cells sweep offered load over one
    stream); ``None`` means the runner's model (which may itself be
    ``None`` — queueing off).  Cells replay their stream whole inside one
    worker, so queueing stats are bit-identical at any ``jobs=`` count.
    """

    x: float
    specs: tuple[PolicySpec, ...]
    requests: RequestSource | None = None
    queueing: QueueingModel | None = None


# Per-worker copy of the runner's shared request stream (or the lazy source
# the worker opens itself), installed once per worker process by the pool
# initializer instead of being pickled per cell.
_WORKER_REQUESTS: RequestSource | None = None


def _init_worker(requests: RequestSource | None) -> None:
    global _WORKER_REQUESTS
    _WORKER_REQUESTS = requests


def _stream_group_key(stream: RequestSource) -> object:
    """Group key for folding same-stream cells into one replay pass.

    Hashable lazy sources (e.g. :class:`~repro.trace.cache.TraceSpec`) group
    by *equality*, so two equal specs share one pass even if they are
    distinct objects (or were pickled separately); everything else groups by
    identity.
    """
    if hasattr(stream, "iter_requests"):
        try:
            hash(stream)
        except TypeError:
            return id(stream)
        return stream
    return id(stream)


def _run_cells(
    cells: Sequence[SweepCell],
    default_requests: RequestSource | None,
    track_per_client: bool,
    cost_model: CostModel | None = None,
    rolling_window: int | None = None,
    queueing_model: QueueingModel | None = None,
    columnar: bool | None = None,
) -> list[list[SimulationResult]]:
    """Run *cells*, folding same-stream cells into one shared replay pass.

    Cells are grouped by (request-stream identity, queueing model) — stream
    equality for hashable lazy sources: all their policies are independent,
    so one :class:`MultiPolicySimulator` pass per distinct group covers
    every cell of that group.  Cells with different queueing models (e.g.
    different offered loads over one stream) need separate passes because
    the queueing observer is per-run state.  Used both by the serial path
    (with all cells) and inside each worker process (with that worker's
    batch of cells).
    """
    groups: dict[object, list[int]] = {}
    streams: dict[object, RequestSource] = {}
    queueings: dict[object, QueueingModel | None] = {}
    for index, cell in enumerate(cells):
        stream = cell.requests if cell.requests is not None else default_requests
        if stream is None:
            raise ValueError(
                "sweep cell has no request stream (set ParallelSweepRunner("
                "requests=...) or SweepCell(requests=...))"
            )
        queueing = cell.queueing if cell.queueing is not None else queueing_model
        key = (_stream_group_key(stream), queueing)
        groups.setdefault(key, []).append(index)
        streams[key] = stream
        queueings[key] = queueing

    outcomes: list[list[SimulationResult]] = [[] for _ in cells]
    for group_key, cell_indices in groups.items():
        policies = [
            spec.build() for index in cell_indices for spec in cells[index].specs
        ]
        results = MultiPolicySimulator(
            policies,
            track_per_client=track_per_client,
            cost_model=cost_model,
            rolling_window=rolling_window,
            queueing_model=queueings[group_key],
            columnar=columnar,
        ).run(streams[group_key])
        offset = 0
        for index in cell_indices:
            width = len(cells[index].specs)
            outcomes[index] = results[offset : offset + width]
            offset += width
    return outcomes


def _ensure_streams(streams: Iterable[RequestSource | None]) -> None:
    """Call ``ensure()`` once per *distinct* lazy source, skipping ``None``.

    Wide sweeps hand the runner one equal :class:`~repro.trace.cache
    .TraceSpec` per cell; ensuring each would re-stat (and on a cold cache,
    race to re-generate) the same trace once per cell.  Hashable sources
    dedup by equality — matching :func:`_stream_group_key`, so exactly the
    streams that will fold into one replay pass share one ``ensure()`` —
    and unhashable ones by identity.
    """
    seen: set[object] = set()
    seen_ids: set[int] = set()
    for stream in streams:
        if stream is None:
            continue
        ensure = getattr(stream, "ensure", None)
        if not callable(ensure):
            continue
        try:
            if stream in seen:
                continue
            seen.add(stream)
        except TypeError:
            if id(stream) in seen_ids:
                continue
            seen_ids.add(id(stream))
        ensure()


def _run_cell_batch(
    cells: Sequence[SweepCell],
    track_per_client: bool,
    cost_model: CostModel | None = None,
    rolling_window: int | None = None,
    queueing_model: QueueingModel | None = None,
    columnar: bool | None = None,
) -> list[list[SimulationResult]]:
    """Worker entry point: run one batch of cells against the worker stream."""
    return _run_cells(
        cells,
        _WORKER_REQUESTS,
        track_per_client,
        cost_model,
        rolling_window,
        queueing_model,
        columnar,
    )


class ParallelSweepRunner:
    """Runs a grid of sweep cells, serially or across worker processes.

    The merge order is deterministic: results enter the
    :class:`SweepResult` in cell order, then spec order within each cell,
    regardless of which worker finishes first — so ``jobs=1`` and ``jobs=N``
    produce identical sweeps (worker scheduling only affects wall-clock).
    """

    def __init__(
        self,
        requests: RequestSource | None = None,
        jobs: int | None = 1,
        track_per_client: bool = True,
        cost_model: CostModel | None = None,
        rolling_window: int | None = None,
        queueing: QueueingModel | None = None,
        columnar: bool | None = None,
    ):
        self._requests = requests
        self._jobs = 1 if jobs is None else int(jobs)
        self._track_per_client = track_per_client
        #: Columnar dispatch for every cell's replay (see
        #: :class:`MultiPolicySimulator`): a plain bool/None, so it ships to
        #: workers with the cells; both paths are bit-identical.
        self._columnar = columnar
        #: Optional service-time pricing applied to every cell's replay
        #: (:mod:`repro.simulation.costmodel`).  Cost models are plain
        #: picklable objects, so they ship to worker processes with the
        #: cells; ``jobs=1`` and ``jobs=N`` produce identical latency stats.
        self._cost_model = cost_model
        #: Optional windowed time series on every result (an int, so it
        #: ships to workers like the cost model; each cell's policy replays
        #: its stream whole inside one worker, so the series are complete
        #: and identical at any job count).
        self._rolling_window = validate_rolling_window(rolling_window)
        #: Optional open-loop queueing on every cell's replay (a frozen
        #: picklable value object, so it ships to workers with the cells;
        #: per-cell ``SweepCell.queueing`` overrides it).  Arrival clocks
        #: and queue state are deterministic functions of the stream, so
        #: ``jobs=1`` and ``jobs=N`` produce identical queueing stats.
        self._queueing = queueing

    def run(self, cells: Iterable[SweepCell], parameter: str) -> SweepResult:
        cells = list(cells)
        jobs = min(self._jobs, len(cells))
        if jobs > 1 and not self._specs_picklable(cells):
            warnings.warn(
                "sweep cells are not picklable (non-module-level policy "
                "factory?); falling back to the serial path",
                RuntimeWarning,
                stacklevel=2,
            )
            jobs = 1
        if jobs > 1:
            try:
                outcomes = self._run_parallel(cells, jobs)
            except Exception as error:
                # Anything that breaks the worker pool (most likely an
                # unpicklable request stream) degrades to the serial path
                # rather than failing the sweep: workers build all state
                # themselves, so a failed parallel attempt leaves nothing
                # behind.
                warnings.warn(
                    f"parallel sweep failed ({type(error).__name__}: {error}); "
                    "falling back to the serial path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                outcomes = self._run_serial(cells)
        else:
            outcomes = self._run_serial(cells)

        sweep = SweepResult(parameter=parameter)
        for cell, results in zip(cells, outcomes):
            for spec, result in zip(cell.specs, results):
                sweep.add(spec.label, cell.x, result)
        return sweep

    # ----------------------------------------------------------- execution
    def _run_serial(self, cells: Sequence[SweepCell]) -> list[list[SimulationResult]]:
        return _run_cells(
            cells,
            self._requests,
            self._track_per_client,
            self._cost_model,
            self._rolling_window,
            self._queueing,
            self._columnar,
        )

    def _run_parallel(
        self, cells: Sequence[SweepCell], jobs: int
    ) -> list[list[SimulationResult]]:
        # Lazy sources get materialized on disk once, up front, so N workers
        # opening the same spec hit the trace cache instead of racing to
        # generate the trace N times.
        _ensure_streams(
            [self._requests] + [cell.requests for cell in cells]
        )
        # Split the grid into one contiguous batch per worker: neighbouring
        # cells usually share a request stream, so each batch still folds
        # into shared replay passes inside its worker — jobs>1 keeps both
        # the amortisation and the parallelism.
        chunk = -(-len(cells) // jobs)  # ceil division
        batches = [cells[start : start + chunk] for start in range(0, len(cells), chunk)]
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=(self._requests,)
        ) as executor:
            futures = [
                executor.submit(
                    _run_cell_batch,
                    batch,
                    self._track_per_client,
                    self._cost_model,
                    self._rolling_window,
                    self._queueing,
                    self._columnar,
                )
                for batch in batches
            ]
            batch_outcomes = [future.result() for future in futures]
        return [cell_results for batch in batch_outcomes for cell_results in batch]

    def _specs_picklable(self, cells: Sequence[SweepCell]) -> bool:
        """Probe only the specs: the realistic pickling hazard is a closure
        factory, and probing full cells would serialize every per-cell
        request stream twice."""
        try:
            pickle.dumps([cell.specs for cell in cells])
            return True
        except Exception:
            return False
