"""Result containers for simulation runs and parameter sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cache.base import CacheStats

__all__ = ["SimulationResult", "SweepPoint", "SweepResult", "format_table"]


@dataclass
class SimulationResult:
    """Outcome of driving one policy over one request stream."""

    policy_name: str
    capacity: int
    stats: CacheStats
    per_client: dict[str, CacheStats] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def read_hit_ratio(self) -> float:
        return self.stats.read_hit_ratio

    @property
    def requests(self) -> int:
        return self.stats.requests

    def client_read_hit_ratio(self, client_id: str) -> float:
        """Read hit ratio restricted to one client's requests (Section 6.4)."""
        stats = self.per_client.get(client_id)
        return 0.0 if stats is None else stats.read_hit_ratio

    def as_dict(self) -> dict:
        return {
            "policy": self.policy_name,
            "capacity": self.capacity,
            "read_hit_ratio": self.read_hit_ratio,
            "elapsed_seconds": self.elapsed_seconds,
            **self.stats.as_dict(),
        }

    def __str__(self) -> str:
        return (
            f"{self.policy_name}(capacity={self.capacity}): "
            f"read hit ratio {self.read_hit_ratio:.2%} "
            f"({self.stats.read_hits}/{self.stats.read_requests} reads)"
        )


@dataclass(frozen=True)
class SweepPoint:
    """One (x, result) sample of a parameter sweep."""

    x: float
    result: SimulationResult

    @property
    def read_hit_ratio(self) -> float:
        return self.result.read_hit_ratio


@dataclass
class SweepResult:
    """A family of sweep curves, one per policy (or per configuration label)."""

    parameter: str
    series: dict[str, list[SweepPoint]] = field(default_factory=dict)

    def add(self, label: str, x: float, result: SimulationResult) -> None:
        self.series.setdefault(label, []).append(SweepPoint(x=x, result=result))

    def labels(self) -> list[str]:
        return list(self.series)

    def xs(self, label: str) -> list[float]:
        return [point.x for point in self.series[label]]

    def hit_ratios(self, label: str) -> list[float]:
        return [point.read_hit_ratio for point in self.series[label]]

    def curve(self, label: str) -> list[tuple[float, float]]:
        """The (x, read hit ratio) samples for one series."""
        return [(point.x, point.read_hit_ratio) for point in self.series[label]]

    def as_rows(self) -> list[dict]:
        """Flatten into rows suitable for CSV output or tabular printing."""
        rows = []
        for label, points in self.series.items():
            for point in points:
                rows.append(
                    {
                        "series": label,
                        self.parameter: point.x,
                        "read_hit_ratio": point.read_hit_ratio,
                    }
                )
        return rows

    def to_table(self) -> str:
        """Render as a text table: one row per x value, one column per series."""
        xs = sorted({point.x for points in self.series.values() for point in points})
        labels = self.labels()
        header = [self.parameter] + labels
        rows: list[list[str]] = []
        lookup = {
            (label, point.x): point.read_hit_ratio
            for label, points in self.series.items()
            for point in points
        }
        for x in xs:
            row = [f"{x:g}"]
            for label in labels:
                value = lookup.get((label, x))
                row.append("-" if value is None else f"{value:.2%}")
            rows.append(row)
        return format_table(header, rows)


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(header, *rows)] if rows else [[h] for h in header]
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
