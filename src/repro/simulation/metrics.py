"""Result containers for simulation runs and parameter sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cache.base import CacheStats
from repro.simulation.costmodel import LatencyStats
from repro.simulation.queueing import QueueingStats

__all__ = [
    "RollingWindow",
    "RollingMetrics",
    "SimulationResult",
    "SweepPoint",
    "SweepResult",
    "format_table",
    "validate_rolling_window",
]


def validate_rolling_window(rolling_window: int | None) -> int | None:
    """Validate an opt-in rolling window size (``None`` = rolling off)."""
    if rolling_window is None:
        return None
    window = int(rolling_window)
    if window < 1:
        raise ValueError(f"rolling_window must be >= 1, got {rolling_window}")
    return window


@dataclass(frozen=True)
class RollingWindow:
    """Hit/miss/eviction deltas over one window of the request sequence.

    Windows are aligned to absolute sequence numbers: window *i* covers
    sequence numbers ``[i*W, (i+1)*W)``.  A window at the start or end of a
    replayed segment may be partial (``requests < W``); :meth:`RollingMetrics
    .merge` re-joins such halves when adjacent segments are combined.
    """

    start: int
    requests: int
    read_requests: int
    read_hits: int
    write_requests: int
    write_hits: int
    evictions: int

    @property
    def read_hit_ratio(self) -> float:
        """Read hits / read requests within this window (0.0 if no reads)."""
        if self.read_requests == 0:
            return 0.0
        return self.read_hits / self.read_requests

    def combine(self, other: "RollingWindow") -> "RollingWindow":
        """Join two halves of the same window (other must directly follow)."""
        if other.start != self.start + self.requests:
            raise ValueError(
                f"cannot combine windows: {other.start} does not continue "
                f"[{self.start}, {self.start + self.requests})"
            )
        return RollingWindow(
            start=self.start,
            requests=self.requests + other.requests,
            read_requests=self.read_requests + other.read_requests,
            read_hits=self.read_hits + other.read_hits,
            write_requests=self.write_requests + other.write_requests,
            write_hits=self.write_hits + other.write_hits,
            evictions=self.evictions + other.evictions,
        )

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "requests": self.requests,
            "read_requests": self.read_requests,
            "read_hits": self.read_hits,
            "read_hit_ratio": self.read_hit_ratio,
            "write_requests": self.write_requests,
            "write_hits": self.write_hits,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class RollingMetrics:
    """Windowed time series of one policy's behaviour over one replay.

    The opt-in rolling view of a run (``rolling_window=`` on the engine,
    the single-policy simulator and the sweep runner): one
    :class:`RollingWindow` per ``window``-sized slice of the sequence-number
    space, in order.  Because windows are functions of absolute sequence
    numbers only, the series is bit-identical at any chunking and any
    ``jobs=`` count; :meth:`merge` combines the series of adjacent replay
    segments (the mergeability contract used by chunked replays).
    """

    window: int
    windows: tuple[RollingWindow, ...] = ()

    def window_index(self, entry: RollingWindow) -> int:
        """The global index of *entry* in the sequence-number space."""
        return entry.start // self.window

    # ---------------------------------------------------------------- series
    def starts(self) -> list[int]:
        return [entry.start for entry in self.windows]

    def read_hit_ratios(self) -> list[float]:
        """The windowed read-hit-ratio time series, in window order."""
        return [entry.read_hit_ratio for entry in self.windows]

    def eviction_series(self) -> list[int]:
        """Evictions per window, in window order."""
        return [entry.evictions for entry in self.windows]

    # ----------------------------------------------------------------- merge
    def merge(self, other: "RollingMetrics") -> "RollingMetrics":
        """Concatenate the series of two adjacent replay segments.

        If *other*'s first window continues the same global window as
        *self*'s last (a window split across a segment boundary), the halves
        are combined into one window; otherwise the series are concatenated
        as-is.  Merging is associative over consecutive segments, so a
        chunked replay may fold its partial series in any grouping and
        arrive at the same final series.
        """
        if other.window != self.window:
            raise ValueError(
                f"cannot merge rolling metrics with different windows "
                f"({self.window} vs {other.window})"
            )
        if not self.windows:
            return other
        if not other.windows:
            return self
        last, first = self.windows[-1], other.windows[0]
        if (
            first.start == last.start + last.requests
            and first.start // self.window == last.start // self.window
        ):
            joined = self.windows[:-1] + (last.combine(first),) + other.windows[1:]
        else:
            joined = self.windows + other.windows
        return RollingMetrics(window=self.window, windows=joined)

    def as_rows(self) -> list[dict]:
        """One row per window (for CSV output or tabular printing)."""
        return [
            {"window": self.window_index(entry), **entry.as_dict()}
            for entry in self.windows
        ]


@dataclass
class SimulationResult:
    """Outcome of driving one policy over one request stream.

    ``per_shard`` is filled when the policy is a sharded cluster
    (:class:`~repro.simulation.cluster.ShardedCache`): one stats snapshot
    per shard, in shard order.  It stays empty for ordinary policies.

    ``latency`` is filled when the run was priced by a
    :class:`~repro.simulation.costmodel.CostModel` (the replay's opt-in
    second accounting pass): modeled read latency (mean / p50 / p99 over a
    fixed-bucket histogram), write service time and modeled throughput for
    this run's requests.  ``None`` for un-priced runs.  ``shard_latency``
    is the per-shard analytic breakdown (each shard modeled as its own
    device) when the run was priced *and* the policy is a sharded cluster.

    ``rolling`` is filled when the replay opted into windowed time-series
    accounting (``rolling_window=``): the per-window hit-ratio/eviction
    series (:class:`RollingMetrics`), bit-identical at any ``--jobs``.

    ``queueing`` is filled when the replay opted into open-loop queueing
    (``queueing_model=``): queueing-delay / sojourn-time / utilization
    accounting under the model's arrival process
    (:class:`~repro.simulation.queueing.QueueingStats`).  ``None`` for
    closed-loop runs.
    """

    policy_name: str
    capacity: int
    stats: CacheStats
    per_client: dict[str, CacheStats] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    per_shard: tuple[CacheStats, ...] = ()
    latency: LatencyStats | None = None
    shard_latency: tuple[LatencyStats, ...] = ()
    rolling: RollingMetrics | None = None
    queueing: QueueingStats | None = None

    @property
    def read_hit_ratio(self) -> float:
        return self.stats.read_hit_ratio

    @property
    def requests(self) -> int:
        return self.stats.requests

    def client_read_hit_ratio(self, client_id: str) -> float:
        """Read hit ratio restricted to one client's requests (Section 6.4)."""
        stats = self.per_client.get(client_id)
        return 0.0 if stats is None else stats.read_hit_ratio

    # ------------------------------------------------------ per-shard views
    @property
    def shard_count(self) -> int:
        return len(self.per_shard)

    @property
    def shard_read_hit_ratios(self) -> list[float]:
        """Read hit ratio of each shard, in shard order."""
        return [stats.read_hit_ratio for stats in self.per_shard]

    @property
    def shard_request_counts(self) -> list[int]:
        """Requests routed to each shard, in shard order."""
        return [stats.requests for stats in self.per_shard]

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean shard load: 1.0 is perfectly balanced.

        A shard serving no requests drags the mean down, so idle shards push
        the statistic up (e.g. 2 busy + 2 idle shards -> 2.0).  Unsharded
        results (and clusters that saw no requests) report 1.0.
        """
        counts = self.shard_request_counts
        total = sum(counts)
        if not counts or total == 0:
            return 1.0
        return max(counts) * len(counts) / total

    # ------------------------------------------------------- modeled latency
    @property
    def mean_read_latency_us(self) -> float:
        """Modeled mean read latency in microseconds (0.0 if un-priced)."""
        latency = self.effective_latency
        return 0.0 if latency is None else latency.mean_read_us

    @property
    def p99_read_latency_us(self) -> float:
        """Modeled p99 read latency in microseconds (0.0 if un-priced)."""
        latency = self.effective_latency
        return 0.0 if latency is None else latency.p99_read_us

    @property
    def cluster_latency(self) -> LatencyStats | None:
        """Merged per-shard latency: the fleet priced as independent devices.

        Composes the per-shard breakdowns, so each shard keeps its own
        device — the right aggregate for cluster-vs-unified comparisons.
        Priced cluster runs track one seek head per shard, so this equals
        ``latency``; it exists as the explicit fleet view and remains the
        one every reporting surface uses.  ``None`` for un-priced or
        unsharded results.
        """
        if not self.shard_latency:
            return None
        return LatencyStats.merge_all(self.shard_latency)

    @property
    def effective_latency(self) -> LatencyStats | None:
        """The latency view every reporting surface uses.

        For sharded priced results this is :attr:`cluster_latency` (the
        fleet as independent devices); otherwise the run's own
        :attr:`latency`.  Keeps ``as_dict()``/sweep rows consistent with
        the latency experiment.
        """
        cluster = self.cluster_latency
        return cluster if cluster is not None else self.latency

    @property
    def hottest_shard_penalty(self) -> float:
        """Max-over-mean modeled shard busy time: the queueing skew statistic.

        The hottest shard of a fleet accumulates the deepest queue; modeling
        each shard as its own device, this is how much more service time the
        busiest shard owes than the average shard (1.0 = perfectly even, the
        per-shard analogue of :attr:`load_imbalance` weighted by request
        *cost* instead of request count).  1.0 for un-priced or unsharded
        results.
        """
        busy = [latency.total_us for latency in self.shard_latency]
        total = sum(busy)
        if not busy or total == 0.0:
            return 1.0
        return max(busy) * len(busy) / total

    @property
    def cluster_throughput_rps(self) -> float:
        """Modeled fleet throughput: shards serve in parallel, the hottest gates.

        0.0 for un-priced or unsharded results (use
        ``latency.throughput_rps`` for a single server).
        """
        if not self.shard_latency:
            return 0.0
        slowest = max(latency.busy_seconds for latency in self.shard_latency)
        if slowest <= 0.0:
            return 0.0
        return sum(latency.request_count for latency in self.shard_latency) / slowest

    def as_dict(self) -> dict:
        row = {
            "policy": self.policy_name,
            "capacity": self.capacity,
            "read_hit_ratio": self.read_hit_ratio,
            "elapsed_seconds": self.elapsed_seconds,
            **self.stats.as_dict(),
        }
        if self.per_shard:
            row["shards"] = self.shard_count
            row["load_imbalance"] = self.load_imbalance
            row["shard_read_hit_ratios"] = self.shard_read_hit_ratios
            row["shard_request_counts"] = self.shard_request_counts
        if self.latency is not None:
            row.update(self.effective_latency.as_dict())
        if self.shard_latency:
            row["hottest_shard_penalty"] = self.hottest_shard_penalty
            row["cluster_throughput_rps"] = self.cluster_throughput_rps
        if self.queueing is not None:
            row.update(self.queueing.report_columns())
        return row

    def __str__(self) -> str:
        return (
            f"{self.policy_name}(capacity={self.capacity}): "
            f"read hit ratio {self.read_hit_ratio:.2%} "
            f"({self.stats.read_hits}/{self.stats.read_requests} reads)"
        )


@dataclass(frozen=True)
class SweepPoint:
    """One (x, result) sample of a parameter sweep."""

    x: float
    result: SimulationResult

    @property
    def read_hit_ratio(self) -> float:
        return self.result.read_hit_ratio


@dataclass
class SweepResult:
    """A family of sweep curves, one per policy (or per configuration label)."""

    parameter: str
    series: dict[str, list[SweepPoint]] = field(default_factory=dict)

    def add(self, label: str, x: float, result: SimulationResult) -> None:
        self.series.setdefault(label, []).append(SweepPoint(x=x, result=result))

    def labels(self) -> list[str]:
        return list(self.series)

    def xs(self, label: str) -> list[float]:
        return [point.x for point in self.series[label]]

    def hit_ratios(self, label: str) -> list[float]:
        return [point.read_hit_ratio for point in self.series[label]]

    def curve(self, label: str) -> list[tuple[float, float]]:
        """The (x, read hit ratio) samples for one series."""
        return [(point.x, point.read_hit_ratio) for point in self.series[label]]

    def mean_read_latencies(self, label: str) -> list[float]:
        """Modeled mean read latency (us) per point (0.0 for un-priced points)."""
        return [point.result.mean_read_latency_us for point in self.series[label]]

    def as_rows(self) -> list[dict]:
        """Flatten into rows suitable for CSV output or tabular printing.

        Points priced by a cost model additionally carry the modeled-latency
        columns (mean/p50/p99 read latency, throughput); un-priced sweeps
        emit exactly the historical hit-ratio rows.
        """
        rows = []
        for label, points in self.series.items():
            for point in points:
                row = {
                    "series": label,
                    self.parameter: point.x,
                    "read_hit_ratio": point.read_hit_ratio,
                }
                latency = point.result.effective_latency
                if latency is not None:
                    row.update(latency.report_columns())
                queueing = point.result.queueing
                if queueing is not None:
                    row.update(queueing.report_columns())
                rows.append(row)
        return rows

    def to_table(self) -> str:
        """Render as a text table: one row per x value, one column per series.

        Every point is rendered, consistently with :meth:`as_rows`: a series
        with several points at the same x (e.g. repeated runs) gets one
        table row per duplicate, in insertion order, instead of silently
        collapsing to the last value.
        """
        labels = self.labels()
        lookup: dict[tuple[str, float], list[float]] = {}
        for label, points in self.series.items():
            for point in points:
                lookup.setdefault((label, point.x), []).append(point.read_hit_ratio)
        xs = sorted({x for _, x in lookup})
        header = [self.parameter] + labels
        rows: list[list[str]] = []
        for x in xs:
            depth = max((len(lookup.get((label, x), ())) for label in labels), default=0)
            for index in range(depth):
                row = [f"{x:g}"]
                for label in labels:
                    values = lookup.get((label, x), ())
                    row.append(f"{values[index]:.2%}" if index < len(values) else "-")
                rows.append(row)
        return format_table(header, rows)


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(header, *rows)] if rows else [[h] for h in header]
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
