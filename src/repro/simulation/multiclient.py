"""Multi-client request streams (paper Section 6.4).

The paper evaluates CLIC with several DB2 instances sharing one storage
server: the per-client traces are interleaved round-robin, one request from
each trace in turn, and all traces are truncated to the length of the
shortest so no client dominates by sheer length.  Each client manages its own
database, so page identifiers of different clients never collide; this module
remaps page ids into disjoint ranges to guarantee that.
"""

from __future__ import annotations

from typing import Sequence

from repro.simulation.request import IORequest

__all__ = ["remap_pages", "interleave_round_robin", "partition_capacity"]


def remap_pages(requests: Sequence[IORequest], offset: int) -> list[IORequest]:
    """Return a copy of *requests* with every page id shifted by *offset*."""
    return [
        IORequest(
            page=request.page + offset,
            kind=request.kind,
            hints=request.hints,
            client_id=request.client_id,
        )
        for request in requests
    ]


def interleave_round_robin(
    traces: Sequence[Sequence[IORequest]],
    truncate: bool = True,
    page_stride: int | None = None,
) -> list[IORequest]:
    """Interleave several client traces round-robin into one server workload.

    Parameters
    ----------
    traces:
        One request sequence per client.
    truncate:
        Truncate every trace to the length of the shortest one (the paper does
        this to eliminate bias towards longer traces).
    page_stride:
        Distance between the page-id ranges assigned to consecutive clients.
        ``None`` derives a safe stride from the largest page id observed.
    """
    if not traces:
        return []
    if any(len(trace) == 0 for trace in traces):
        raise ValueError("cannot interleave an empty trace")

    if page_stride is None:
        max_page = max(request.page for trace in traces for request in trace)
        page_stride = max_page + 1

    length = min(len(trace) for trace in traces) if truncate else max(len(trace) for trace in traces)
    interleaved: list[IORequest] = []
    for position in range(length):
        for index, trace in enumerate(traces):
            if position >= len(trace):
                continue
            request = trace[position]
            interleaved.append(
                IORequest(
                    page=request.page + index * page_stride,
                    kind=request.kind,
                    hints=request.hints,
                    client_id=request.client_id,
                )
            )
    return interleaved


def partition_capacity(total: int, clients: int) -> list[int]:
    """Split a cache of *total* pages evenly among *clients* (static partitioning).

    Used for the comparison baseline in Figure 11: each client gets a private
    cache of ``total // clients`` pages (any remainder goes to the first
    clients so the sum equals ``total``).
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if total < clients:
        raise ValueError(f"cannot split {total} pages among {clients} clients")
    base = total // clients
    remainder = total % clients
    return [base + (1 if i < remainder else 0) for i in range(clients)]
