"""Composable replay observers: all accounting, fed from one replay loop.

Policies are pure kernels (:mod:`repro.cache.base`): ``access`` returns an
:class:`~repro.cache.base.AccessOutcome` event and mutates nothing but
replacement state.  Everything the simulation reports — hit/miss statistics,
per-shard breakdowns, service-time pricing, rolling time series — is an
observer over the outcome stream, attached by the single replay orchestrator
(:class:`~repro.simulation.engine.MultiPolicySimulator`).

The observer contract (:class:`ReplayObserver`):

* :meth:`~ReplayObserver.on_outcome` — fold one ``(request, seq, outcome)``
  event; the replay loop prefers the batched :meth:`~ReplayObserver
  .on_chunk`, which observers override with fused loops for hot-path speed.
* :meth:`~ReplayObserver.on_chunk_end` — the loop crossed a chunk boundary
  at sequence number ``seq_end`` (exclusive).  Observers declaring a
  :attr:`~ReplayObserver.boundary_interval` are guaranteed a call at every
  multiple of it (the loop re-chunks the stream so no chunk crosses one).
* :meth:`~ReplayObserver.merge` — absorb the observer of the *directly
  following* replay segment, so segmented replays (``jobs=N`` work splits,
  service-mode restarts) compose into one run's accounting.
* :meth:`~ReplayObserver.finalize` — the accounting product.  Non-
  destructive: safe to call more than once.

Writing an observer: subclass :class:`ReplayObserver`, implement
``on_outcome`` (override ``on_chunk`` only if profiling says so), ``merge``
and ``finalize``, then attach instances via the simulators'
``observer_factories`` hook.  Observers must not call back into the policy's
``access`` and must not mutate requests or outcomes — many observers share
one outcome stream.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

try:  # optional acceleration; on_batch is only reachable with numpy present
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.cache.base import AccessOutcome, CacheStats

if TYPE_CHECKING:  # imported for type annotations only
    from repro.cache.base import AccessOutcomeBatch
    from repro.simulation.cluster import ShardedCache
    from repro.simulation.costmodel import CostAccumulator, LatencyStats
    from repro.simulation.metrics import RollingMetrics
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = [
    "ReplayObserver",
    "StatsObserver",
    "ShardStatsObserver",
    "CostObserver",
    "RollingObserver",
    "shard_observer_for",
]


class ReplayObserver(abc.ABC):
    """Protocol for accounting fed from the replay loop's outcome stream."""

    #: When not ``None``, the replay loop re-chunks the stream so a chunk
    #: never crosses a multiple of this sequence-number interval, and
    #: :meth:`on_chunk_end` therefore fires at every such multiple.
    boundary_interval: int | None = None

    @abc.abstractmethod
    def on_outcome(self, request: IORequest, seq: int, outcome: AccessOutcome) -> None:
        """Fold one replayed request's outcome event."""

    def on_chunk(
        self,
        requests: Sequence[IORequest],
        seq_base: int,
        outcomes: Sequence[AccessOutcome],
    ) -> None:
        """Fold one chunk of consecutive outcomes (requests[i] has sequence
        number ``seq_base + i``).  Default: loop over :meth:`on_outcome`."""
        on_outcome = self.on_outcome
        seq = seq_base
        for request, outcome in zip(requests, outcomes):
            on_outcome(request, seq, outcome)
            seq += 1

    def on_batch(self, chunk: "ColumnarChunk", batch: "AccessOutcomeBatch") -> None:
        """Fold one columnar chunk of batched outcomes (the columnar replay
        path's analogue of :meth:`on_chunk`).  Default: materialise the
        chunk's requests and the batch's scalar outcomes and delegate — so
        any observer is columnar-correct out of the box; batch-native
        overrides are purely a performance fast path."""
        self.on_chunk(chunk.requests(), chunk.seq_base, batch.outcomes())

    def on_chunk_end(self, seq_end: int) -> None:
        """The replay crossed a chunk boundary; ``seq_end`` is exclusive."""

    @abc.abstractmethod
    def merge(self, other: "ReplayObserver") -> None:
        """Absorb *other*, the observer of the directly following segment."""

    @abc.abstractmethod
    def finalize(self) -> object:
        """Return the accounting product (non-destructive)."""


class StatsObserver(ReplayObserver):
    """Reconstructs :class:`CacheStats` from the outcome stream.

    One counting rule for every policy: requests/hits split by read/write,
    one admission per ``outcome.admitted``, one bypass per
    ``outcome.bypassed``, ``len(outcome.evicted)`` evictions.  The counters
    are public attributes so the replay loop can snapshot per-client totals
    without paying a :class:`CacheStats` allocation mid-run.
    """

    __slots__ = (
        "read_requests",
        "read_hits",
        "write_requests",
        "write_hits",
        "evictions",
        "admissions",
        "bypasses",
    )

    def __init__(self):
        self.read_requests = 0
        self.read_hits = 0
        self.write_requests = 0
        self.write_hits = 0
        self.evictions = 0
        self.admissions = 0
        self.bypasses = 0

    def on_outcome(self, request: IORequest, seq: int, outcome: AccessOutcome) -> None:
        if request.is_read:
            self.read_requests += 1
            if outcome.hit:
                self.read_hits += 1
        else:
            self.write_requests += 1
            if outcome.hit:
                self.write_hits += 1
        if outcome.admitted:
            self.admissions += 1
        if outcome.bypassed:
            self.bypasses += 1
        if outcome.evicted:
            self.evictions += len(outcome.evicted)

    def on_chunk(
        self,
        requests: Sequence[IORequest],
        seq_base: int,
        outcomes: Sequence[AccessOutcome],
    ) -> None:
        # Fused local-counter loop: this runs once per policy per chunk and
        # is the whole accounting cost of the stats-only replay path.
        rr = rh = wr = wh = ev = adm = byp = 0
        for request, outcome in zip(requests, outcomes):
            if request.is_read:
                rr += 1
                if outcome.hit:
                    rh += 1
            elif outcome.hit:
                wh += 1
            if outcome.admitted:
                adm += 1
            if outcome.bypassed:
                byp += 1
            if outcome.evicted:
                ev += len(outcome.evicted)
        self.read_requests += rr
        self.read_hits += rh
        self.write_requests += len(requests) - rr
        self.write_hits += wh
        self.evictions += ev
        self.admissions += adm
        self.bypasses += byp

    def on_batch(self, chunk: "ColumnarChunk", batch: "AccessOutcomeBatch") -> None:
        # Batch-native: whole-column popcounts replace the per-outcome loop.
        write = chunk.write
        hit = batch.hit
        wr = int(_np.count_nonzero(write))
        wh = int(_np.count_nonzero(hit & write))
        self.read_requests += len(chunk) - wr
        self.read_hits += int(_np.count_nonzero(hit)) - wh
        self.write_requests += wr
        self.write_hits += wh
        self.evictions += batch.eviction_count
        self.admissions += int(_np.count_nonzero(batch.admitted))
        self.bypasses += int(_np.count_nonzero(batch.bypassed))

    def merge(self, other: "StatsObserver") -> None:
        self.read_requests += other.read_requests
        self.read_hits += other.read_hits
        self.write_requests += other.write_requests
        self.write_hits += other.write_hits
        self.evictions += other.evictions
        self.admissions += other.admissions
        self.bypasses += other.bypasses

    def finalize(self) -> CacheStats:
        return CacheStats(
            read_requests=self.read_requests,
            read_hits=self.read_hits,
            write_requests=self.write_requests,
            write_hits=self.write_hits,
            evictions=self.evictions,
            admissions=self.admissions,
            bypasses=self.bypasses,
        )


class ShardStatsObserver(ReplayObserver):
    """Per-shard :class:`CacheStats` for sharded clusters.

    Routes every outcome with the cluster's own router — after the access,
    exactly like the sharded cost accumulator, so stateful routers have
    already made their assignment and re-routing is a pure lookup.  The
    cluster facade returns the routed shard's outcome unchanged, so
    attributing the whole event to that shard reconstructs what the shard's
    own accounting used to report.
    """

    __slots__ = ("_route", "_router", "_shards")

    def __init__(self, cluster: "ShardedCache"):
        self._router = cluster.router
        self._route = self._router.route
        self._shards = [CacheStats() for _ in range(cluster.shard_count)]

    def on_outcome(self, request: IORequest, seq: int, outcome: AccessOutcome) -> None:
        self._shards[self._route(request)].record_outcome(request, outcome)

    def on_chunk(
        self,
        requests: Sequence[IORequest],
        seq_base: int,
        outcomes: Sequence[AccessOutcome],
    ) -> None:
        route = self._route
        shards = self._shards
        for request, outcome in zip(requests, outcomes):
            shards[route(request)].record_outcome(request, outcome)

    def on_batch(self, chunk: "ColumnarChunk", batch: "AccessOutcomeBatch") -> None:
        # Batch-native: re-route the whole chunk with the router's column
        # kernel (post-access, so stateful routers resolve to pure lookups),
        # then fold per-shard masked popcounts.
        shard_ids = self._router.route_batch(chunk)
        write = chunk.write
        hit = batch.hit
        admitted = batch.admitted
        bypassed = batch.bypassed
        eviction_counts = _np.diff(batch.evicted_offsets)
        for s, stats in enumerate(self._shards):
            mask = shard_ids == s
            total = int(_np.count_nonzero(mask))
            if not total:
                continue
            wr = int(_np.count_nonzero(mask & write))
            wh = int(_np.count_nonzero(hit & mask & write))
            stats.read_requests += total - wr
            stats.read_hits += int(_np.count_nonzero(hit & mask)) - wh
            stats.write_requests += wr
            stats.write_hits += wh
            stats.admissions += int(_np.count_nonzero(admitted & mask))
            stats.bypasses += int(_np.count_nonzero(bypassed & mask))
            stats.evictions += int(eviction_counts[mask].sum())

    def merge(self, other: "ShardStatsObserver") -> None:
        self._shards = [
            mine.merge(theirs) for mine, theirs in zip(self._shards, other._shards)
        ]

    def finalize(self) -> tuple[CacheStats, ...]:
        from dataclasses import replace

        return tuple(replace(stats) for stats in self._shards)


def shard_observer_for(policy: object) -> ShardStatsObserver | None:
    """A :class:`ShardStatsObserver` for sharded clusters, else ``None``.

    Duck-types the cluster surface (``router`` + ``shard_count``), matching
    :meth:`CostModel.accumulator_for`, so any policy exposing it gets the
    per-shard breakdown on its results.
    """
    router = getattr(policy, "router", None)
    if (
        router is not None
        and hasattr(router, "route")
        and getattr(policy, "shard_count", 0) >= 1
    ):
        return ShardStatsObserver(policy)
    return None


class CostObserver(ReplayObserver):
    """Service-time pricing as an observer, wrapping a cost accumulator.

    The accumulator (:class:`~repro.simulation.costmodel.CostAccumulator` or
    its sharded variant) stays the pricing kernel; this observer feeds it
    the ``(request, hit)`` series in stream order, which preserves the
    seek-aware head walk bit for bit.  Segment merging folds the finalized
    :class:`LatencyStats` — exact for position-independent devices; on seek
    devices each segment's first access is priced at the nominal seek (the
    same convention as any fresh run).
    """

    __slots__ = ("_accumulator", "_merged")

    def __init__(self, accumulator: "CostAccumulator"):
        self._accumulator = accumulator
        self._merged: list[CostObserver] = []

    def on_outcome(self, request: IORequest, seq: int, outcome: AccessOutcome) -> None:
        self._accumulator.charge(request, outcome.hit)

    def on_chunk(
        self,
        requests: Sequence[IORequest],
        seq_base: int,
        outcomes: Sequence[AccessOutcome],
    ) -> None:
        charge = self._accumulator.charge
        for request, outcome in zip(requests, outcomes):
            charge(request, outcome.hit)

    def on_batch(self, chunk: "ColumnarChunk", batch: "AccessOutcomeBatch") -> None:
        accumulator = self._accumulator
        if getattr(accumulator, "class_counting", False):
            # Position-independent pricing: fold whole-chunk class counts.
            write = chunk.write
            hit = batch.hit
            writes = int(_np.count_nonzero(write))
            read_hits = int(_np.count_nonzero(hit & ~write))
            accumulator.charge_counts(
                read_hits, len(chunk) - writes - read_hits, writes
            )
            return
        # Seek-aware (or sharded seek-aware) accumulators need the exact
        # per-request head walk: materialise and run the scalar loop.
        super().on_batch(chunk, batch)

    def merge(self, other: "CostObserver") -> None:
        self._merged.append(other)

    def finalize(self) -> "LatencyStats":
        latency = self._accumulator.finalize()
        for observer in self._merged:
            latency = latency.merge(observer._accumulator.finalize())
        return latency

    def shard_latencies(self) -> tuple["LatencyStats", ...]:
        """Per-shard latency breakdown (after :meth:`finalize`); empty for
        single-device accumulators."""
        own = self._accumulator.shard_latencies()
        if not own or not self._merged:
            return own
        merged = list(own)
        for observer in self._merged:
            for index, shard in enumerate(observer._accumulator.shard_latencies()):
                merged[index] = merged[index].merge(shard)
        return tuple(merged)


class RollingObserver(ReplayObserver):
    """Windowed time series (:class:`RollingMetrics`) from outcome counts.

    Windows are aligned to absolute sequence numbers (window *i* covers
    ``[i*W, (i+1)*W)``); the first and last windows of a segment may be
    partial, and :meth:`merge` rejoins halves split across segments — the
    same mergeability contract :class:`RollingMetrics` pins.  Declares
    ``boundary_interval = window`` so the replay loop aligns its chunks and
    every boundary crossing reaches :meth:`on_chunk_end`.
    """

    __slots__ = ("_window", "_start", "_seq", "_counts", "_windows")

    def __init__(self, window: int, start_seq: int = 0):
        from repro.simulation.metrics import validate_rolling_window

        self._window = validate_rolling_window(window)
        self.boundary_interval = self._window
        self._start = start_seq
        self._seq = start_seq
        # [read_requests, read_hits, write_requests, write_hits, evictions]
        self._counts = [0, 0, 0, 0, 0]
        self._windows: list = []

    def _close(self, boundary: int) -> None:
        from repro.simulation.metrics import RollingWindow

        rr, rh, wr, wh, ev = self._counts
        self._windows.append(
            RollingWindow(
                start=self._start,
                requests=rr + wr,
                read_requests=rr,
                read_hits=rh,
                write_requests=wr,
                write_hits=wh,
                evictions=ev,
            )
        )
        self._counts = [0, 0, 0, 0, 0]
        self._start = boundary

    def on_outcome(self, request: IORequest, seq: int, outcome: AccessOutcome) -> None:
        boundary = seq - (seq % self._window)
        if boundary > self._start:
            self._close(boundary)
        counts = self._counts
        if request.is_read:
            counts[0] += 1
            if outcome.hit:
                counts[1] += 1
        else:
            counts[2] += 1
            if outcome.hit:
                counts[3] += 1
        if outcome.evicted:
            counts[4] += len(outcome.evicted)
        self._seq = seq + 1

    def on_chunk(
        self,
        requests: Sequence[IORequest],
        seq_base: int,
        outcomes: Sequence[AccessOutcome],
    ) -> None:
        # The replay loop aligns chunks to ``boundary_interval``, so the
        # outer loop normally runs exactly once; chunks from a direct driver
        # may straddle boundaries and are split here.
        window = self._window
        length = len(requests)
        offset = 0
        while offset < length:
            seq = seq_base + offset
            boundary = seq - (seq % window)
            if boundary > self._start:
                self._close(boundary)
            take = min(window - (seq % window), length - offset)
            rr = rh = wr = wh = ev = 0
            for index in range(offset, offset + take):
                request = requests[index]
                outcome = outcomes[index]
                if request.is_read:
                    rr += 1
                    if outcome.hit:
                        rh += 1
                else:
                    wr += 1
                    if outcome.hit:
                        wh += 1
                if outcome.evicted:
                    ev += len(outcome.evicted)
            counts = self._counts
            counts[0] += rr
            counts[1] += rh
            counts[2] += wr
            counts[3] += wh
            counts[4] += ev
            offset += take
            self._seq = seq + take

    def on_batch(self, chunk: "ColumnarChunk", batch: "AccessOutcomeBatch") -> None:
        # Batch-native: the same window segmentation as on_chunk, with each
        # segment folded by column popcounts instead of a per-request loop.
        window = self._window
        length = len(chunk)
        write = chunk.write
        hit = batch.hit
        offsets = batch.evicted_offsets
        seq_base = chunk.seq_base
        offset = 0
        while offset < length:
            seq = seq_base + offset
            boundary = seq - (seq % window)
            if boundary > self._start:
                self._close(boundary)
            take = min(window - (seq % window), length - offset)
            end = offset + take
            write_seg = write[offset:end]
            hit_seg = hit[offset:end]
            wr = int(_np.count_nonzero(write_seg))
            wh = int(_np.count_nonzero(hit_seg & write_seg))
            counts = self._counts
            counts[0] += take - wr
            counts[1] += int(_np.count_nonzero(hit_seg)) - wh
            counts[2] += wr
            counts[3] += wh
            counts[4] += int(offsets[end] - offsets[offset])
            offset = end
            self._seq = seq + take

    def on_chunk_end(self, seq_end: int) -> None:
        if seq_end % self._window == 0 and seq_end > self._start:
            self._close(seq_end)

    def merge(self, other: "RollingObserver") -> None:
        combined = self.finalize().merge(other.finalize())
        self._windows = list(combined.windows)
        self._counts = [0, 0, 0, 0, 0]
        self._start = other._seq
        self._seq = other._seq

    def finalize(self) -> "RollingMetrics":
        from repro.simulation.metrics import RollingMetrics

        windows = list(self._windows)
        if self._seq > self._start:
            rr, rh, wr, wh, ev = self._counts
            from repro.simulation.metrics import RollingWindow

            windows.append(
                RollingWindow(
                    start=self._start,
                    requests=rr + wr,
                    read_requests=rr,
                    read_hits=rh,
                    write_requests=wr,
                    write_hits=wh,
                    evictions=ev,
                )
            )
        return RollingMetrics(window=self._window, windows=tuple(windows))
