"""Open-loop queueing simulation: latency under offered load.

The cost model (:mod:`repro.simulation.costmodel`) prices each request in
isolation — a *closed-loop* view with no contention.  This module adds the
*open-loop* view: requests arrive on their own clock (an
:class:`~repro.workloads.arrivals.ArrivalProcess`), each storage shard is
an FCFS queue in front of ``servers_per_shard`` servers, and a request's
latency is its **sojourn time** — the queueing delay it spends waiting for
a free server plus the service time the cost model already charges.  As
offered load approaches a shard's service capacity, delays blow up: the
saturation knee the ``load`` experiment sweeps.

The simulation is event-driven but needs no event loop: with FCFS service
and arrival-ordered admission, each arrival is resolved by the Lindley
recursion ``start = max(arrival, earliest_free_server)``.  All event
arithmetic runs on an **integer nanosecond** clock: integer addition and
``max`` are exact and associative, so totals never depend on chunk
boundaries, worker counts, or whether the vectorised fast path below is
taken — results are bit-identical across processes and ``jobs=`` counts
by construction, not by accumulation-order discipline.

Two accounting identities replace per-event integral bookkeeping: the
fully drained number-in-system integral equals ``sum(sojourn_i)``
exactly, and the integral cut at the last arrival ``T`` (the ``L``
numerator of Little's law) is ``sum(sojourn_i) - sum(max(0, d_i - T))``
over departure times ``d_i`` — so the hot loop only records departures.

When numpy is available, single-server position-independent replays (the
whole default ``load`` sweep) run the Lindley recursion vectorised per
chunk: with service prefix sums ``S_i`` the recursion unrolls to
``depart_i = S_i + max(busy_0, max_{j<=i}(t_j - S_{j-1}))`` — a cumsum
plus a running maximum, exact in ``int64``.  The scalar fallback produces
the same integers bit for bit; numpy is an accelerator, never a
dependency.

It is packaged as a :class:`ReplayObserver` (:class:`QueueingObserver`):
the replay loop feeds it the outcome stream, it prices each outcome with
its **own** cost accumulators (one per shard, so seek devices keep one
head per shard exactly like :class:`~repro.simulation.costmodel
.ShardedCostAccumulator`) and never touches the policy or the requests —
attaching it cannot change hit/miss stats or service-time accounting.
Sharded clusters are re-routed with the cluster's own router, matching
:class:`~repro.simulation.observers.ShardStatsObserver`.  Observers of
one replay run share an :class:`arrival tape <_ArrivalTape>`: the engine
feeds every policy identical chunks in order, so the chunk's arrival
timestamps are drawn once and reused by all policies.

Segment merging (``merge``) follows the :class:`~repro.simulation
.observers.CostObserver` convention: the arrival clock continues exactly
(arrival times are absolute functions of the sequence number), but each
segment's queues start idle — the same "fresh run" approximation the cost
observer uses for its seek head.  Whole-stream replays (every sweep cell
runs inside one worker) never merge, so the ``load`` experiment is exact.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field, replace
from heapq import heapreplace
from typing import TYPE_CHECKING, Any, Sequence

try:  # optional acceleration; the scalar path is bit-identical
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.simulation.costmodel import (
    HISTOGRAM_BUCKET_BOUNDS_US,
    WRITE_POLICIES,
    CostModel,
    DeviceProfile,
    make_device_profile,
)
from repro.simulation.cluster import HashRouter
from repro.simulation.observers import ReplayObserver
from repro.simulation.request import RequestKind, read_request, write_request
from repro.workloads.arrivals import ArrivalProcess

if TYPE_CHECKING:  # imported for type annotations only
    from repro.cache.base import AccessOutcome, AccessOutcomeBatch, CachePolicy
    from repro.simulation.request import IORequest
    from repro.trace.columnar import ColumnarChunk

__all__ = [
    "QueueingModel",
    "QueueingObserver",
    "QueueingStats",
]

_LAST_BUCKET = len(HISTOGRAM_BUCKET_BOUNDS_US) - 1
#: The shared bucket bounds on the integer nanosecond clock.  Strictly
#: increasing (the bounds grow 1.3x from 500ns), so bucketisation by
#: ``bisect_left`` over integers matches the microsecond convention.
_BOUNDS_NS: tuple[int, ...] = tuple(
    int(bound * 1000.0 + 0.5) for bound in HISTOGRAM_BUCKET_BOUNDS_US
)
_BOUNDS_NS_ARRAY = None if _np is None else _np.array(_BOUNDS_NS, dtype=_np.int64)

#: Throwaway requests used to probe a device's constant price classes.
_PROBE_READ = read_request(page=0)
_PROBE_WRITE = write_request(page=0)


def _to_ns(latency_us: float) -> int:
    """A microsecond service/arrival time on the integer nanosecond clock."""
    return int(latency_us * 1000.0 + 0.5)


def _histogram_percentile(histogram: Sequence[int], count: int, quantile: float) -> float:
    """Bucket-bound quantile, same convention as ``LatencyStats``: the upper
    bound of the bucket the quantile falls in; 0.0 with nothing recorded."""
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    if count == 0:
        return 0.0
    rank = quantile * count
    cumulative = 0
    for index, bucket in enumerate(histogram):
        cumulative += bucket
        if cumulative >= rank and bucket:
            return HISTOGRAM_BUCKET_BOUNDS_US[index]
    return HISTOGRAM_BUCKET_BOUNDS_US[_LAST_BUCKET]


def _fresh_histogram() -> list[int]:
    return [0] * len(HISTOGRAM_BUCKET_BOUNDS_US)


@dataclass
class QueueingStats:
    """Queueing accounting for one simulation run of one policy.

    Times are integer nanoseconds on the arrival clock (0 = stream start);
    every reporting accessor converts to microseconds.  ``servers`` is the
    fleet total (shards x servers per shard).  The two histograms share
    the cost model's bucketisation
    (:data:`~repro.simulation.costmodel.HISTOGRAM_BUCKET_BOUNDS_US`),
    whose leading exact-zero bucket keeps "no queueing" reporting as 0.0.

    The fully drained number-in-system integral is identically
    ``total_sojourn_ns`` (work conservation — every request contributes
    exactly its sojourn to the area under ``N(t)``);
    ``area_at_last_arrival_ns`` is the same integral cut at the last
    arrival, the ``L`` numerator of Little's law over the observed window.
    """

    request_count: int = 0
    servers: int = 1
    total_delay_ns: int = 0
    total_sojourn_ns: int = 0
    total_service_ns: int = 0
    first_arrival_ns: int = 0
    last_arrival_ns: int = 0
    last_departure_ns: int = 0
    area_at_last_arrival_ns: int = 0
    delay_histogram: list[int] = field(default_factory=_fresh_histogram)
    sojourn_histogram: list[int] = field(default_factory=_fresh_histogram)

    # ------------------------------------------------------------- accessors
    @property
    def total_delay_us(self) -> float:
        return self.total_delay_ns / 1000.0

    @property
    def total_sojourn_us(self) -> float:
        return self.total_sojourn_ns / 1000.0

    @property
    def total_service_us(self) -> float:
        return self.total_service_ns / 1000.0

    @property
    def first_arrival_us(self) -> float:
        return self.first_arrival_ns / 1000.0

    @property
    def last_arrival_us(self) -> float:
        return self.last_arrival_ns / 1000.0

    @property
    def last_departure_us(self) -> float:
        return self.last_departure_ns / 1000.0

    @property
    def area_at_last_arrival_us(self) -> float:
        return self.area_at_last_arrival_ns / 1000.0

    @property
    def mean_queue_delay_us(self) -> float:
        if self.request_count == 0:
            return 0.0
        return self.total_delay_ns / self.request_count / 1000.0

    @property
    def mean_sojourn_us(self) -> float:
        if self.request_count == 0:
            return 0.0
        return self.total_sojourn_ns / self.request_count / 1000.0

    @property
    def mean_service_us(self) -> float:
        if self.request_count == 0:
            return 0.0
        return self.total_service_ns / self.request_count / 1000.0

    def delay_percentile(self, quantile: float) -> float:
        return _histogram_percentile(self.delay_histogram, self.request_count, quantile)

    def sojourn_percentile(self, quantile: float) -> float:
        return _histogram_percentile(
            self.sojourn_histogram, self.request_count, quantile
        )

    @property
    def p50_queue_delay_us(self) -> float:
        return self.delay_percentile(0.50)

    @property
    def p99_queue_delay_us(self) -> float:
        return self.delay_percentile(0.99)

    @property
    def p50_sojourn_us(self) -> float:
        return self.sojourn_percentile(0.50)

    @property
    def p99_sojourn_us(self) -> float:
        return self.sojourn_percentile(0.99)

    @property
    def arrival_rate_rps(self) -> float:
        """Measured arrival rate over the observed window (requests/second)."""
        if self.request_count == 0 or self.last_arrival_ns <= 0:
            return 0.0
        return self.request_count / self.last_arrival_ns * 1e9

    @property
    def utilization(self) -> float:
        """Mean fraction of the fleet's servers busy until the last departure."""
        if self.request_count == 0 or self.last_departure_ns <= 0:
            return 0.0
        return self.total_service_ns / (self.servers * self.last_departure_ns)

    @property
    def mean_in_system(self) -> float:
        """Time-average number of requests in the system up to the last
        arrival — the ``L`` of Little's law (``L = lambda W``)."""
        if self.request_count == 0 or self.last_arrival_ns <= 0:
            return 0.0
        return self.area_at_last_arrival_ns / self.last_arrival_ns

    # ------------------------------------------------------------ composition
    def merge(self, other: "QueueingStats") -> "QueueingStats":
        """Aggregate two segments (or shards) into one stats object.

        Counts, sums, histograms and areas add (exactly — everything is an
        integer); the window is the union.  Segment merges inherit the
        idle-at-segment-start convention of the producing observers (see
        the module docstring).
        """
        if self.servers != other.servers:
            raise ValueError(
                f"cannot merge QueueingStats with different server counts "
                f"({self.servers} vs {other.servers})"
            )
        if len(self.delay_histogram) != len(other.delay_histogram):
            raise ValueError(
                "cannot merge QueueingStats with different histogram sizes "
                f"({len(self.delay_histogram)} vs {len(other.delay_histogram)})"
            )
        if self.request_count == 0:
            first_arrival = other.first_arrival_ns
        elif other.request_count == 0:
            first_arrival = self.first_arrival_ns
        else:
            first_arrival = min(self.first_arrival_ns, other.first_arrival_ns)
        return QueueingStats(
            request_count=self.request_count + other.request_count,
            servers=self.servers,
            total_delay_ns=self.total_delay_ns + other.total_delay_ns,
            total_sojourn_ns=self.total_sojourn_ns + other.total_sojourn_ns,
            total_service_ns=self.total_service_ns + other.total_service_ns,
            first_arrival_ns=first_arrival,
            last_arrival_ns=max(self.last_arrival_ns, other.last_arrival_ns),
            last_departure_ns=max(self.last_departure_ns, other.last_departure_ns),
            area_at_last_arrival_ns=(
                self.area_at_last_arrival_ns + other.area_at_last_arrival_ns
            ),
            delay_histogram=[
                a + b for a, b in zip(self.delay_histogram, other.delay_histogram)
            ],
            sojourn_histogram=[
                a + b for a, b in zip(self.sojourn_histogram, other.sojourn_histogram)
            ],
        )

    def report_columns(self) -> dict:
        """The queueing columns every row-level surface emits, next to the
        cost model's service-time columns."""
        return {
            "arrival_rate_rps": self.arrival_rate_rps,
            "mean_queue_delay_us": self.mean_queue_delay_us,
            "p50_queue_delay_us": self.p50_queue_delay_us,
            "p99_queue_delay_us": self.p99_queue_delay_us,
            "p50_sojourn_us": self.p50_sojourn_us,
            "p99_sojourn_us": self.p99_sojourn_us,
            "utilization": self.utilization,
        }

    def as_dict(self) -> dict:
        row = self.report_columns()
        row["requests"] = self.request_count
        row["servers"] = self.servers
        row["mean_sojourn_us"] = self.mean_sojourn_us
        row["mean_service_us"] = self.mean_service_us
        row["last_departure_us"] = self.last_departure_us
        return row


@dataclass(frozen=True)
class QueueingModel:
    """Picklable, hashable configuration of one open-loop queueing run.

    Carries the arrival process plus the cost-model *parameters* (not a
    :class:`CostModel` instance — those are mutable), so sweep cells can
    hash and ship it to worker processes exactly like a
    :class:`~repro.trace.cache.TraceSpec`.  Each shard of a sharded
    cluster gets ``servers_per_shard`` servers and its own device (and,
    for seek devices, its own head); an unsharded policy is one shard.
    """

    arrivals: ArrivalProcess
    device: str | DeviceProfile = "ssd"
    write_policy: str = "write-through"
    page_span: int | None = None
    servers_per_shard: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.arrivals, ArrivalProcess):
            raise TypeError(
                f"arrivals must be an ArrivalProcess, got {type(self.arrivals).__name__}"
            )
        if self.servers_per_shard < 1:
            raise ValueError(
                f"servers_per_shard must be >= 1, got {self.servers_per_shard}"
            )
        if self.write_policy not in WRITE_POLICIES:
            raise ValueError(
                f"unknown write policy {self.write_policy!r}; available: {WRITE_POLICIES}"
            )
        make_device_profile(self.device)  # validate the device name eagerly

    def cost_model(self) -> CostModel:
        """A fresh service-time pricer with this model's parameters."""
        return CostModel(
            device=self.device,
            write_policy=self.write_policy,
            page_span=self.page_span,
        )

    def scaled(self, factor: float) -> "QueueingModel":
        """The same model with the offered load dialed by *factor*."""
        return replace(self, arrivals=self.arrivals.scaled(factor))

    def tape(self, start_seq: int = 0) -> "_ArrivalTape":
        """An arrival tape all observers of one replay run should share."""
        return _ArrivalTape(self.arrivals, start_seq)

    def observer_for(
        self,
        policy: "CachePolicy",
        start_seq: int = 0,
        tape: "_ArrivalTape | None" = None,
    ) -> "QueueingObserver":
        return QueueingObserver(self, policy, start_seq, tape=tape)


def _mix_column(pages: Any) -> Any:
    """Murmur-mix a ``uint64`` page column (exactly the scalar ``_mix_page``
    pipeline of :class:`~repro.simulation.cluster.HashRouter`, wrapping)."""
    pages = (pages ^ (pages >> _np.uint64(33))) * _np.uint64(0xFF51AFD7ED558CCD)
    pages = (pages ^ (pages >> _np.uint64(33))) * _np.uint64(0xC4CEB9FE1A85EC53)
    return pages ^ (pages >> _np.uint64(33))


class _ArrivalTape:
    """Per-run cache of each chunk's arrival/request columns.

    The replay engine feeds every policy the same chunks in sequence, so
    all :class:`QueueingObserver` instances of one run share one arrival
    clock: the first observer to see a chunk materialises its columns —
    arrival timestamps on the integer nanosecond clock, plus which
    requests are reads — and the rest reuse them.  Sequence-indexed
    arrival processes make the sharing exact; observers created without
    an explicit tape get a private one and behave identically.
    """

    __slots__ = (
        "_times",
        "_next_seq",
        "_chunk_seq",
        "_arrivals_ns",
        "_reads",
        "_mixed_pages",
    )

    def __init__(self, arrivals: ArrivalProcess, start_seq: int = 0):
        self._times = arrivals.times(start_seq)
        self._next_seq = start_seq
        self._chunk_seq = -1
        self._arrivals_ns: "Sequence[int] | None" = None
        self._reads: "Sequence[bool] | None" = None
        self._mixed_pages = None

    def columns(
        self, seq_base: int, requests: Sequence["IORequest"]
    ) -> tuple[Sequence[int], Sequence[bool]]:
        n = len(requests)
        if seq_base == self._chunk_seq and len(self._arrivals_ns) == n:
            return self._arrivals_ns, self._reads
        if seq_base != self._next_seq:
            raise ValueError(
                "observers sharing an arrival tape must consume identical "
                f"chunks in order (expected seq {self._next_seq}, got {seq_base})"
            )
        read = RequestKind.READ
        if _np is not None:
            # Elementwise multiply/add then truncate: per value exactly
            # ``int(t * 1000.0 + 0.5)``, the scalar conversion below.
            times_us = _np.fromiter(self._times, _np.float64, n)
            arrivals_ns = (times_us * 1000.0 + 0.5).astype(_np.int64)
            reads = _np.fromiter(
                (request.kind is read for request in requests), _np.bool_, n
            )
        else:
            next_time = self._times.__next__
            arrivals_ns = [int(next_time() * 1000.0 + 0.5) for _ in range(n)]
            reads = [request.kind is read for request in requests]
        self._arrivals_ns = arrivals_ns
        self._reads = reads
        self._mixed_pages = None
        self._chunk_seq = seq_base
        self._next_seq = seq_base + n
        return arrivals_ns, reads

    def columns_columnar(self, chunk: "ColumnarChunk") -> tuple[Any, Any]:
        """Columnar twin of :meth:`columns`: arrivals from the same shared
        clock, reads straight off the chunk's write column — no request
        objects.  One run may mix both flavours on the same chunk (the
        engine dispatches per policy), so the per-chunk cache is shared:
        whichever flavour sees the chunk first materialises, the values are
        identical either way."""
        n = len(chunk)
        seq_base = chunk.seq_base
        if seq_base == self._chunk_seq and len(self._arrivals_ns) == n:
            return self._arrivals_ns, self._reads
        if seq_base != self._next_seq:
            raise ValueError(
                "observers sharing an arrival tape must consume identical "
                f"chunks in order (expected seq {self._next_seq}, got {seq_base})"
            )
        times_us = _np.fromiter(self._times, _np.float64, n)
        arrivals_ns = (times_us * 1000.0 + 0.5).astype(_np.int64)
        reads = ~chunk.write
        self._arrivals_ns = arrivals_ns
        self._reads = reads
        self._mixed_pages = None
        self._chunk_seq = seq_base
        self._next_seq = seq_base + n
        return arrivals_ns, reads

    def mixed_pages(self, requests: Sequence["IORequest"]) -> Any:
        """The murmur-mixed page ids of the current chunk (``uint64``).

        :class:`~repro.simulation.cluster.HashRouter` routes via
        ``mix(page) % shards``; the mix is shard-count-independent, so one
        shared column serves every hash-routed cluster in the run.  The
        wrapping uint64 pipeline is exact — identical to the scalar
        ``_mix_page`` — and only the numpy fast path calls this."""
        if self._mixed_pages is None:
            pages = _np.fromiter(
                (request.page for request in requests), _np.uint64, len(requests)
            )
            self._mixed_pages = _mix_column(pages)
        return self._mixed_pages

    def mixed_pages_columnar(self, chunk: "ColumnarChunk") -> Any:
        """Columnar twin of :meth:`mixed_pages` (same shared cache)."""
        if self._mixed_pages is None:
            self._mixed_pages = _mix_column(chunk.page.astype(_np.uint64))
        return self._mixed_pages


class _SingleServerQueue:
    """One FCFS shard with a single server: scalar Lindley recursion."""

    __slots__ = ("busy_ns",)
    servers = 1

    def __init__(self):
        self.busy_ns = 0

    def admit(self, t_ns: int, service_ns: int) -> int:
        """Admit an arrival at *t_ns* needing *service_ns*; return its
        queueing delay (ns)."""
        busy = self.busy_ns
        start = busy if busy > t_ns else t_ns
        self.busy_ns = start + service_ns
        return start - t_ns

    def last_departure_ns(self) -> int:
        return self.busy_ns


class _MultiServerQueue:
    """One FCFS shard with ``c`` servers: min-heap of busy-until times.

    Arrivals are assigned to the earliest-free server in arrival order
    (G/G/c FCFS).  Always the scalar path — multi-server recursions do
    not unroll into prefix scans — so numpy presence cannot matter.
    """

    __slots__ = ("servers", "busy")

    def __init__(self, servers: int):
        self.servers = servers
        self.busy = [0] * servers

    def admit(self, t_ns: int, service_ns: int) -> int:
        earliest = self.busy[0]
        start = earliest if earliest > t_ns else t_ns
        heapreplace(self.busy, start + service_ns)
        return start - t_ns

    def last_departure_ns(self) -> int:
        return max(self.busy)


class QueueingObserver(ReplayObserver):
    """Feeds the outcome stream through per-shard FCFS queues.

    Per outcome, in stream order: read the arrival timestamp from the
    (possibly shared) arrival tape, price the service time, resolve the
    Lindley recursion against the routed shard's servers, and record
    queueing delay + sojourn into the shared-bucket histograms.  Never
    mutates requests, outcomes or the policy.

    Position-independent devices price by outcome class, so their service
    times come from three probed constants; seek devices (HDD) price each
    event through this observer's own per-shard cost accumulators.  With
    numpy available, single-server constant-price replays take the
    vectorised chunk path; both paths produce identical integers.
    """

    __slots__ = (
        "_model",
        "_route",
        "_router",
        "_shard_count",
        "_tape",
        "_queues",
        "_pricers",
        "_service_ns",
        "_vector",
        "_arrival_chunks",
        "_read_chunks",
        "_hit_chunks",
        "_shard_chunks",
        "_departs",
        "_count",
        "_total_delay_ns",
        "_total_sojourn_ns",
        "_total_service_ns",
        "_first_ns",
        "_last_ns",
        "_delay_hist",
        "_sojourn_hist",
        "_merged",
        "_finalized",
    )

    def __init__(
        self,
        model: QueueingModel,
        policy: "CachePolicy",
        start_seq: int = 0,
        tape: "_ArrivalTape | None" = None,
    ):
        self._model = model
        cost_model = model.cost_model()
        router = getattr(policy, "router", None)
        if (
            router is not None
            and hasattr(router, "route")
            and getattr(policy, "shard_count", 0) >= 1
        ):
            self._shard_count = policy.shard_count
            self._route = router.route
            self._router = router
        else:
            self._shard_count = 1
            self._route = None
            self._router = None
        shard_count = self._shard_count
        servers = model.servers_per_shard
        if cost_model.profile.position_dependent:
            # Seek devices: one accumulator (head) per shard, priced per event.
            self._service_ns = None
            self._pricers = [cost_model.accumulator() for _ in range(shard_count)]
        else:
            # Three price classes; probing price() keeps the constants
            # byte-for-byte what per-event pricing would produce.
            probe = cost_model.accumulator()
            self._service_ns = (
                _to_ns(probe.price(_PROBE_READ, True)),
                _to_ns(probe.price(_PROBE_READ, False)),
                _to_ns(probe.price(_PROBE_WRITE, False)),
            )
            self._pricers = []
        self._vector = (
            _np is not None and servers == 1 and self._service_ns is not None
        )
        if self._vector:
            self._queues = []
            self._delay_hist = None
            self._sojourn_hist = None
        else:
            if servers == 1:
                self._queues = [_SingleServerQueue() for _ in range(shard_count)]
            else:
                self._queues = [_MultiServerQueue(servers) for _ in range(shard_count)]
            self._delay_hist = _fresh_histogram()
            self._sojourn_hist = _fresh_histogram()
        self._arrival_chunks: list = []
        self._read_chunks: list = []
        self._hit_chunks: list = []
        self._shard_chunks: list = []
        self._tape = tape if tape is not None else _ArrivalTape(model.arrivals, start_seq)
        self._departs: list = []
        self._count = 0
        self._total_delay_ns = 0
        self._total_sojourn_ns = 0
        self._total_service_ns = 0
        self._first_ns: int | None = None
        self._last_ns = 0
        self._merged: list[QueueingObserver] = []
        self._finalized: QueueingStats | None = None

    def on_outcome(self, request: "IORequest", seq: int, outcome: "AccessOutcome") -> None:
        self.on_chunk((request,), seq, (outcome,))

    def on_chunk(
        self,
        requests: Sequence["IORequest"],
        seq_base: int,
        outcomes: Sequence["AccessOutcome"],
    ) -> None:
        if not requests:
            return
        arrivals_ns, reads = self._tape.columns(seq_base, requests)
        if self._first_ns is None:
            self._first_ns = int(arrivals_ns[0])
        if self._vector:
            self._chunk_vector(requests, outcomes, arrivals_ns, reads)
        else:
            self._chunk_scalar(requests, outcomes, arrivals_ns)
        self._count += len(requests)
        self._last_ns = int(arrivals_ns[-1])

    def on_batch(self, chunk: "ColumnarChunk", batch: "AccessOutcomeBatch") -> None:
        if not len(chunk):
            return
        if not self._vector:
            # Seek devices and multi-server shards need the per-event scalar
            # walk: materialise the chunk and take the on_chunk path.
            super().on_batch(chunk, batch)
            return
        # Vector mode banks columns for the finalize-time Lindley pass; on
        # the columnar path every column already exists — nothing is
        # materialised.
        arrivals_ns, reads = self._tape.columns_columnar(chunk)
        if self._first_ns is None:
            self._first_ns = int(arrivals_ns[0])
        self._arrival_chunks.append(arrivals_ns)
        self._read_chunks.append(reads)
        self._hit_chunks.append(batch.hit)
        if self._route is not None:
            if type(self._router) is HashRouter:
                self._shard_chunks.append(self._tape.mixed_pages_columnar(chunk))
            else:
                self._shard_chunks.append(self._router.route_batch(chunk))
        self._count += len(chunk)
        self._last_ns = int(arrivals_ns[-1])

    # ------------------------------------------------------------ chunk paths
    def _chunk_vector(
        self,
        requests: Sequence["IORequest"],
        outcomes: Sequence["AccessOutcome"],
        arrivals_ns: Sequence[int],
        reads: Sequence[bool],
    ) -> None:
        """Bank one chunk's columns for the finalize-time vector pass.

        The integer Lindley recursion is chunk-boundary-free, so nothing
        per-chunk depends on queue state: the only column that must be
        captured while the outcome objects are alive is the hit flags.
        Everything else (pricing, recursion, totals, histograms) runs once
        over the whole concatenated series in :meth:`_finalize_own`, which
        replaces dozens of small-array numpy calls with a handful of large
        ones; the arrival/read/mixed-page columns are appended as shared
        references to the tape's arrays, not copies.
        """
        np = _np
        n = len(requests)
        self._arrival_chunks.append(arrivals_ns)
        self._read_chunks.append(reads)
        self._hit_chunks.append(
            np.fromiter((outcome.hit for outcome in outcomes), np.bool_, n)
        )
        if self._route is not None:
            if type(self._router) is HashRouter:
                self._shard_chunks.append(self._tape.mixed_pages(requests))
            else:
                self._shard_chunks.append(
                    np.fromiter(
                        (self._route(request) for request in requests),
                        np.int64,
                        n,
                    )
                )

    def _chunk_scalar(
        self,
        requests: Sequence["IORequest"],
        outcomes: Sequence["AccessOutcome"],
        arrivals_ns: Sequence[int],
    ) -> None:
        """One chunk through the scalar queues (no numpy, seek devices, or
        multi-server shards).  Same integers as the vector path."""
        if _np is not None and not isinstance(arrivals_ns, list):
            arrivals_ns = arrivals_ns.tolist()
        consts = self._service_ns
        if consts is not None:
            hit_ns, miss_ns, write_ns = consts
        route = self._route
        queues = self._queues
        pricers = self._pricers
        read = RequestKind.READ
        bounds = _BOUNDS_NS
        last_bucket = _LAST_BUCKET
        bisect = bisect_left
        delay_hist = self._delay_hist
        sojourn_hist = self._sojourn_hist
        departs_append = self._departs.append
        total_delay = 0
        total_sojourn = 0
        total_service = 0
        for t_ns, request, outcome in zip(arrivals_ns, requests, outcomes):
            shard = route(request) if route is not None else 0
            if consts is not None:
                if request.kind is read:
                    service = hit_ns if outcome.hit else miss_ns
                else:
                    service = write_ns
            else:
                service = int(pricers[shard].price(request, outcome.hit) * 1000.0 + 0.5)
            delay = queues[shard].admit(t_ns, service)
            sojourn = delay + service
            departs_append(t_ns + sojourn)
            total_delay += delay
            total_sojourn += sojourn
            total_service += service
            index = bisect(bounds, delay)
            delay_hist[index if index < last_bucket else last_bucket] += 1
            index = bisect(bounds, sojourn)
            sojourn_hist[index if index < last_bucket else last_bucket] += 1
        self._total_delay_ns += total_delay
        self._total_sojourn_ns += total_sojourn
        self._total_service_ns += total_service

    # ------------------------------------------------------------ composition
    def merge(self, other: "QueueingObserver") -> None:
        if other._model != self._model:
            raise ValueError("cannot merge QueueingObservers of different models")
        self._merged.append(other)

    def _replay_vector(self) -> tuple[Any, Any, Any, Any, int]:
        """The banked chunks through the int64 Lindley recursion, whole.

        Returns ``(delay, sojourn, depart, service, last_departure_ns)``
        arrays over the full segment (sharded segments return them grouped
        by shard — the per-event order is irrelevant to every consumer:
        totals, histograms and the departure overhang are all
        order-independent sums).
        """
        np = _np
        hit_ns, miss_ns, write_ns = self._service_ns
        arrivals = np.concatenate(self._arrival_chunks)
        reads = np.concatenate(self._read_chunks)
        hits = np.concatenate(self._hit_chunks)
        service = np.where(reads, np.where(hits, hit_ns, miss_ns), write_ns)
        if self._route is None:
            prefix = np.cumsum(service)
            running = np.maximum.accumulate(arrivals - prefix + service)
            depart = prefix + np.maximum(running, 0)
            delay = depart - service - arrivals
            sojourn = depart - arrivals
            return delay, sojourn, depart, service, int(depart[-1])
        shard_ids = np.concatenate(self._shard_chunks)
        if type(self._router) is HashRouter:
            # mix(page) % shards, on the mixed pages banked from the shared
            # tape; uint64 modulo matches the scalar route() bit for bit.
            shard_ids = (shard_ids % np.uint64(self._shard_count)).astype(np.int64)
        delays, sojourns, departs = [], [], []
        last_departure = 0
        for shard in range(self._shard_count):
            mask = shard_ids == shard
            if not mask.any():
                continue
            t_shard = arrivals[mask]
            s_shard = service[mask]
            prefix = np.cumsum(s_shard)
            running = np.maximum.accumulate(t_shard - prefix + s_shard)
            d_shard = prefix + np.maximum(running, 0)
            last_departure = max(last_departure, int(d_shard[-1]))
            delays.append(d_shard - s_shard - t_shard)
            sojourns.append(d_shard - t_shard)
            departs.append(d_shard)
        return (
            np.concatenate(delays),
            np.concatenate(sojourns),
            np.concatenate(departs),
            service,
            last_departure,
        )

    def _finalize_own(self) -> QueueingStats:
        """Fold this segment into stats via the two accounting identities
        (cached so finalize stays repeatable)."""
        if self._finalized is not None:
            return self._finalized
        delay_hist = self._delay_hist
        sojourn_hist = self._sojourn_hist
        if self._count:
            # Departures after the last arrival T contribute only [t_i, T]
            # to the N(t) integral cut at T: subtract their overhang from
            # the total-sojourn identity.
            last_arrival = self._last_ns
            if self._vector:
                np = _np
                delay, sojourn, departs, service, last_departure = (
                    self._replay_vector()
                )
                self._total_delay_ns = int(delay.sum())
                self._total_sojourn_ns = int(sojourn.sum())
                self._total_service_ns = int(service.sum())
                overhang = int((departs[departs > last_arrival] - last_arrival).sum())
                bounds = _BOUNDS_NS_ARRAY
                indexes = np.minimum(
                    np.searchsorted(bounds, delay, side="left"), _LAST_BUCKET
                )
                delay_hist = np.bincount(indexes, minlength=len(_BOUNDS_NS))
                indexes = np.minimum(
                    np.searchsorted(bounds, sojourn, side="left"), _LAST_BUCKET
                )
                sojourn_hist = np.bincount(indexes, minlength=len(_BOUNDS_NS))
            else:
                overhang = sum(
                    depart - last_arrival
                    for depart in self._departs
                    if depart > last_arrival
                )
                last_departure = max(queue.last_departure_ns() for queue in self._queues)
            area_at_last_arrival = self._total_sojourn_ns - overhang
        else:
            area_at_last_arrival = 0
            last_departure = 0
            if delay_hist is None:
                delay_hist = _fresh_histogram()
                sojourn_hist = _fresh_histogram()
        self._finalized = QueueingStats(
            request_count=self._count,
            servers=self._shard_count * self._model.servers_per_shard,
            total_delay_ns=self._total_delay_ns,
            total_sojourn_ns=self._total_sojourn_ns,
            total_service_ns=self._total_service_ns,
            first_arrival_ns=self._first_ns if self._first_ns is not None else 0,
            last_arrival_ns=self._last_ns,
            last_departure_ns=last_departure,
            area_at_last_arrival_ns=area_at_last_arrival,
            delay_histogram=[int(count) for count in delay_hist],
            sojourn_histogram=[int(count) for count in sojourn_hist],
        )
        return self._finalized

    def finalize(self) -> QueueingStats:
        stats = self._finalize_own()
        for observer in self._merged:
            stats = stats.merge(observer._finalize_own())
        return stats
