"""I/O request model shared by all cache policies and the simulator.

The storage server's workload is a sequence of block I/O requests from one or
more clients (paper Section 2).  Each request names a page, is either a read
or a write, and may carry a hint set.  The server assigns a sequence number to
every request it receives; CLIC's re-reference analysis is expressed in terms
of these sequence numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.hints import EMPTY_HINT_SET, HintSet

__all__ = ["RequestKind", "IORequest", "read_request", "write_request"]


class RequestKind(enum.Enum):
    """Whether an I/O request is a read or a write."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class IORequest:
    """One block I/O request as seen by the storage server.

    Attributes
    ----------
    page:
        Page (block) identifier.  Pages from different clients must use
        disjoint identifiers; the multi-client interleaver takes care of
        remapping page ids into disjoint ranges.
    kind:
        Read or write.
    hints:
        The hint set attached by the client.  Hint-oblivious traces use
        :data:`~repro.core.hints.EMPTY_HINT_SET`.
    client_id:
        Identifier of the storage client that issued the request.  Defaults to
        the hint set's client id.
    """

    page: int
    kind: RequestKind
    hints: HintSet = EMPTY_HINT_SET
    client_id: str = ""

    def __post_init__(self) -> None:
        if self.client_id == "" and self.hints.client_id:
            object.__setattr__(self, "client_id", self.hints.client_id)

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE


def read_request(page: int, hints: HintSet = EMPTY_HINT_SET, client_id: str = "") -> IORequest:
    """Convenience constructor for a read request."""
    return IORequest(page=page, kind=RequestKind.READ, hints=hints, client_id=client_id)


def write_request(page: int, hints: HintSet = EMPTY_HINT_SET, client_id: str = "") -> IORequest:
    """Convenience constructor for a write request."""
    return IORequest(page=page, kind=RequestKind.WRITE, hints=hints, client_id=client_id)
