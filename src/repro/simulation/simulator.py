"""Trace-driven storage-server cache simulator (paper Section 6).

The simulator assigns a sequence number to every arriving request, feeds the
request to a single :class:`~repro.cache.base.CachePolicy`, and accumulates
hit/miss statistics — overall and per storage client.  The paper's headline
metric is the server cache *read hit ratio*: read hits / read requests.

Offline policies (OPT) are given the whole request stream up front via
``prepare``; the simulator materialises the stream into a list in that case.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.cache.base import CachePolicy, CacheStats
from repro.simulation.costmodel import CostModel
from repro.simulation.metrics import (
    RollingTracker,
    SimulationResult,
    per_shard_stats,
    validate_rolling_window,
)
from repro.simulation.request import IORequest

__all__ = ["CacheSimulator", "simulate"]


class CacheSimulator:
    """Drives one cache policy with a stream of I/O requests.

    ``cost_model`` opts the run into service-time pricing
    (:mod:`repro.simulation.costmodel`): the result's ``latency`` (and, for
    sharded clusters, ``shard_latency``) fields are filled, identically to
    the shared-replay engine's accounting pass.

    ``rolling_window`` opts the run into windowed time-series accounting:
    the result's ``rolling`` field carries the per-window hit-ratio and
    eviction series (:class:`~repro.simulation.metrics.RollingMetrics`),
    identical to the engine's for the same stream and window.
    """

    def __init__(
        self,
        policy: CachePolicy,
        track_per_client: bool = True,
        cost_model: CostModel | None = None,
        rolling_window: int | None = None,
    ):
        self._policy = policy
        self._track_per_client = track_per_client
        self._cost_model = cost_model
        self._rolling_window = validate_rolling_window(rolling_window)

    @property
    def policy(self) -> CachePolicy:
        return self._policy

    def run(
        self,
        requests: Iterable[IORequest],
        start_seq: int = 0,
    ) -> SimulationResult:
        """Replay *requests* through the policy and return the result.

        ``start_seq`` sets the sequence number of the first request; requests
        are numbered consecutively from there.
        """
        policy = self._policy
        if policy.offline:
            requests = list(requests)
            policy.prepare(requests, start_seq)

        per_client: dict[str, CacheStats] = {}
        accumulator = (
            self._cost_model.accumulator_for(policy) if self._cost_model else None
        )
        rolling = self._rolling_window
        tracker = (
            RollingTracker(rolling, policy, start_seq) if rolling is not None else None
        )
        started = time.perf_counter()
        seq = start_seq
        for request in requests:
            if tracker is not None and seq % rolling == 0:
                tracker.boundary(seq)
            hit = policy.access(request, seq)
            if self._track_per_client:
                client_stats = per_client.get(request.client_id)
                if client_stats is None:
                    client_stats = CacheStats()
                    per_client[request.client_id] = client_stats
                client_stats.record(request, hit)
            if accumulator is not None:
                accumulator.charge(request, hit)
            seq += 1
        if tracker is not None:
            tracker.boundary(seq)
        elapsed = time.perf_counter() - started

        per_shard = per_shard_stats(policy)
        latency = None
        shard_latency: tuple = ()
        if accumulator is not None:
            latency = accumulator.finalize()
            if per_shard:
                shard_latency = accumulator.shard_latencies() or (
                    self._cost_model.shard_latencies(per_shard)
                )
        return SimulationResult(
            policy_name=policy.name,
            capacity=policy.capacity,
            stats=policy.stats,
            per_client=per_client,
            elapsed_seconds=elapsed,
            per_shard=per_shard,
            latency=latency,
            shard_latency=shard_latency,
            rolling=tracker.finalize() if tracker is not None else None,
        )


def simulate(
    policy: CachePolicy,
    requests: Iterable[IORequest],
    track_per_client: bool = True,
    cost_model: CostModel | None = None,
    rolling_window: int | None = None,
) -> SimulationResult:
    """Convenience wrapper: ``CacheSimulator(policy).run(requests)``."""
    return CacheSimulator(
        policy,
        track_per_client=track_per_client,
        cost_model=cost_model,
        rolling_window=rolling_window,
    ).run(requests)
