"""Trace-driven storage-server cache simulator (paper Section 6).

:class:`CacheSimulator` is the single-policy entry point: it numbers every
arriving request with a sequence number, feeds it to one
:class:`~repro.cache.base.CachePolicy`, and reports hit/miss statistics —
overall and per storage client.  The paper's headline metric is the server
cache *read hit ratio*: read hits / read requests.

There is exactly **one** replay loop in the codebase —
:class:`~repro.simulation.engine.MultiPolicySimulator` — and this class is a
thin wrapper over it for the N=1 case.  All accounting (stats, per-shard
breakdowns, service-time pricing, rolling series, custom observers) is the
engine's observer pipeline (:mod:`repro.simulation.observers`), so the two
entry points cannot drift: a :class:`CacheSimulator` run is *defined* as a
one-policy engine run.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.cache.base import CachePolicy
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import MultiPolicySimulator
from repro.simulation.metrics import SimulationResult
from repro.simulation.observers import ReplayObserver
from repro.simulation.queueing import QueueingModel
from repro.simulation.request import IORequest

__all__ = ["CacheSimulator", "simulate"]


class CacheSimulator:
    """Drives one cache policy with a stream of I/O requests.

    ``cost_model`` opts the run into service-time pricing
    (:mod:`repro.simulation.costmodel`): the result's ``latency`` (and, for
    sharded clusters, ``shard_latency``) fields are filled.

    ``rolling_window`` opts the run into windowed time-series accounting:
    the result's ``rolling`` field carries the per-window hit-ratio and
    eviction series (:class:`~repro.simulation.metrics.RollingMetrics`).

    ``queueing_model`` opts the run into open-loop queueing
    (:mod:`repro.simulation.queueing`): the result's ``queueing`` field
    carries queueing-delay / sojourn / utilization accounting under the
    model's arrival process.

    ``observer_factories`` attaches custom observers
    (:class:`~repro.simulation.observers.ReplayObserver`): each factory is
    called ``factory(policy, start_seq)`` once per run; keep your own
    reference to the instance it returns to read it after the run.
    """

    def __init__(
        self,
        policy: CachePolicy,
        track_per_client: bool = True,
        cost_model: CostModel | None = None,
        rolling_window: int | None = None,
        queueing_model: QueueingModel | None = None,
        observer_factories: Sequence[
            Callable[[CachePolicy, int], ReplayObserver]
        ] = (),
        columnar: bool | None = None,
    ):
        self._policy = policy
        self._engine = MultiPolicySimulator(
            [policy],
            track_per_client=track_per_client,
            cost_model=cost_model,
            rolling_window=rolling_window,
            queueing_model=queueing_model,
            observer_factories=observer_factories,
            columnar=columnar,
        )

    @property
    def policy(self) -> CachePolicy:
        return self._policy

    def run(
        self,
        requests: Iterable[IORequest],
        start_seq: int = 0,
    ) -> SimulationResult:
        """Replay *requests* through the policy and return the result.

        ``start_seq`` sets the sequence number of the first request; requests
        are numbered consecutively from there.
        """
        return self._engine.run(requests, start_seq)[0]


def simulate(
    policy: CachePolicy,
    requests: Iterable[IORequest],
    track_per_client: bool = True,
    cost_model: CostModel | None = None,
    rolling_window: int | None = None,
    queueing_model: QueueingModel | None = None,
    columnar: bool | None = None,
) -> SimulationResult:
    """Convenience wrapper: ``CacheSimulator(policy).run(requests)``."""
    return CacheSimulator(
        policy,
        track_per_client=track_per_client,
        cost_model=cost_model,
        rolling_window=rolling_window,
        queueing_model=queueing_model,
        columnar=columnar,
    ).run(requests)
