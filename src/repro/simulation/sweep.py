"""Parameter sweeps: the workhorse behind every figure in the evaluation.

The paper's figures are families of curves: read hit ratio as a function of
the server cache size (Figures 6-8), of the number of tracked hint sets ``k``
(Figure 9), or of the number of injected noise hint types ``T`` (Figure 10).
This module provides the generic sweep driver plus the two specialised sweeps
that need to rebuild the policy with different CLIC configurations.

All sweeps run through the shared-replay engine
(:mod:`repro.simulation.engine`): policies that replay the same stream share
a single trace pass, and ``jobs > 1`` fans the sweep cells out over worker
processes.  The default ``jobs=1`` keeps results bit-identical to a fully
serial run.
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Callable, Iterable, Mapping, Sequence

from repro.cache.base import CachePolicy
from repro.core.config import CLICConfig
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import (
    MultiPolicySimulator,
    ParallelSweepRunner,
    PolicySpec,
    RequestSource,
    SweepCell,
)
from repro.simulation.metrics import SimulationResult, SweepResult
from repro.simulation.request import IORequest
from repro.simulation.simulator import CacheSimulator

__all__ = [
    "run_policy",
    "compare_policies",
    "sweep_cache_sizes",
    "sweep_top_k",
    "sweep_policy_parameter",
]


def run_policy(
    policy_name: str,
    requests: Sequence[IORequest],
    capacity: int,
    policy_kwargs: Mapping[str, object] | None = None,
    cost_model: CostModel | None = None,
) -> SimulationResult:
    """Instantiate *policy_name* with *capacity* and replay *requests* through it."""
    policy = PolicySpec(
        label=policy_name,
        name=policy_name,
        capacity=capacity,
        kwargs=dict(policy_kwargs or {}),
    ).build()
    return CacheSimulator(policy, cost_model=cost_model).run(requests)


def _policy_specs(
    policies: Iterable[str],
    capacity: int,
    policy_kwargs: Mapping[str, Mapping[str, object]],
) -> tuple[PolicySpec, ...]:
    return tuple(
        PolicySpec(
            label=name,
            name=name,
            capacity=capacity,
            kwargs=dict(policy_kwargs.get(name, {})),
        )
        for name in policies
    )


def compare_policies(
    requests: Sequence[IORequest],
    capacity: int,
    policies: Iterable[str],
    policy_kwargs: Mapping[str, Mapping[str, object]] | None = None,
    cost_model: CostModel | None = None,
) -> dict[str, SimulationResult]:
    """Run each policy over the same request stream, sharing one trace pass."""
    policies = list(policies)
    specs = _policy_specs(policies, capacity, policy_kwargs or {})
    built = [spec.build() for spec in specs]
    results = MultiPolicySimulator(built, cost_model=cost_model).run(requests)
    return dict(zip(policies, results))


def sweep_cache_sizes(
    requests: RequestSource,
    cache_sizes: Sequence[int],
    policies: Iterable[str],
    policy_kwargs: Mapping[str, Mapping[str, object]] | None = None,
    jobs: int | None = 1,
    cost_model: CostModel | None = None,
) -> SweepResult:
    """Read hit ratio as a function of server cache size (Figures 6-8).

    Each cache size is one sweep cell whose policies share a replay pass;
    ``jobs`` fans the cells out over worker processes.  ``requests`` may be
    a request list or a lazy source such as a
    :class:`~repro.trace.cache.TraceSpec` — with a lazy source and
    ``jobs > 1``, workers open the trace from the on-disk cache themselves
    instead of receiving pickled request lists.
    """
    policies = list(policies)
    policy_kwargs = policy_kwargs or {}
    cells = [
        SweepCell(
            x=float(capacity),
            specs=_policy_specs(policies, capacity, policy_kwargs),
        )
        for capacity in cache_sizes
    ]
    runner = ParallelSweepRunner(requests, jobs=jobs, cost_model=cost_model)
    return runner.run(cells, parameter="cache_size")


def sweep_top_k(
    requests: RequestSource,
    capacity: int,
    k_values: Sequence[int | None],
    base_config: CLICConfig | None = None,
    label_for: Callable[[int | None], str] | None = None,
    jobs: int | None = 1,
    cost_model: CostModel | None = None,
) -> SweepResult:
    """CLIC read hit ratio as a function of the number of tracked hint sets ``k``.

    ``None`` in *k_values* means "track all hint sets" (the exact hint table),
    which the paper uses as the reference point for Figure 9.  Every field of
    *base_config* other than ``top_k`` is preserved verbatim.
    """
    base = base_config or CLICConfig()
    label_for = label_for or (lambda k: "CLIC")
    track_all_x: float | None = None
    cells = []
    for k in k_values:
        config = dataclasses.replace(base, top_k=k)
        if k is None:
            if track_all_x is None:
                track_all_x = float(len({r.hints.key() for r in requests}))
            x = track_all_x
        else:
            x = float(k)
        cells.append(
            SweepCell(
                x=x,
                specs=(
                    PolicySpec(
                        label=label_for(k),
                        name="CLIC",
                        capacity=capacity,
                        kwargs={"config": config},
                    ),
                ),
            )
        )
    runner = ParallelSweepRunner(requests, jobs=jobs, cost_model=cost_model)
    return runner.run(cells, parameter="k")


def _build_from_factory(
    make_policy: Callable[[object, int], CachePolicy], value: object, capacity: int
) -> CachePolicy:
    return make_policy(value, capacity)


def sweep_policy_parameter(
    requests: RequestSource,
    capacity: int,
    parameter: str,
    values: Sequence[object],
    make_policy: Callable[[object, int], CachePolicy],
    label: str = "CLIC",
    jobs: int | None = 1,
    cost_model: CostModel | None = None,
) -> SweepResult:
    """Generic single-policy parameter sweep (used by the ablation benches).

    ``make_policy`` must be picklable (a module-level callable) for
    ``jobs > 1``; otherwise the runner falls back to the serial path.
    """
    cells = []
    for index, value in enumerate(values):
        x = float(value) if isinstance(value, (int, float)) else float(index)
        cells.append(
            SweepCell(
                x=x,
                specs=(
                    PolicySpec(
                        label=label,
                        factory=partial(_build_from_factory, make_policy, value, capacity),
                    ),
                ),
            )
        )
    runner = ParallelSweepRunner(requests, jobs=jobs, cost_model=cost_model)
    return runner.run(cells, parameter=parameter)
