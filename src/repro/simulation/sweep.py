"""Parameter sweeps: the workhorse behind every figure in the evaluation.

The paper's figures are families of curves: read hit ratio as a function of
the server cache size (Figures 6-8), of the number of tracked hint sets ``k``
(Figure 9), or of the number of injected noise hint types ``T`` (Figure 10).
This module provides the generic sweep driver plus the two specialised sweeps
that need to rebuild the policy with different CLIC configurations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.cache.base import CachePolicy
from repro.cache.registry import create_policy
from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.simulation.metrics import SimulationResult, SweepResult
from repro.simulation.request import IORequest
from repro.simulation.simulator import CacheSimulator

__all__ = [
    "run_policy",
    "compare_policies",
    "sweep_cache_sizes",
    "sweep_top_k",
    "sweep_policy_parameter",
]


def run_policy(
    policy_name: str,
    requests: Sequence[IORequest],
    capacity: int,
    policy_kwargs: Mapping[str, object] | None = None,
) -> SimulationResult:
    """Instantiate *policy_name* with *capacity* and replay *requests* through it."""
    policy = create_policy(policy_name, capacity=capacity, **dict(policy_kwargs or {}))
    return CacheSimulator(policy).run(requests)


def compare_policies(
    requests: Sequence[IORequest],
    capacity: int,
    policies: Iterable[str],
    policy_kwargs: Mapping[str, Mapping[str, object]] | None = None,
) -> dict[str, SimulationResult]:
    """Run each policy over the same request stream at one cache size."""
    policy_kwargs = policy_kwargs or {}
    results: dict[str, SimulationResult] = {}
    for name in policies:
        results[name] = run_policy(
            name, requests, capacity, policy_kwargs.get(name, {})
        )
    return results


def sweep_cache_sizes(
    requests: Sequence[IORequest],
    cache_sizes: Sequence[int],
    policies: Iterable[str],
    policy_kwargs: Mapping[str, Mapping[str, object]] | None = None,
) -> SweepResult:
    """Read hit ratio as a function of server cache size (Figures 6-8)."""
    policies = list(policies)
    policy_kwargs = policy_kwargs or {}
    sweep = SweepResult(parameter="cache_size")
    for capacity in cache_sizes:
        for name in policies:
            result = run_policy(name, requests, capacity, policy_kwargs.get(name, {}))
            sweep.add(name, capacity, result)
    return sweep


def sweep_top_k(
    requests: Sequence[IORequest],
    capacity: int,
    k_values: Sequence[int | None],
    base_config: CLICConfig | None = None,
    label_for: Callable[[int | None], str] | None = None,
) -> SweepResult:
    """CLIC read hit ratio as a function of the number of tracked hint sets ``k``.

    ``None`` in *k_values* means "track all hint sets" (the exact hint table),
    which the paper uses as the reference point for Figure 9.
    """
    base = base_config or CLICConfig()
    sweep = SweepResult(parameter="k")
    label_for = label_for or (lambda k: "CLIC")
    for k in k_values:
        config = CLICConfig(
            window_size=base.window_size,
            decay=base.decay,
            outqueue_factor=base.outqueue_factor,
            top_k=k,
            charge_metadata=base.charge_metadata,
            metadata_bytes_per_page=base.metadata_bytes_per_page,
            page_size_bytes=base.page_size_bytes,
        )
        policy = CLICPolicy(capacity=capacity, config=config)
        result = CacheSimulator(policy).run(requests)
        x = float(len({r.hints.key() for r in requests})) if k is None else float(k)
        sweep.add(label_for(k), x, result)
    return sweep


def sweep_policy_parameter(
    requests: Sequence[IORequest],
    capacity: int,
    parameter: str,
    values: Sequence[object],
    make_policy: Callable[[object, int], CachePolicy],
    label: str = "CLIC",
) -> SweepResult:
    """Generic single-policy parameter sweep (used by the ablation benches)."""
    sweep = SweepResult(parameter=parameter)
    for value in values:
        policy = make_policy(value, capacity)
        result = CacheSimulator(policy).run(requests)
        x = float(value) if isinstance(value, (int, float)) else float(len(sweep.series.get(label, [])))
        sweep.add(label, x, result)
    return sweep
