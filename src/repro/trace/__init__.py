"""Hint schemas, trace containers, serialization and trace statistics."""

from repro.trace.binio import (
    BinaryTraceWriter,
    StreamedTrace,
    open_trace_binary,
    read_trace_binary,
    write_trace_binary,
)
from repro.trace.cache import (
    TraceCache,
    TraceSpec,
    default_trace_cache,
    set_default_trace_cache,
)
from repro.trace.io import TraceFormatError, read_trace, write_trace
from repro.trace.noise import ZipfSampler, inject_noise_hints, inject_noise_into_trace
from repro.trace.records import Trace, TraceSummary
from repro.trace.schema import (
    DB2_HINT_NAMES,
    MYSQL_HINT_NAMES,
    RequestType,
    db2_schema,
    mysql_schema,
)
from repro.trace.stats import (
    ReuseProfile,
    hint_set_frequencies,
    request_type_mix,
    reuse_distance_profile,
)

__all__ = [
    "Trace",
    "TraceSummary",
    "TraceFormatError",
    "read_trace",
    "write_trace",
    "BinaryTraceWriter",
    "StreamedTrace",
    "open_trace_binary",
    "read_trace_binary",
    "write_trace_binary",
    "TraceCache",
    "TraceSpec",
    "default_trace_cache",
    "set_default_trace_cache",
    "ZipfSampler",
    "inject_noise_hints",
    "inject_noise_into_trace",
    "RequestType",
    "DB2_HINT_NAMES",
    "MYSQL_HINT_NAMES",
    "db2_schema",
    "mysql_schema",
    "ReuseProfile",
    "hint_set_frequencies",
    "request_type_mix",
    "reuse_distance_profile",
]
