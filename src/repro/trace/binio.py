"""Binary trace serialization: compact, streamable, dictionary-encoded.

This is the storage format behind the on-disk trace cache
(:mod:`repro.trace.cache`).  Like the text format (:mod:`repro.trace.io`) it
dictionary-encodes hint sets — a trace has millions of requests but only tens
or hundreds of distinct hint sets — but it stores requests as varint-packed
binary records grouped into length-prefixed blocks, so that

* a :class:`BinaryTraceWriter` can stream requests to disk as a workload
  generator produces them, without ever materializing the request list; and
* a :class:`StreamedTrace` can replay the file chunk-by-chunk with bounded
  memory, re-iterably, which is what the shared-replay engine consumes.

The precise byte layout (header, hint-set dictionary, block records, footer,
versioning) is specified in ``docs/trace-format.md``.  In short::

    magic "CLICBT" + version       header
    0x01 META                      JSON metadata (may repeat; later wins)
    0x02 HINTSET                   one dictionary entry per distinct hint set
    0x03 BLOCK                     a length-prefixed group of request records
    0x04 END                       request count + final metadata
    footer                         offset of END + trailing magic

The END/footer pair makes truncation detectable and lets a reader fetch the
trace's name, metadata and request count without scanning the blocks.
"""

from __future__ import annotations

import io as _io
import json
import struct
from pathlib import Path
from types import TracebackType
from typing import Any, BinaryIO, Iterable, Iterator

try:  # optional acceleration for the columnar decode path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.core.hints import EMPTY_HINT_SET, HintSet
from repro.simulation.request import IORequest, RequestKind
from repro.trace.columnar import ColumnarChunk
from repro.trace.io import (
    TraceFormatError,
    _decode_hint_set as _decode_hint_set_json,
    _encode_hint_set as _encode_hint_set_json,
)
from repro.trace.records import Trace

__all__ = [
    "BinaryTraceWriter",
    "StreamedTrace",
    "write_trace_binary",
    "read_trace_binary",
    "open_trace_binary",
    "FORMAT_VERSION",
]

#: Version byte of the on-disk layout; bump on any incompatible change.
FORMAT_VERSION = 1

_MAGIC = b"CLICBT"                      # header: magic + version byte
_TRAILER_MAGIC = b"CLICEND\x00"
_FOOTER = struct.Struct("<Q8s")          # END-record offset + trailer magic

_TAG_META = 0x01
_TAG_HINTSET = 0x02
_TAG_BLOCK = 0x03
_TAG_END = 0x04

#: Requests per BLOCK record; also the reader's natural chunk size.
BLOCK_REQUESTS = 4096

_FLAG_WRITE = 0x01          # request is a write (reads have the bit clear)
_FLAG_CLIENT_ID = 0x02      # an explicit client id string follows the record


def _encode_varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError(f"varint fields must be non-negative, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _encode_hint_set(hints: HintSet) -> bytes:
    # Same JSON payload as the text format (one codec for both formats).
    return _encode_hint_set_json(hints).encode("utf-8")


def _decode_hint_set(payload: bytes, offset: int) -> HintSet:
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"byte {offset}: malformed hint set definition: {payload[:80]!r}"
        ) from exc
    return _decode_hint_set_json(text, f"byte {offset}")


class BinaryTraceWriter:
    """Streams I/O requests into a binary trace file.

    Usage::

        with BinaryTraceWriter(path, name="DB2_C60", metadata={...}) as writer:
            for request in generator:
                writer.write(request)
            writer.update_metadata({"first_tier_hit_ratio": ratio})

    Requests are buffered into BLOCK records of :data:`BLOCK_REQUESTS`
    requests; hint-set dictionary entries are emitted on first use, before the
    block that references them.  ``update_metadata`` merges keys into the
    final META payload stored in the END record, so metadata only known after
    generation (e.g. the first-tier hit ratio) still lands in the file
    without a second pass.
    """

    def __init__(self, path: str | Path, name: str = "", metadata: dict | None = None):
        self._path = Path(path)
        self._handle = self._path.open("wb")
        self._handle.write(_MAGIC + bytes([FORMAT_VERSION]))
        self._hint_ids: dict[tuple, int] = {}
        self._pending: list[IORequest] = []
        self._count = 0
        self._closed = False
        self._final_metadata: dict = {}
        self._write_meta({"name": name, **(metadata or {})})

    # ------------------------------------------------------------------ write
    def write(self, request: IORequest) -> None:
        self._pending.append(request)
        self._count += 1
        if len(self._pending) >= BLOCK_REQUESTS:
            self._flush_block()

    def write_all(self, requests: Iterable[IORequest]) -> int:
        """Write every request of *requests*; returns the number written."""
        before = self._count
        for request in requests:
            self.write(request)
        return self._count - before

    def update_metadata(self, metadata: dict) -> None:
        """Merge *metadata* into the final META record written at close."""
        self._final_metadata.update(metadata)

    @property
    def request_count(self) -> int:
        return self._count

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        if self._closed:
            return
        self._flush_block()
        end_offset = self._handle.tell()
        meta_payload = json.dumps(
            self._final_metadata, separators=(",", ":"), default=str
        ).encode("utf-8")
        self._handle.write(bytes([_TAG_END]))
        self._handle.write(_encode_varint(self._count))
        self._handle.write(_encode_varint(len(meta_payload)))
        self._handle.write(meta_payload)
        self._handle.write(_FOOTER.pack(end_offset, _TRAILER_MAGIC))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            # Abandon a half-written file rather than sealing it with a
            # footer: readers must never mistake it for a complete trace.
            self._handle.close()
            self._closed = True
            self._path.unlink(missing_ok=True)
        else:
            self.close()

    # --------------------------------------------------------------- encoding
    def _write_meta(self, payload: dict) -> None:
        data = json.dumps(payload, separators=(",", ":"), default=str).encode("utf-8")
        self._handle.write(bytes([_TAG_META]) + _encode_varint(len(data)) + data)

    def _hint_ref(self, hints: HintSet) -> int:
        # identity(), not key(): the key omits hint names (they are implied
        # by a client's schema at simulation time), but the serialized
        # dictionary must distinguish sets that differ only in their names.
        key = hints.identity()
        if key == ("", (), ()):
            return 0
        hint_id = self._hint_ids.get(key)
        if hint_id is None:
            hint_id = len(self._hint_ids)
            self._hint_ids[key] = hint_id
            payload = _encode_hint_set(hints)
            # Dictionary entries precede the block that first references them.
            self._handle.write(
                bytes([_TAG_HINTSET])
                + _encode_varint(hint_id)
                + _encode_varint(len(payload))
                + payload
            )
        return hint_id + 1

    def _flush_block(self) -> None:
        if not self._pending:
            return
        encode_varint = _encode_varint
        body = bytearray()
        for request in self._pending:
            flags = 0 if request.is_read else _FLAG_WRITE
            client_bytes = b""
            if request.client_id != request.hints.client_id:
                flags |= _FLAG_CLIENT_ID
                client_bytes = request.client_id.encode("utf-8")
            hint_ref = self._hint_ref(request.hints)
            body.append(flags)
            body += encode_varint(request.page)
            body += encode_varint(hint_ref)
            if flags & _FLAG_CLIENT_ID:
                body += encode_varint(len(client_bytes))
                body += client_bytes
        self._handle.write(
            bytes([_TAG_BLOCK])
            + encode_varint(len(self._pending))
            + encode_varint(len(body))
        )
        self._handle.write(body)
        self._pending.clear()


def write_trace_binary(trace: Trace, path: str | Path) -> None:
    """Write an in-memory :class:`Trace` to *path* in the binary format."""
    with BinaryTraceWriter(path, name=trace.name, metadata=dict(trace.metadata)) as writer:
        writer.write_all(trace)


class StreamedTrace:
    """A re-iterable, chunked view of a binary trace file.

    Opening the file parses only the header and the END/footer records, so
    the name, metadata and request count are available immediately;
    iterating replays the BLOCK records one at a time, decoding at most one
    block (:data:`BLOCK_REQUESTS` requests) into memory at once.  Each
    iteration opens a fresh file handle, so the same object can feed an
    offline policy's preparation pass and the replay pass.

    The shared-replay engine recognises this object through its
    ``iter_requests`` method (the lazy request-source protocol).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.name: str = self.path.stem
        self.metadata: dict = {}
        self._request_count = 0
        self._read_summary()

    # ----------------------------------------------------------- introspection
    def __len__(self) -> int:
        return self._request_count

    @property
    def request_count(self) -> int:
        return self._request_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamedTrace({self.name!r}, {self._request_count} requests, "
            f"path={str(self.path)!r})"
        )

    # -------------------------------------------------------------- iteration
    def iter_requests(self) -> Iterator[IORequest]:
        """Yield every request in order, decoding one block at a time."""
        for chunk in self.iter_chunks():
            yield from chunk

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    def iter_chunks(self) -> Iterator[list[IORequest]]:
        """Yield the trace as successive lists of requests (one per block)."""
        with self.path.open("rb") as handle:
            self._check_header(handle)
            hint_sets: dict[int, HintSet] = {}
            count = 0
            while True:
                offset = handle.tell()
                tag_byte = handle.read(1)
                if not tag_byte:
                    raise TraceFormatError(
                        f"{self.path.name}: unexpected end of file at byte {offset} "
                        "(missing END record — truncated trace?)"
                    )
                tag = tag_byte[0]
                if tag == _TAG_META:
                    length = _read_varint(handle, offset)
                    _read_exact(handle, length, offset)
                elif tag == _TAG_HINTSET:
                    hint_id = _read_varint(handle, offset)
                    length = _read_varint(handle, offset)
                    payload = _read_exact(handle, length, offset)
                    if hint_id != len(hint_sets):
                        raise TraceFormatError(
                            f"byte {offset}: hint set ids must be dense and "
                            f"ascending (got {hint_id}, expected {len(hint_sets)})"
                        )
                    hint_sets[hint_id] = _decode_hint_set(payload, offset)
                elif tag == _TAG_BLOCK:
                    expected = _read_varint(handle, offset)
                    length = _read_varint(handle, offset)
                    body = _read_exact(handle, length, offset)
                    chunk = _decode_block(body, expected, hint_sets, offset)
                    count += len(chunk)
                    yield chunk
                elif tag == _TAG_END:
                    declared = _read_varint(handle, offset)
                    if declared != count:
                        raise TraceFormatError(
                            f"byte {offset}: END declares {declared} requests "
                            f"but {count} were decoded"
                        )
                    return
                else:
                    raise TraceFormatError(
                        f"byte {offset}: unknown record tag 0x{tag:02x}"
                    )

    def iter_columnar(self) -> Iterator[ColumnarChunk]:
        """Yield the trace as :class:`ColumnarChunk` batches (one per BLOCK).

        The common block layout (no explicit client-id records) decodes
        straight into numpy arrays without materialising ``IORequest``
        objects; blocks carrying explicit client ids — and structurally
        suspect blocks — fall back to the scalar decoder and are lifted via
        :meth:`ColumnarChunk.from_requests`, so malformed traces raise the
        exact same :class:`TraceFormatError` as :meth:`iter_chunks` and
        well-formed ones decode to identical requests either way.
        """
        if _np is None:
            raise RuntimeError(
                "StreamedTrace.iter_columnar requires numpy; "
                "use iter_chunks for the object path"
            )
        with self.path.open("rb") as handle:
            self._check_header(handle)
            hint_sets: dict[int, HintSet] = {}
            # Lookup tables shared by every chunk of this pass.  Position 0
            # of the hint table is the empty hint set, so the on-wire
            # hint_ref is usable as a table index directly.
            hint_table: tuple[HintSet, ...] = (EMPTY_HINT_SET,)
            clients: list[str] = [""]
            client_index: dict[str, int] = {"": 0}
            hint_client: list[int] = [0]
            hint_client_arr: Any = None
            client_table: tuple[str, ...] = ("",)
            count = 0
            while True:
                offset = handle.tell()
                tag_byte = handle.read(1)
                if not tag_byte:
                    raise TraceFormatError(
                        f"{self.path.name}: unexpected end of file at byte {offset} "
                        "(missing END record — truncated trace?)"
                    )
                tag = tag_byte[0]
                if tag == _TAG_META:
                    length = _read_varint(handle, offset)
                    _read_exact(handle, length, offset)
                elif tag == _TAG_HINTSET:
                    hint_id = _read_varint(handle, offset)
                    length = _read_varint(handle, offset)
                    payload = _read_exact(handle, length, offset)
                    if hint_id != len(hint_sets):
                        raise TraceFormatError(
                            f"byte {offset}: hint set ids must be dense and "
                            f"ascending (got {hint_id}, expected {len(hint_sets)})"
                        )
                    hints = _decode_hint_set(payload, offset)
                    hint_sets[hint_id] = hints
                    hint_table = hint_table + (hints,)
                    cidx = client_index.get(hints.client_id)
                    if cidx is None:
                        cidx = len(clients)
                        client_index[hints.client_id] = cidx
                        clients.append(hints.client_id)
                        client_table = tuple(clients)
                    hint_client.append(cidx)
                    hint_client_arr = None
                elif tag == _TAG_BLOCK:
                    expected = _read_varint(handle, offset)
                    length = _read_varint(handle, offset)
                    body = _read_exact(handle, length, offset)
                    columns = _decode_block_columnar(body, expected, offset)
                    if columns is None:
                        # Scalar fallback: explicit client ids (or a garbled
                        # block, which raises here exactly like iter_chunks).
                        requests = _decode_block(body, expected, hint_sets, offset)
                        chunk = ColumnarChunk.from_requests(requests, count)
                    else:
                        page, hint_ref, write = columns
                        if len(hint_ref) and int(hint_ref.max()) >= len(hint_table):
                            bad = int(hint_ref[hint_ref >= len(hint_table)][0])
                            raise TraceFormatError(
                                f"byte {offset}: block references undefined "
                                f"hint set id {bad - 1}"
                            )
                        if hint_client_arr is None:
                            hint_client_arr = _np.array(hint_client, _np.int64)
                        chunk = ColumnarChunk(
                            page,
                            write,
                            hint_ref,
                            hint_client_arr[hint_ref],
                            _np.arange(count, count + expected, dtype=_np.int64),
                            hint_table,
                            client_table,
                        )
                    count += len(chunk)
                    yield chunk
                elif tag == _TAG_END:
                    declared = _read_varint(handle, offset)
                    if declared != count:
                        raise TraceFormatError(
                            f"byte {offset}: END declares {declared} requests "
                            f"but {count} were decoded"
                        )
                    return
                else:
                    raise TraceFormatError(
                        f"byte {offset}: unknown record tag 0x{tag:02x}"
                    )

    # ----------------------------------------------------------------- loading
    def load(self) -> Trace:
        """Materialize the whole file as an in-memory :class:`Trace`."""
        requests: list[IORequest] = []
        for chunk in self.iter_chunks():
            requests.extend(chunk)
        return Trace(name=self.name, requests_list=requests, metadata=dict(self.metadata))

    # ---------------------------------------------------------------- parsing
    def _check_header(self, handle: BinaryIO) -> None:
        header = handle.read(len(_MAGIC) + 1)
        if len(header) < len(_MAGIC) + 1 or header[: len(_MAGIC)] != _MAGIC:
            raise TraceFormatError(f"{self.path.name}: not a binary trace (bad magic)")
        version = header[len(_MAGIC)]
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"{self.path.name}: unsupported binary trace version {version} "
                f"(this reader supports version {FORMAT_VERSION})"
            )

    def _read_summary(self) -> None:
        """Parse header, META records and the END record (via the footer)."""
        with self.path.open("rb") as handle:
            self._check_header(handle)
            handle.seek(0, _io.SEEK_END)
            size = handle.tell()
            if size < len(_MAGIC) + 1 + _FOOTER.size:
                raise TraceFormatError(f"{self.path.name}: truncated binary trace")
            handle.seek(size - _FOOTER.size)
            end_offset, trailer = _FOOTER.unpack(handle.read(_FOOTER.size))
            if trailer != _TRAILER_MAGIC:
                raise TraceFormatError(
                    f"{self.path.name}: bad trailer magic (truncated or not a "
                    "binary trace)"
                )
            if not (len(_MAGIC) + 1 <= end_offset < size - _FOOTER.size):
                raise TraceFormatError(
                    f"{self.path.name}: END offset {end_offset} out of range"
                )
            handle.seek(end_offset)
            tag = _read_exact(handle, 1, end_offset)[0]
            if tag != _TAG_END:
                raise TraceFormatError(
                    f"byte {end_offset}: footer does not point at an END record"
                )
            self._request_count = _read_varint(handle, end_offset)
            length = _read_varint(handle, end_offset)
            final_meta = _decode_meta(_read_exact(handle, length, end_offset), end_offset)

            # Initial META records sit between the header and the first
            # hint-set/block record; read them for the name + generation
            # metadata, then overlay the final metadata from the END record.
            handle.seek(len(_MAGIC) + 1)
            metadata: dict = {}
            while True:
                offset = handle.tell()
                peek = handle.read(1)
                if not peek or peek[0] != _TAG_META:
                    break
                length = _read_varint(handle, offset)
                metadata.update(_decode_meta(_read_exact(handle, length, offset), offset))
            metadata.update(final_meta)
            # The name lives in self.name only, so self.metadata matches the
            # metadata dict of the equivalent materialized Trace exactly.
            self.name = metadata.pop("name", self.path.stem) or self.path.stem
            self.metadata = metadata


def _decode_meta(payload: bytes, offset: int) -> dict:
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"byte {offset}: malformed metadata JSON") from exc
    if not isinstance(data, dict):
        raise TraceFormatError(f"byte {offset}: metadata must be a JSON object")
    return data


def _read_exact(handle: BinaryIO, length: int, offset: int) -> bytes:
    data = handle.read(length)
    if len(data) != length:
        raise TraceFormatError(
            f"byte {offset}: unexpected end of file (wanted {length} bytes, "
            f"got {len(data)} — truncated trace?)"
        )
    return data


def _read_varint(handle: BinaryIO, offset: int) -> int:
    result = 0
    shift = 0
    while True:
        byte = handle.read(1)
        if not byte:
            raise TraceFormatError(
                f"byte {offset}: unexpected end of file inside a varint"
            )
        value = byte[0]
        result |= (value & 0x7F) << shift
        if not value & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise TraceFormatError(f"byte {offset}: varint longer than 9 bytes")


def _decode_block(
    body: bytes, expected: int, hint_sets: dict[int, HintSet], offset: int
) -> list[IORequest]:
    """Decode one BLOCK payload into a list of requests."""
    requests: list[IORequest] = []
    append = requests.append
    read_kind = RequestKind.READ
    write_kind = RequestKind.WRITE
    pos = 0
    end = len(body)
    try:
        while pos < end:
            flags = body[pos]
            pos += 1
            # Inline varint decode: the two-field common case stays tight.
            page = 0
            shift = 0
            while True:
                byte = body[pos]
                pos += 1
                page |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            hint_ref = 0
            shift = 0
            while True:
                byte = body[pos]
                pos += 1
                hint_ref |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
            if hint_ref == 0:
                hints = EMPTY_HINT_SET
            else:
                hints = hint_sets[hint_ref - 1]
            if flags & _FLAG_CLIENT_ID:
                length = 0
                shift = 0
                while True:
                    byte = body[pos]
                    pos += 1
                    length |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                if pos + length > end:
                    raise IndexError(pos)
                client_id = body[pos : pos + length].decode("utf-8")
                pos += length
            else:
                client_id = hints.client_id
            append(
                IORequest(
                    page=page,
                    kind=write_kind if flags & _FLAG_WRITE else read_kind,
                    hints=hints,
                    client_id=client_id,
                )
            )
    except KeyError as exc:
        raise TraceFormatError(
            f"byte {offset}: block references undefined hint set id {exc.args[0]}"
        ) from exc
    except IndexError as exc:
        raise TraceFormatError(
            f"byte {offset}: garbled block record (ran off the end of the block)"
        ) from exc
    if pos != end or len(requests) != expected:
        raise TraceFormatError(
            f"byte {offset}: block declared {expected} requests in {end} bytes "
            f"but decoded {len(requests)} using {pos}"
        )
    return requests


def _decode_varint_column(arr: Any, starts: Any, ends: Any) -> Any:
    """Decode one varint per ``[start, end]`` span of *arr* into int64.

    Returns None when any varint exceeds 8 bytes (56 bits of payload): the
    value might not fit an int64 lane, so the caller must use the scalar
    decoder, which carries arbitrary-precision Python ints.
    """
    lengths = ends - starts + 1
    max_len = int(lengths.max())
    if max_len > 8:
        return None
    values = (arr[starts] & 0x7F).astype(_np.int64)
    for position in range(1, max_len):
        mask = lengths > position
        values[mask] |= (
            arr[starts[mask] + position].astype(_np.int64) & 0x7F
        ) << (7 * position)
    return values


def _decode_block_columnar(
    body: bytes, expected: int, offset: int
) -> tuple[Any, Any, Any] | None:
    """Vectorised BLOCK decode into ``(page, hint_ref, write)`` columns.

    Exploits the record grammar: the flags byte and every varint terminator
    byte have bit 7 clear, while varint continuation bytes have it set.  A
    record without :data:`_FLAG_CLIENT_ID` is therefore exactly three
    "units" — flags, page, hint_ref — whose last bytes are the block's
    clear-bit positions, three per record, with each record's first unit
    (the flags byte, a unit of length one) starting right after the
    previous record.  Any block violating that shape — explicit client-id
    records, truncated records, oversized varints — returns None and is
    handled by the scalar decoder (which raises the canonical
    :class:`TraceFormatError` for genuinely garbled input).
    """
    if _np is None or expected == 0 or not body:
        return None
    arr = _np.frombuffer(body, dtype=_np.uint8)
    ends = _np.flatnonzero(arr < 0x80)
    if ends.size != 3 * expected:
        return None
    flags_pos = ends[0::3]
    page_end = ends[1::3]
    hint_end = ends[2::3]
    starts = _np.empty_like(flags_pos)
    starts[0] = 0
    starts[1:] = hint_end[:-1] + 1
    if int(hint_end[-1]) != arr.size - 1 or not _np.array_equal(flags_pos, starts):
        return None
    flags = arr[flags_pos]
    if bool((flags & _FLAG_CLIENT_ID).any()):
        return None
    page = _decode_varint_column(arr, flags_pos + 1, page_end)
    if page is None:
        return None
    hint_ref = _decode_varint_column(arr, page_end + 1, hint_end)
    if hint_ref is None:
        return None
    write = (flags & _FLAG_WRITE) != 0
    return page, hint_ref, write


def open_trace_binary(path: str | Path) -> StreamedTrace:
    """Open a binary trace for streaming replay (see :class:`StreamedTrace`)."""
    return StreamedTrace(path)


def read_trace_binary(path: str | Path) -> Trace:
    """Read a binary trace fully into memory as a :class:`Trace`."""
    return StreamedTrace(path).load()
