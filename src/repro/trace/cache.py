"""On-disk trace cache: generate a synthetic trace once, replay it forever.

Synthetic trace generation (first-tier buffer simulation + workload model) is
the repository's biggest fixed cost — every experiment run and every sweep
worker used to regenerate the same deterministic traces from scratch.  This
module caches generated traces as binary trace files
(:mod:`repro.trace.binio`), keyed by everything that determines the request
stream:

* the standard-trace configuration (database/buffer sizes, workload knobs),
* the workload seed,
* the target request count, and
* the client-id override (multi-client experiments).

The cache directory defaults to ``~/.cache/repro-clic/traces`` and can be
moved with the ``REPRO_TRACE_CACHE`` environment variable (set it to ``off``,
``none`` or ``0`` to disable caching entirely).

:class:`TraceSpec` is the *lazy* handle the sweep machinery passes around: a
tiny picklable description of a trace that each worker process opens itself
(through this cache), instead of the parent pickling millions of request
objects to every worker.  A spec is a valid request source for the
shared-replay engine: iterating it streams requests chunk-by-chunk from the
cached binary file with bounded memory.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.simulation.request import IORequest

if TYPE_CHECKING:  # imported for type annotations only (lazy at runtime)
    from repro.trace.columnar import ColumnarChunk
    from repro.workloads.arrivals import ArrivalProcess
    from repro.workloads.phased import PhasePlan, PhasedTraceStream
    from repro.workloads.standard import StandardTraceStream
from repro.trace.binio import BinaryTraceWriter, StreamedTrace
from repro.trace.records import Trace

__all__ = [
    "TraceSpec",
    "TraceCache",
    "default_trace_cache",
    "set_default_trace_cache",
    "trace_cache_enabled",
]

#: Environment variable overriding the cache directory (or disabling it).
CACHE_ENV_VAR = "REPRO_TRACE_CACHE"

_DISABLED_VALUES = {"off", "none", "0", "disabled"}

#: Bumped whenever generation or the binary layout changes incompatibly, so
#: stale cache files are regenerated instead of misread.
CACHE_KEY_VERSION = 1


@dataclass(frozen=True)
class TraceSpec:
    """A picklable description of one standard trace (the lazy trace source).

    Workers in a parallel sweep receive the spec (a few dozen bytes) and
    resolve it against the on-disk cache themselves; the parent process calls
    :meth:`ensure` once before fanning out so workers never race to generate.

    ``plan`` switches the spec from a standard trace to a *phased* trace
    (:mod:`repro.workloads.phased`): the whole phase schedule — every
    tenant's trace name, seed and request share — is hashed into the cache
    key, and ``name``/``seed``/``target_requests`` become informational
    (they mirror the plan).  Build phased specs with :meth:`for_plan`.

    ``arrivals`` overlays an open-loop arrival clock
    (:mod:`repro.workloads.arrivals`) on the trace *without changing its
    request order or content* — arrival timestamps are a pure function of
    the sequence number, never stored in the trace file.  The overlay is
    therefore **excluded from the cache key**: every arrival process (and
    every offered-load rescale) replays the same cached binary trace.
    Specs differing only in ``arrivals`` still compare (and hash) unequal,
    so sweep machinery keyed on spec equality treats them as distinct
    streams.  Build overlaid specs with :meth:`with_arrivals`; iterate
    ``(arrival_us, request)`` pairs with :meth:`iter_timed`.
    """

    name: str
    seed: int = 17
    target_requests: int = 60_000
    client_id: str | None = None
    plan: "PhasePlan | None" = None
    arrivals: "ArrivalProcess | None" = None

    @classmethod
    def for_plan(cls, plan: "PhasePlan") -> "TraceSpec":
        """The lazy cache handle for one phased trace schedule."""
        return cls(
            name=plan.name,
            seed=0,
            target_requests=plan.total_requests,
            plan=plan,
        )

    def with_arrivals(self, arrivals: "ArrivalProcess | None") -> "TraceSpec":
        """The same trace with an arrival-clock overlay (``None`` removes it)."""
        from dataclasses import replace

        return replace(self, arrivals=arrivals)

    # ----------------------------------------------------- request source API
    def iter_requests(self) -> Iterator[IORequest]:
        """Stream the trace's requests (generating into the cache on miss)."""
        return default_trace_cache().open(self).iter_requests()

    def iter_timed(self) -> Iterator[tuple[float, IORequest]]:
        """Stream ``(arrival_us, request)`` pairs under the arrival overlay.

        Requires :attr:`arrivals`; the timestamps are exactly what a
        :class:`~repro.simulation.queueing.QueueingObserver` driven by the
        same process would see, stamped on the unchanged request stream.
        """
        if self.arrivals is None:
            raise ValueError(
                "TraceSpec has no arrival overlay; build one with with_arrivals()"
            )
        return zip(self.arrivals.times(), self.iter_requests())

    def iter_chunks(self) -> Iterator[list[IORequest]]:
        """Stream the trace's requests in decoded-block chunks."""
        return default_trace_cache().open(self).iter_chunks()

    def iter_columnar(self) -> "Iterator[ColumnarChunk]":
        """Stream the trace as columnar chunks (the engine's array path).

        Requires numpy; the same blocks as :meth:`iter_chunks`, decoded
        straight into arrays."""
        return default_trace_cache().open(self).iter_columnar()

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    def ensure(self) -> None:
        """Make sure the cached file exists (generate it if necessary).

        A no-op when the cache is disabled — workers will then generate in
        memory themselves.
        """
        cache = default_trace_cache()
        if cache.enabled:
            cache.ensure(self)

    def open(self) -> StreamedTrace:
        """Open the cached binary trace for streaming replay."""
        return default_trace_cache().open(self)

    def load(self) -> Trace:
        """Materialize the trace in memory (via the cache)."""
        return default_trace_cache().load(self)


class TraceCache:
    """A directory of binary trace files keyed by generation parameters.

    ``root=None`` resolves the directory from ``REPRO_TRACE_CACHE`` (or the
    default under ``~/.cache``); an explicitly disabled cache (see
    :func:`trace_cache_enabled`) still works but generates in memory and
    never touches disk.
    """

    def __init__(self, root: str | Path | None = None, enabled: bool | None = None):
        env = os.environ.get(CACHE_ENV_VAR, "").strip()
        if enabled is None:
            # An explicit root is an explicit request for an enabled cache;
            # only the default-constructed cache honours a disabling env var.
            if root is not None:
                enabled = True
            else:
                enabled = env.lower() not in _DISABLED_VALUES if env else True
        self.enabled = enabled
        if root is not None:
            self.root = Path(root)
        elif env and env.lower() not in _DISABLED_VALUES:
            self.root = Path(env)
        else:
            self.root = Path.home() / ".cache" / "repro-clic" / "traces"
        self.hits = 0
        self.misses = 0
        # Disabled-path memo: without a disk file to reuse, repeated passes
        # over the same spec (offline prepare + replay, per-worker opens)
        # must not regenerate the trace each time.
        self._memo: dict[TraceSpec, Trace] = {}

    # ----------------------------------------------------------------- lookup
    def path_for(self, spec: TraceSpec) -> Path:
        """The cache file path for *spec* (which may not exist yet)."""
        return self.root / f"{spec.name}-{self._digest(spec)}.ctb"

    def ensure(self, spec: TraceSpec) -> Path:
        """Return the cache file for *spec*, generating it on a miss.

        Generation streams straight from the workload generator into the
        binary writer (never materializing the request list) and lands in
        the cache via an atomic rename, so concurrent processes racing on
        the same spec at worst duplicate work — they never observe a
        half-written file.
        """
        if not self.enabled:
            raise RuntimeError("trace cache is disabled; use load() or open()")
        path = self.path_for(spec)
        if path.exists():
            self.hits += 1
            return path
        self.misses += 1
        self.root.mkdir(parents=True, exist_ok=True)
        stream = self._generator(spec)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{spec.name}-", suffix=".ctb.tmp", dir=self.root
        )
        os.close(fd)
        tmp_path = Path(tmp_name)
        try:
            with BinaryTraceWriter(tmp_path, name=spec.name) as writer:
                writer.write_all(stream)
                writer.update_metadata(stream.metadata())
            os.replace(tmp_path, path)
        finally:
            tmp_path.unlink(missing_ok=True)
        return path

    def open(self, spec: TraceSpec) -> StreamedTrace:
        """A streaming view of the cached trace (generating on a miss)."""
        if not self.enabled:
            return self._materialized_stream(spec)
        return StreamedTrace(self.ensure(spec))

    def load(self, spec: TraceSpec) -> Trace:
        """The materialized trace (through the cache when enabled)."""
        if not self.enabled:
            trace = self._memo.get(spec)
            if trace is None:
                self.misses += 1
                trace = self._generate_in_memory(spec)
                self._memo[spec] = trace
            else:
                self.hits += 1
            return trace
        return self.open(spec).load()

    # ------------------------------------------------------------- accounting
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "dir": str(self.root)}

    def summary(self) -> str:
        """One-line summary, e.g. for the experiment CLI's footer."""
        state = "" if self.enabled else " (disabled)"
        return f"trace cache: hits={self.hits} misses={self.misses} dir={self.root}{state}"

    # -------------------------------------------------------------- internals
    def _digest(self, spec: TraceSpec) -> str:
        # Deliberately excludes ``spec.arrivals``: the arrival overlay never
        # changes the generated request stream, so every overlay (and every
        # offered-load rescale) shares one cached binary file.
        # Lazy import: repro.workloads.standard itself imports repro.trace.
        from repro.trace.binio import FORMAT_VERSION
        from repro.workloads.standard import STANDARD_TRACES

        if spec.plan is not None:
            # Phased traces: the plan repr names every phase, tenant and
            # request share; the referenced standard-trace configs cover the
            # per-tenant generation knobs.
            configs = tuple(
                STANDARD_TRACES.get(client.trace)
                for client in spec.plan.distinct_clients()
            )
            fingerprint = repr(
                (CACHE_KEY_VERSION, FORMAT_VERSION, "phased", spec.plan, configs)
            )
        else:
            config = STANDARD_TRACES.get(spec.name)
            fingerprint = repr(
                (
                    CACHE_KEY_VERSION,
                    FORMAT_VERSION,
                    spec.name,
                    spec.seed,
                    spec.target_requests,
                    spec.client_id,
                    config,  # dataclass repr covers every generation knob
                )
            )
        return sha256(fingerprint.encode("utf-8")).hexdigest()[:16]

    def _generator(
        self, spec: TraceSpec
    ) -> "PhasedTraceStream | StandardTraceStream":
        if spec.plan is not None:
            from repro.workloads.phased import PhasedTraceStream

            return PhasedTraceStream(spec.plan)
        from repro.workloads.standard import StandardTraceStream

        return StandardTraceStream(
            spec.name,
            seed=spec.seed,
            target_requests=spec.target_requests,
            client_id=spec.client_id,
        )

    def _generate_in_memory(self, spec: TraceSpec) -> Trace:
        if spec.plan is not None:
            from repro.workloads.phased import phased_trace

            return phased_trace(spec.plan)
        from repro.workloads.standard import standard_trace

        return standard_trace(
            spec.name,
            seed=spec.seed,
            target_requests=spec.target_requests,
            client_id=spec.client_id,
        )

    def _materialized_stream(self, spec: TraceSpec) -> "_InMemoryStream":
        return _InMemoryStream(self.load(spec))


class _InMemoryStream:
    """Adapter giving a materialized trace the :class:`StreamedTrace` surface
    (used when the cache is disabled, so callers keep one code path)."""

    def __init__(self, trace: Trace):
        self._trace = trace
        self.name = trace.name
        self.metadata = dict(trace.metadata)

    def __len__(self) -> int:
        return len(self._trace)

    def iter_requests(self) -> Iterator[IORequest]:
        return iter(self._trace.requests())

    def __iter__(self) -> Iterator[IORequest]:
        return self.iter_requests()

    def iter_chunks(self) -> Iterator[list[IORequest]]:
        yield self._trace.requests()

    def iter_columnar(self) -> "Iterator[ColumnarChunk]":
        from repro.trace.columnar import ColumnarSource

        return ColumnarSource(self._trace.requests()).iter_columnar()

    def load(self) -> Trace:
        return self._trace


_DEFAULT_CACHE: TraceCache | None = None


def default_trace_cache() -> TraceCache:
    """The process-wide cache (created on first use from the environment)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = TraceCache()
    return _DEFAULT_CACHE


def set_default_trace_cache(cache: TraceCache | None) -> None:
    """Replace the process-wide cache (``None`` re-resolves from the env)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


def trace_cache_enabled() -> bool:
    return default_trace_cache().enabled
