"""Columnar batch representation of a request stream.

A :class:`ColumnarChunk` carries one decoded trace block as parallel numpy
arrays — page, op, hint-dictionary id, client-id index, sequence number —
instead of a list of :class:`~repro.simulation.request.IORequest` objects.
It is the unit of work of the columnar replay path: the binary trace reader
(:meth:`repro.trace.binio.StreamedTrace.iter_columnar`) decodes straight
into chunks, batch policy kernels (:meth:`repro.cache.base.CachePolicy.
batch_access`) consume them, and batch-aware observers
(:meth:`repro.simulation.observers.ReplayObserver.on_batch`) account them
without materialising per-request objects.

Both sides can always fall back: :meth:`ColumnarChunk.from_requests` lifts a
request list into a chunk, and :meth:`ColumnarChunk.requests` materialises
the exact equivalent request list (memoised, so at most one materialisation
per chunk serves every scalar consumer).  The object path remains the
bit-identical reference implementation; columnar replay must never change a
single counter.

numpy is an accelerator, never a dependency: when it is missing the engine
simply keeps using the object path (``NUMPY_AVAILABLE`` is the feature
probe).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

try:  # optional acceleration; the object path is bit-identical
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

from repro.core.hints import EMPTY_HINT_SET, HintSet
from repro.simulation.request import IORequest, RequestKind

__all__ = [
    "COLUMNAR_CHUNK_REQUESTS",
    "NUMPY_AVAILABLE",
    "ColumnarChunk",
    "ColumnarSource",
    "columnar_chunks",
]

#: True when numpy is importable and the columnar path can engage.
NUMPY_AVAILABLE = _np is not None

#: Requests per chunk produced by :class:`ColumnarSource`; matches the
#: binary trace BLOCK size so both sources batch identically.
COLUMNAR_CHUNK_REQUESTS = 4096

# Arrays are annotated as ``Any``: numpy is optional at runtime, so the
# module cannot reference ``np.ndarray`` in evaluated positions.
Array = Any

_EMPTY_IDENTITY = ("", (), ())


def _require_numpy() -> Any:
    if _np is None:
        raise RuntimeError(
            "the columnar replay path requires numpy; "
            "use the object path (iter_chunks/iter_requests) instead"
        )
    return _np


class ColumnarChunk:
    """One batch of requests as parallel columns.

    Columns (all the same length):

    ``page``
        int64 — page number of each request.
    ``write``
        bool — the op column; True for writes, False for reads.
    ``hint_id``
        int64 — index into ``hint_sets``; 0 is always the empty hint set.
    ``client_idx``
        int64 — index into ``clients``.
    ``seq``
        int64 — global sequence number of each request.  Engine-produced
        chunks are contiguous (``seq[i] = seq_base + i``); gathered
        sub-chunks (e.g. per-shard splits) are not.

    ``hint_sets`` and ``clients`` are lookup tables shared across every
    chunk of a stream; they may contain entries a particular chunk never
    references.
    """

    __slots__ = (
        "page",
        "write",
        "hint_id",
        "client_idx",
        "seq",
        "hint_sets",
        "clients",
        "_requests",
        "_seq_list",
    )

    def __init__(
        self,
        page: Array,
        write: Array,
        hint_id: Array,
        client_idx: Array,
        seq: Array,
        hint_sets: tuple[HintSet, ...],
        clients: tuple[str, ...],
    ):
        self.page = page
        self.write = write
        self.hint_id = hint_id
        self.client_idx = client_idx
        self.seq = seq
        self.hint_sets = hint_sets
        self.clients = clients
        self._requests: list[IORequest] | None = None
        self._seq_list: list[int] | None = None

    # ------------------------------------------------------------- properties
    def __len__(self) -> int:
        return len(self.page)

    @property
    def seq_base(self) -> int:
        """Sequence number of the first request (0 for an empty chunk)."""
        return int(self.seq[0]) if len(self.seq) else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarChunk({len(self)} requests, seq_base={self.seq_base}, "
            f"{len(self.clients)} clients, {len(self.hint_sets)} hint sets)"
        )

    # ------------------------------------------------------------- converters
    @classmethod
    def from_requests(
        cls, requests: Sequence[IORequest], start_seq: int = 0
    ) -> "ColumnarChunk":
        """Lift a request list into a chunk (the object-side converter).

        The resulting chunk memoises *requests* itself, so a follow-up
        :meth:`requests` call returns the original objects at zero cost.
        """
        np = _require_numpy()
        n = len(requests)
        page = np.fromiter((request.page for request in requests), np.int64, n)
        write = np.fromiter(
            (not request.is_read for request in requests), np.bool_, n
        )
        hint_sets: list[HintSet] = [EMPTY_HINT_SET]
        hint_index: dict[tuple, int] = {}
        clients: list[str] = []
        client_index: dict[str, int] = {}
        hint_id = np.empty(n, np.int64)
        client_idx = np.empty(n, np.int64)
        for i, request in enumerate(requests):
            hints = request.hints
            identity = hints.identity()
            if identity == _EMPTY_IDENTITY:
                hint_id[i] = 0
            else:
                idx = hint_index.get(identity)
                if idx is None:
                    idx = len(hint_sets)
                    hint_index[identity] = idx
                    hint_sets.append(hints)
                hint_id[i] = idx
            client = request.client_id
            cidx = client_index.get(client)
            if cidx is None:
                cidx = len(clients)
                client_index[client] = cidx
                clients.append(client)
            client_idx[i] = cidx
        seq = np.arange(start_seq, start_seq + n, dtype=np.int64)
        chunk = cls(
            page, write, hint_id, client_idx, seq, tuple(hint_sets), tuple(clients)
        )
        chunk._requests = list(requests)
        return chunk

    def requests(self) -> list[IORequest]:
        """Materialise the equivalent request list (memoised).

        The list is identical — field for field — to what the scalar
        decoder produces for the same records, so every scalar consumer
        (fallback kernels, fallback observers) sees exactly the object-path
        inputs.
        """
        if self._requests is None:
            read_kind = RequestKind.READ
            write_kind = RequestKind.WRITE
            hint_sets = self.hint_sets
            clients = self.clients
            self._requests = [
                IORequest(
                    page=page,
                    kind=write_kind if write else read_kind,
                    hints=hint_sets[hint],
                    client_id=clients[client],
                )
                for page, write, hint, client in zip(
                    self.page.tolist(),
                    self.write.tolist(),
                    self.hint_id.tolist(),
                    self.client_idx.tolist(),
                )
            ]
        return self._requests

    def to_requests(self) -> list[IORequest]:
        """Alias of :meth:`requests` (the columnar-side converter)."""
        return self.requests()

    def seq_list(self) -> list[int]:
        """The seq column as a Python list (memoised).

        The scalar-lifting default ``batch_access`` zips this with
        :meth:`requests`; memoising it at the chunk means N fallback
        policies sharing one chunk convert the column once, not N times.
        """
        if self._seq_list is None:
            self._seq_list = self.seq.tolist()
        return self._seq_list

    # ---------------------------------------------------------------- slicing
    def slice(self, start: int, stop: int) -> "ColumnarChunk":
        """Contiguous sub-chunk ``[start:stop)`` (array views, no copies)."""
        chunk = ColumnarChunk(
            self.page[start:stop],
            self.write[start:stop],
            self.hint_id[start:stop],
            self.client_idx[start:stop],
            self.seq[start:stop],
            self.hint_sets,
            self.clients,
        )
        if self._requests is not None:
            chunk._requests = self._requests[start:stop]
        if self._seq_list is not None:
            chunk._seq_list = self._seq_list[start:stop]
        return chunk

    def take(self, indices: Array) -> "ColumnarChunk":
        """Gathered sub-chunk (e.g. one shard's requests, original order)."""
        chunk = ColumnarChunk(
            self.page[indices],
            self.write[indices],
            self.hint_id[indices],
            self.client_idx[indices],
            self.seq[indices],
            self.hint_sets,
            self.clients,
        )
        if self._requests is not None:
            requests = self._requests
            chunk._requests = [requests[i] for i in indices.tolist()]
        return chunk

    def rebase(self, start_seq: int) -> "ColumnarChunk":
        """Copy with contiguous sequence numbers starting at *start_seq*.

        Requests carry no sequence number, so the memoised list (if any)
        stays valid and is shared.
        """
        np = _require_numpy()
        chunk = ColumnarChunk(
            self.page,
            self.write,
            self.hint_id,
            self.client_idx,
            np.arange(start_seq, start_seq + len(self), dtype=np.int64),
            self.hint_sets,
            self.clients,
        )
        chunk._requests = self._requests
        return chunk

    # ------------------------------------------------------------- accounting
    def present_clients(self) -> list[tuple[str, Array]]:
        """Clients appearing in this chunk, in first-appearance order.

        Returns ``(client_id, mask)`` pairs where ``mask`` is the boolean
        row-selector for that client — the per-client accounting primitive
        of the columnar engine loop.
        """
        np = _require_numpy()
        unique, first = np.unique(self.client_idx, return_index=True)
        order = np.argsort(first, kind="stable")
        out: list[tuple[str, Array]] = []
        for position in order.tolist():
            idx = int(unique[position])
            out.append((self.clients[idx], self.client_idx == idx))
        return out


def columnar_chunks(
    chunks: Iterator[list[IORequest]] | Sequence[list[IORequest]],
    start_seq: int = 0,
) -> Iterator[ColumnarChunk]:
    """Lift an object-chunk stream into a columnar-chunk stream."""
    seq = start_seq
    for chunk in chunks:
        yield ColumnarChunk.from_requests(chunk, seq)
        seq += len(chunk)


class ColumnarSource:
    """Adapts an in-memory request list to the columnar source protocol.

    Exposes all three source methods — ``iter_requests`` (lazy protocol),
    ``iter_chunks`` (object batches) and ``iter_columnar`` — so it can be
    handed to the engine, a sweep runner, or pickled into sweep workers
    like any other request source.
    """

    def __init__(
        self,
        requests: Sequence[IORequest],
        chunk_requests: int = COLUMNAR_CHUNK_REQUESTS,
    ):
        if chunk_requests <= 0:
            raise ValueError("chunk_requests must be positive")
        self._requests = list(requests)
        self._chunk_requests = chunk_requests

    def __len__(self) -> int:
        return len(self._requests)

    def iter_requests(self) -> Iterator[IORequest]:
        return iter(self._requests)

    def iter_chunks(self) -> Iterator[list[IORequest]]:
        requests = self._requests
        size = self._chunk_requests
        for start in range(0, len(requests), size):
            yield requests[start : start + size]

    def iter_columnar(self) -> Iterator[ColumnarChunk]:
        return columnar_chunks(self.iter_chunks())
