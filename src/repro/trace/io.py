"""Trace serialization.

Traces are stored in a simple line-oriented text format so they can be
inspected, diffed and filtered with ordinary tools:

* header lines starting with ``#meta`` carry JSON metadata key/value pairs;
* ``#hintset <id> <json>`` lines define each distinct hint set once, keyed by
  a small integer, with the JSON carrying ``client``, ``names`` and ``values``;
* every remaining line is one request: ``<R|W> <page> <hintset id>``.

Dictionary-encoding the hint sets keeps files compact (a trace usually has
millions of requests but only tens or hundreds of distinct hint sets — that
skew is exactly what Section 5 of the paper exploits).

Both this text format and the binary format used by the on-disk trace cache
(:mod:`repro.trace.binio`) are specified in ``docs/trace-format.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.core.hints import EMPTY_HINT_SET, HintSet
from repro.simulation.request import IORequest, RequestKind
from repro.trace.records import Trace

__all__ = ["write_trace", "read_trace", "TraceFormatError"]


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed.

    Parsers report the position of the offending input (a line number for the
    text format, a byte offset for the binary format) in the message, and
    never let ``KeyError``/``ValueError``/``json.JSONDecodeError`` escape.
    """


def _encode_hint_set(hints: HintSet) -> str:
    """The JSON hint-set payload shared by the text and binary formats."""
    return json.dumps(
        {"client": hints.client_id, "names": list(hints.names), "values": list(hints.values)},
        separators=(",", ":"),
    )


def _decode_hint_set(payload: str, context: str) -> HintSet:
    """Decode a hint-set JSON payload (shared by the text and binary formats).

    *context* names the input position for error messages — ``"line N"``
    for the text format, ``"byte N"`` for the binary format.
    """
    try:
        data = json.loads(payload)
        return HintSet(
            client_id=data["client"],
            names=tuple(data["names"]),
            values=tuple(data["values"]),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{context}: malformed hint set definition: {payload!r}"
        ) from exc


def write_trace(trace: Trace, path: str | Path) -> None:
    """Write *trace* to *path* in the text trace format."""
    path = Path(path)
    hint_ids: dict[tuple, int] = {}
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"#meta {json.dumps({'name': trace.name, **trace.metadata}, default=str)}\n")
        for request in trace:
            # identity(), not key(): the key omits hint names, but the
            # dictionary must distinguish sets that differ only in names.
            key = request.hints.identity()
            hint_id = hint_ids.get(key)
            if hint_id is None:
                hint_id = len(hint_ids)
                hint_ids[key] = hint_id
                handle.write(f"#hintset {hint_id} {_encode_hint_set(request.hints)}\n")
            kind = "R" if request.is_read else "W"
            handle.write(f"{kind} {request.page} {hint_id}\n")


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _parse_trace(handle, default_name=path.stem)


def _parse_trace(handle: TextIO, default_name: str) -> Trace:
    name = default_name
    metadata: dict = {}
    hint_sets: dict[int, HintSet] = {}
    requests: list[IORequest] = []
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#meta "):
            try:
                payload = json.loads(line[len("#meta "):])
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"line {line_number}: malformed #meta JSON") from exc
            if not isinstance(payload, dict):
                raise TraceFormatError(
                    f"line {line_number}: #meta payload must be a JSON object"
                )
            name = payload.pop("name", name)
            metadata.update(payload)
            continue
        if line.startswith("#hintset "):
            fields = line.split(" ", 2)
            if len(fields) != 3:
                raise TraceFormatError(
                    f"line {line_number}: expected '#hintset <id> <json>', got {line!r}"
                )
            _, hint_id_text, payload = fields
            try:
                hint_id = int(hint_id_text)
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {line_number}: non-integer hint set id {hint_id_text!r}"
                ) from exc
            hint_sets[hint_id] = _decode_hint_set(payload, f"line {line_number}")
            continue
        parts = line.split()
        if len(parts) != 3:
            raise TraceFormatError(f"line {line_number}: expected 'kind page hintset', got {line!r}")
        kind_text, page_text, hint_id_text = parts
        if kind_text not in ("R", "W"):
            raise TraceFormatError(f"line {line_number}: unknown request kind {kind_text!r}")
        try:
            page = int(page_text)
            hint_id = int(hint_id_text)
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: non-integer field") from exc
        if hint_id < 0:
            hints = EMPTY_HINT_SET
        else:
            try:
                hints = hint_sets[hint_id]
            except KeyError as exc:
                raise TraceFormatError(
                    f"line {line_number}: undefined hint set id {hint_id}"
                ) from exc
        requests.append(
            IORequest(
                page=page,
                kind=RequestKind.READ if kind_text == "R" else RequestKind.WRITE,
                hints=hints,
            )
        )
    return Trace(name=name, requests_list=requests, metadata=metadata)
