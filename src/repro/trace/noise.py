"""Synthetic "noise" hint injection (paper Section 6.3).

To study how CLIC copes with useless hints, the paper adds ``T`` synthetic
hint types to every request of an existing trace.  Each injected hint value
is drawn independently from a domain of ``D`` values using a Zipf
distribution with skew ``z = 1``.  Because the injected values are random,
they carry no information about re-reference behaviour; they only *dilute*
the informative hint sets (each original hint set is split into up to
``D**T`` variants), stressing the top-k hint tracking.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.simulation.request import IORequest
from repro.trace.records import Trace

__all__ = ["ZipfSampler", "inject_noise_hints", "inject_noise_into_trace"]


class ZipfSampler:
    """Samples integers 0..n-1 with probability proportional to 1/(rank+1)**s."""

    def __init__(self, n: int, skew: float = 1.0, rng: random.Random | None = None):
        if n < 1:
            raise ValueError(f"domain size must be >= 1, got {n}")
        if skew < 0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        # A missing rng must not fall back to OS entropy (the sampler's draws
        # would differ run to run); default to the fixed seed 0 instead.
        self._rng = rng if rng is not None else random.Random(0)
        weights = [1.0 / ((rank + 1) ** skew) for rank in range(n)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0
        self._n = n

    @property
    def domain_size(self) -> int:
        return self._n

    def sample(self) -> int:
        """Draw one value (0-based rank; rank 0 is the most likely)."""
        u = self._rng.random()
        # Binary search over the cumulative distribution.
        lo, hi = 0, self._n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


def inject_noise_hints(
    requests: Sequence[IORequest],
    num_types: int,
    domain_size: int = 10,
    skew: float = 1.0,
    seed: int = 0,
    name_prefix: str = "noise",
) -> list[IORequest]:
    """Return a copy of *requests* with ``num_types`` random hint types appended.

    With ``num_types == 0`` the requests are returned unchanged (as new list).
    """
    if num_types < 0:
        raise ValueError("num_types must be >= 0")
    if num_types == 0:
        return list(requests)
    rng = random.Random(seed)
    samplers = [ZipfSampler(domain_size, skew, rng) for _ in range(num_types)]
    names = tuple(f"{name_prefix}_{i}" for i in range(num_types))
    noisy: list[IORequest] = []
    for request in requests:
        values = tuple(sampler.sample() for sampler in samplers)
        noisy.append(
            IORequest(
                page=request.page,
                kind=request.kind,
                hints=request.hints.extended(names, values),
                client_id=request.client_id,
            )
        )
    return noisy


def inject_noise_into_trace(
    trace: Trace,
    num_types: int,
    domain_size: int = 10,
    skew: float = 1.0,
    seed: int = 0,
) -> Trace:
    """Trace-level wrapper around :func:`inject_noise_hints`."""
    requests = inject_noise_hints(
        trace.requests(), num_types=num_types, domain_size=domain_size, skew=skew, seed=seed
    )
    metadata = dict(trace.metadata)
    metadata.update({"noise_types": num_types, "noise_domain": domain_size, "noise_skew": skew})
    return Trace(name=f"{trace.name}+T{num_types}", requests_list=requests, metadata=metadata)
