"""In-memory trace container and summary statistics (paper Figure 5).

A :class:`Trace` is an ordered list of :class:`~repro.simulation.request.IORequest`
objects plus descriptive metadata.  Its :meth:`Trace.summary` reports the
same columns as the paper's Figure 5 trace table: number of requests,
number of distinct hint sets and number of distinct pages — plus the
generation parameters of the synthetic configuration that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.simulation.request import IORequest

__all__ = ["TraceSummary", "Trace"]


@dataclass(frozen=True)
class TraceSummary:
    """Figure 5-style summary of one trace."""

    name: str
    requests: int
    reads: int
    writes: int
    distinct_pages: int
    distinct_hint_sets: int
    clients: tuple[str, ...]

    def as_dict(self) -> dict:
        return {
            "trace": self.name,
            "requests": self.requests,
            "reads": self.reads,
            "writes": self.writes,
            "distinct_pages": self.distinct_pages,
            "distinct_hint_sets": self.distinct_hint_sets,
            "clients": ", ".join(self.clients),
        }


@dataclass
class Trace:
    """An ordered I/O request trace with metadata."""

    name: str
    requests_list: list[IORequest] = field(default_factory=list)
    #: Free-form generation metadata (database size, buffer size, workload, seed, ...).
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self.requests_list)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self.requests_list)

    def __getitem__(self, index: int | slice) -> "IORequest | list[IORequest]":
        return self.requests_list[index]

    def requests(self) -> list[IORequest]:
        """The request list (the simulator consumes this directly)."""
        return self.requests_list

    def iter_requests(self) -> Iterator[IORequest]:
        """Iterate the requests (the re-iterable request-source protocol).

        Lazy sources (:class:`repro.trace.binio.StreamedTrace`,
        :class:`repro.trace.cache.TraceSpec`) expose the same method, so code
        written against the protocol accepts either.
        """
        return iter(self.requests_list)

    def append(self, request: IORequest) -> None:
        self.requests_list.append(request)

    def extend(self, requests: Iterable[IORequest]) -> None:
        self.requests_list.extend(requests)

    def truncated(self, length: int, name: str | None = None) -> "Trace":
        """A copy limited to the first *length* requests."""
        return Trace(
            name=name or f"{self.name}[:{length}]",
            requests_list=list(self.requests_list[:length]),
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------- analysis
    def summary(self) -> TraceSummary:
        """Compute the Figure 5 summary columns for this trace."""
        pages: set[int] = set()
        hint_sets: set[tuple] = set()
        clients: set[str] = set()
        reads = 0
        writes = 0
        for request in self.requests_list:
            pages.add(request.page)
            hint_sets.add(request.hints.key())
            clients.add(request.client_id)
            if request.is_read:
                reads += 1
            else:
                writes += 1
        return TraceSummary(
            name=self.name,
            requests=len(self.requests_list),
            reads=reads,
            writes=writes,
            distinct_pages=len(pages),
            distinct_hint_sets=len(hint_sets),
            clients=tuple(sorted(clients)),
        )

    def distinct_hint_sets(self) -> set[tuple]:
        return {request.hints.key() for request in self.requests_list}

    def distinct_pages(self) -> set[int]:
        return {request.page for request in self.requests_list}
