"""Hint schemas for the DB2-like and MySQL-like storage clients (paper Figure 2).

The paper instrumented IBM DB2 to emit five hint types and MySQL to emit
four.  The synthetic workload generators in :mod:`repro.workloads` emit the
same hint types with the same kind of value domains, so the hint streams seen
by the server have the structure the paper describes.  CLIC itself never
interprets these values — they are opaque categorical labels.
"""

from __future__ import annotations

from repro.core.hints import HintSchema, HintType

__all__ = [
    "RequestType",
    "DB2_HINT_NAMES",
    "MYSQL_HINT_NAMES",
    "db2_schema",
    "mysql_schema",
]


class RequestType:
    """Values of the ``request_type`` hint (DB2) / ``request_type`` hint (MySQL).

    For read requests the hint distinguishes regular reads from prefetch
    reads; for writes it carries the write hints of Li et al. [11]:
    recovery writes, replacement writes and synchronous (replacement) writes.
    """

    READ = "read"
    PREFETCH_READ = "prefetch_read"
    RECOVERY_WRITE = "recovery_write"
    REPLACEMENT_WRITE = "replacement_write"
    SYNCHRONOUS_WRITE = "synchronous_write"

    DB2_VALUES = (READ, PREFETCH_READ, RECOVERY_WRITE, REPLACEMENT_WRITE, SYNCHRONOUS_WRITE)
    #: MySQL's request-type hint only distinguishes three classes (Figure 2).
    MYSQL_VALUES = (READ, REPLACEMENT_WRITE, RECOVERY_WRITE)

    WRITE_VALUES = (RECOVERY_WRITE, REPLACEMENT_WRITE, SYNCHRONOUS_WRITE)
    READ_VALUES = (READ, PREFETCH_READ)


#: Hint type names of the DB2-like client, in schema order.
DB2_HINT_NAMES = ("pool_id", "object_id", "object_type_id", "request_type", "buffer_priority")

#: Hint type names of the MySQL-like client, in schema order.
MYSQL_HINT_NAMES = ("thread_id", "request_type", "file_id", "fix_count")


def db2_schema(
    client_id: str = "db2",
    num_pools: int = 2,
    num_objects: int = 21,
    num_object_types: int = 6,
    num_priorities: int = 4,
) -> HintSchema:
    """Schema of the five DB2 hint types (paper Figure 2, first five rows).

    The default domain cardinalities match the paper's TPC-C column; the
    TPC-H configurations pass different values.
    """
    return HintSchema(
        client_id=client_id,
        hint_types=[
            HintType(
                "pool_id",
                domain=tuple(range(num_pools)),
                description="Identifies which DB2 buffer pool generated the I/O request.",
            ),
            HintType(
                "object_id",
                domain=tuple(range(num_objects)),
                description="Identifies a group of related database objects, such as a table and its indices.",
            ),
            HintType(
                "object_type_id",
                domain=tuple(range(num_object_types)),
                description="Identifies the object type (table, index, ...).",
            ),
            HintType(
                "request_type",
                domain=RequestType.DB2_VALUES,
                description=(
                    "Distinguishes regular reads from prefetch reads; for writes carries "
                    "the write hint (recovery / replacement / synchronous)."
                ),
            ),
            HintType(
                "buffer_priority",
                domain=tuple(range(num_priorities)),
                description="Priority of the page in its DB2 buffer cache.",
            ),
        ],
    )


def mysql_schema(
    client_id: str = "mysql",
    num_threads: int = 5,
    num_files: int = 9,
    max_fix_count: int = 2,
) -> HintSchema:
    """Schema of the four MySQL hint types (paper Figure 2, last four rows)."""
    return HintSchema(
        client_id=client_id,
        hint_types=[
            HintType(
                "thread_id",
                domain=tuple(range(num_threads)),
                description="ID of the server thread that issued the request.",
            ),
            HintType(
                "request_type",
                domain=RequestType.MYSQL_VALUES,
                description="Read, replacement write, or recovery write.",
            ),
            HintType(
                "file_id",
                domain=tuple(range(num_files)),
                description="File (table plus its indexes) the page belongs to.",
            ),
            HintType(
                "fix_count",
                domain=tuple(range(max_fix_count)),
                description="How many MySQL threads currently have the page fixed (pinned).",
            ),
        ],
    )
