"""Trace-level statistics: hint-set frequencies and locality measures.

These helpers feed the Figure 5 trace table and the Figure 3 hint-priority
scatter, and they are also handy for sanity-checking synthetic traces (e.g.
verifying that a larger simulated first-tier buffer leaves less temporal
locality for the storage server, as the paper observes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.simulation.request import IORequest

__all__ = [
    "hint_set_frequencies",
    "request_type_mix",
    "reuse_distance_profile",
    "ReuseProfile",
]


def hint_set_frequencies(requests: Sequence[IORequest]) -> Counter:
    """Count how many requests carry each distinct hint set (keyed by hint key)."""
    counts: Counter = Counter()
    for request in requests:
        counts[request.hints.key()] += 1
    return counts


def request_type_mix(requests: Sequence[IORequest], hint_name: str = "request_type") -> Counter:
    """Count requests by the value of one hint type (default: the write-hint type)."""
    counts: Counter = Counter()
    for request in requests:
        counts[request.hints.get(hint_name, "<none>")] += 1
    return counts


@dataclass(frozen=True)
class ReuseProfile:
    """Aggregate temporal-locality measures of a request stream."""

    requests: int
    read_rereferences: int
    mean_reuse_distance: float
    median_reuse_distance: float
    unique_pages: int

    @property
    def rereference_fraction(self) -> float:
        """Fraction of requests whose page is read again later in the stream."""
        if self.requests == 0:
            return 0.0
        return self.read_rereferences / self.requests


def reuse_distance_profile(requests: Sequence[IORequest]) -> ReuseProfile:
    """Measure how quickly pages are *read* again after being requested.

    The distance is measured in requests, exactly like CLIC's ``D(H)``
    statistic but aggregated over the whole trace instead of per hint set.
    """
    last_seen: dict[int, int] = {}
    distances: list[int] = []
    for seq, request in enumerate(requests):
        previous = last_seen.get(request.page)
        if previous is not None and request.is_read:
            distances.append(seq - previous)
        last_seen[request.page] = seq
    distances.sort()
    count = len(distances)
    mean = sum(distances) / count if count else 0.0
    median = float(distances[count // 2]) if count else 0.0
    return ReuseProfile(
        requests=len(requests),
        read_rereferences=count,
        mean_reuse_distance=mean,
        median_reuse_distance=median,
        unique_pages=len(last_seen),
    )
