"""Synthetic DBMS storage clients and workload models.

These stand in for the paper's instrumented DB2/MySQL servers: a workload
model (TPC-C-like or TPC-H-like) generates logical page operations, a
simulated first-tier buffer pool filters them, and a client adapter attaches
the hint types of Figure 2 to the I/O requests that reach the storage server.
"""

from repro.workloads.access import (
    AppendCursor,
    HotSpotSampler,
    LogicalOp,
    PageAccess,
    ScanAccess,
)
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    build_arrivals,
)
from repro.workloads.client import DBMSClient
from repro.workloads.db2 import DB2Client
from repro.workloads.dbmodel import DatabaseObject, ObjectType, SyntheticDatabase
from repro.workloads.firsttier import FirstTierBufferPool, IOClass, PoolIO
from repro.workloads.mysql import MySQLClient
from repro.workloads.standard import (
    DEFAULT_TARGET_REQUESTS,
    SCALE_FACTOR,
    STANDARD_TRACES,
    StandardTraceConfig,
    clic_window_for,
    server_cache_sizes,
    standard_trace,
)
from repro.workloads.phased import (
    PHASE_PLANS,
    Phase,
    PhaseClient,
    PhasedTraceStream,
    PhasePlan,
    build_phase_plan,
    phased_trace,
)
from repro.workloads.tpcc import TPCC_TRANSACTION_MIX, TPCCWorkload
from repro.workloads.tpch import TPCH_QUERY_TEMPLATES, TPCHWorkload

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ARRIVAL_KINDS",
    "build_arrivals",
    "AppendCursor",
    "HotSpotSampler",
    "LogicalOp",
    "PageAccess",
    "ScanAccess",
    "DBMSClient",
    "DB2Client",
    "MySQLClient",
    "DatabaseObject",
    "ObjectType",
    "SyntheticDatabase",
    "FirstTierBufferPool",
    "IOClass",
    "PoolIO",
    "TPCCWorkload",
    "TPCC_TRANSACTION_MIX",
    "TPCHWorkload",
    "TPCH_QUERY_TEMPLATES",
    "Phase",
    "PhaseClient",
    "PhasePlan",
    "PhasedTraceStream",
    "PHASE_PLANS",
    "build_phase_plan",
    "phased_trace",
    "StandardTraceConfig",
    "STANDARD_TRACES",
    "SCALE_FACTOR",
    "DEFAULT_TARGET_REQUESTS",
    "standard_trace",
    "server_cache_sizes",
    "clic_window_for",
]
