"""Logical access primitives shared by the synthetic workload models.

Workloads (TPC-C-like, TPC-H-like) are expressed as streams of *logical
operations* against database objects; the DBMS client adapters
(:mod:`repro.workloads.db2`, :mod:`repro.workloads.mysql`) push these through
a simulated first-tier buffer pool, which is what turns logical accesses into
the second-tier I/O requests the storage server sees.

Two operation kinds cover everything the workload models need:

* :class:`PageAccess` — touch one page of an object (read or update);
* :class:`ScanAccess` — sequentially read a range of an object's pages
  (drives prefetch reads and scan-resistant buffer management).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.workloads.dbmodel import DatabaseObject

__all__ = ["PageAccess", "ScanAccess", "LogicalOp", "HotSpotSampler", "AppendCursor"]


@dataclass(frozen=True, slots=True)
class PageAccess:
    """Touch one logical page of *obj*; ``write=True`` dirties the page."""

    obj: DatabaseObject
    page_index: int
    write: bool = False
    #: Identifier of the transaction/query that issued the access (used for
    #: the MySQL ``thread_id`` hint and for bookkeeping; not interpreted).
    txn: int = 0
    #: Whether the page is a freshly appended page (no read-before-write).
    is_new_page: bool = False


@dataclass(frozen=True, slots=True)
class ScanAccess:
    """Sequentially read ``length`` pages of *obj* starting at ``start_index``."""

    obj: DatabaseObject
    start_index: int
    length: int
    txn: int = 0


LogicalOp = PageAccess | ScanAccess


class HotSpotSampler:
    """Skewed page-index sampler: a hot fraction of pages gets most accesses.

    A classic 80/20-style model: with probability ``hot_probability`` the
    sample falls uniformly inside the first ``hot_fraction`` of the object's
    pages, otherwise uniformly in the remainder.  Unlike a Zipf sampler it
    keeps working unchanged when the object grows.
    """

    def __init__(self, hot_fraction: float = 0.2, hot_probability: float = 0.8):
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")
        self._hot_fraction = hot_fraction
        self._hot_probability = hot_probability

    def sample(self, obj: DatabaseObject, rng: random.Random) -> int:
        """Sample a logical page index of *obj*."""
        total = obj.page_count
        if total == 0:
            raise ValueError(f"{obj.name} has no pages")
        hot_pages = max(1, int(total * self._hot_fraction))
        if rng.random() < self._hot_probability or hot_pages >= total:
            return rng.randrange(hot_pages)
        return hot_pages + rng.randrange(total - hot_pages)


class AppendCursor:
    """Tracks the append position of a growing object (inserts at the tail).

    TPC-C's ORDERS / ORDERLINE / HISTORY tables grow by appending rows; each
    appended row dirties the current tail page, and every ``rows_per_page``
    rows a fresh page is allocated through the database.
    """

    def __init__(self, obj: DatabaseObject, rows_per_page: int = 50):
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")
        self.obj = obj
        self._rows_per_page = rows_per_page
        self._rows_in_tail = 0

    def append(self, database, count: int = 1) -> list[PageAccess]:
        """Append *count* rows; returns the page accesses (writes) performed.

        ``database`` is the :class:`~repro.workloads.dbmodel.SyntheticDatabase`
        that owns the object (needed to allocate new pages).
        """
        accesses: list[PageAccess] = []
        for _ in range(count):
            if self.obj.page_count == 0 or self._rows_in_tail >= self._rows_per_page:
                database.grow(self.obj, 1)
                self._rows_in_tail = 0
                accesses.append(
                    PageAccess(self.obj, self.obj.last_page_index(), write=True, is_new_page=True)
                )
            else:
                accesses.append(PageAccess(self.obj, self.obj.last_page_index(), write=True))
            self._rows_in_tail += 1
        return accesses
