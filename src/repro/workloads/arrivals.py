"""Deterministic, seedable open-loop arrival processes.

The replay engine is *closed-loop*: request ``i+1`` conceptually starts
when request ``i`` finishes, so hit ratios and service times are measured
without any notion of offered load.  Capacity questions ("what happens to
p99 latency as load approaches saturation?") need the *open-loop* view:
requests arrive on their own clock, queue up when the device is busy, and
the arrival clock does not care how the server is doing.  This module
provides that clock.

An :class:`ArrivalProcess` stamps an arrival timestamp (microseconds from
stream start) onto each sequence number of an existing trace stream —
**without changing request order or content**.  The trace stays the
workload's *what*; the arrival process is its *when*.  Three shapes cover
the standard load-testing repertoire:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate, the
  M/·/· baseline with closed-form queueing ground truth;
* :class:`BurstyArrivals` — a two-phase MMPP-style process alternating
  geometric-length bursts and gaps, each phase Poisson at its own rate;
* :class:`DiurnalArrivals` — a sinusoidally rate-modulated process, the
  classic day/night load curve compressed to simulation scale.

Determinism contract (shared with the trace generators): every draw is a
pure function of ``(seed, counter)`` via a splitmix64-style hash — no
hidden RNG state.  Consequences the rest of the stack relies on:

* the same process object always yields the same timestamps (bit for bit,
  any process, any ``jobs=`` count);
* :meth:`ArrivalProcess.times` can start at any ``start_seq`` and yields
  exactly the tail of the full sequence — segmented replays resume the
  arrival clock where the previous segment left off;
* :meth:`ArrivalProcess.scaled` re-rates a process without re-seeding:
  the underlying uniforms are shared, so for Poisson the interarrival
  times scale *pointwise* and queueing delays are monotone in offered
  load path-by-path, not just in expectation (the saturation knee in the
  ``load`` experiment is exact, not sampled).

Processes are frozen dataclasses — hashable, picklable, and cheap to
fingerprint by ``repr`` — so they ride along sweep cells to worker
processes and compose with :class:`~repro.trace.cache.TraceSpec` the same
way phase plans do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

try:  # optional acceleration; every consumer works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ARRIVAL_KINDS",
    "build_arrivals",
    "unit_uniform",
]

_MASK64 = (1 << 64) - 1
#: splitmix64 increment (golden-ratio odd constant).
_GOLDEN = 0x9E3779B97F4A7C15
#: Stream tag spacing: draws for different sub-streams (interarrivals vs
#: phase lengths) never collide because their state spaces are offset by
#: this odd constant times the stream index.
_STREAM_STRIDE = 0xD1B54A32D192ED03


def _mix64(value: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit state into output bits."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def unit_uniform(seed: int, index: int, stream: int = 0) -> float:
    """The ``index``-th uniform of ``(seed, stream)``, in the *open* (0, 1).

    Counter-based: a pure function of its arguments, so any draw can be
    recomputed (or skipped to) without generating its predecessors.  The
    output is never exactly 0.0 or 1.0, so ``-log(u)`` is always finite
    and positive — interarrival times are strictly positive.
    """
    state = (seed + stream * _STREAM_STRIDE + index * _GOLDEN) & _MASK64
    return ((_mix64(state) >> 11) + 0.5) / (1 << 53)


#: Uniforms generated per block by :func:`_unit_uniforms`.
_UNIFORM_BLOCK = 1024
#: Exact reciprocal of 2**53 — a power of two, so multiplying by it is the
#: same IEEE operation as dividing by ``1 << 53``, bit for bit.
_INV_2_53 = 2.0**-53


def _unit_uniforms(seed: int, stream: int = 0) -> Iterator[float]:
    """Yield ``unit_uniform(seed, 0, stream), unit_uniform(seed, 1, stream), ...``

    Bit-identical to calling :func:`unit_uniform` per index.  With numpy
    present the splitmix64 pipeline runs vectorised over ``uint64`` blocks;
    every operation involved (wrapping 64-bit integer arithmetic, shifts,
    xors, the exact int-to-float conversion of a value below ``2**53``, and
    scaling by a power of two) is exact, so the two code paths can never
    diverge — arrival clocks do not depend on whether numpy is installed.
    """
    if _np is None:
        index = 0
        while True:
            yield unit_uniform(seed, index, stream)
            index += 1
    base = _np.uint64((seed + stream * _STREAM_STRIDE) & _MASK64)
    golden = _np.uint64(_GOLDEN)
    mul1 = _np.uint64(0xBF58476D1CE4E5B9)
    mul2 = _np.uint64(0x94D049BB133111EB)
    start = 0
    while True:
        indexes = _np.arange(start, start + _UNIFORM_BLOCK, dtype=_np.uint64)
        state = base + indexes * golden
        state = (state ^ (state >> _np.uint64(30))) * mul1
        state = (state ^ (state >> _np.uint64(27))) * mul2
        state ^= state >> _np.uint64(31)
        block = (((state >> _np.uint64(11)).astype(_np.float64) + 0.5) * _INV_2_53)
        yield from block.tolist()
        start += _UNIFORM_BLOCK


class ArrivalProcess:
    """One arrival clock: timestamps for sequence numbers 0, 1, 2, ...

    Subclasses are frozen dataclasses; the base class only fixes the
    interface.  Timestamps are microseconds from stream start, strictly
    increasing.
    """

    @property
    def mean_rate_rps(self) -> float:
        """The process's long-run mean arrival rate in requests/second."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "ArrivalProcess":
        """The same process shape (same seed, same uniforms) re-rated by
        *factor* — the offered-load dial of the ``load`` experiment."""
        raise NotImplementedError

    def times(self, start_seq: int = 0) -> Iterator[float]:
        """Yield absolute arrival times (us) for ``start_seq, start_seq+1, ...``

        The tail contract: ``times(k)`` yields exactly what ``times(0)``
        yields after discarding its first *k* values (bit for bit), so a
        replay segment starting mid-stream resumes the same clock.
        """
        raise NotImplementedError

    def _check_rate(self, rate_rps: float, name: str = "rate_rps") -> None:
        if not rate_rps > 0.0 or not math.isfinite(rate_rps):
            raise ValueError(f"{name} must be positive and finite, got {rate_rps}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant rate (the M in M/G/c).

    Interarrival ``i`` is ``-ln(u_i) / rate`` with ``u_i`` the counter-based
    uniform of ``(seed, i)`` — exponentially distributed, independent across
    indexes.  Because :meth:`scaled` keeps the uniforms and rescales the
    rate, every interarrival (and hence every queueing delay downstream)
    is pointwise monotone in the rate.
    """

    rate_rps: float
    seed: int = 0

    def __post_init__(self) -> None:
        self._check_rate(self.rate_rps)

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps

    def scaled(self, factor: float) -> "PoissonArrivals":
        return replace(self, rate_rps=self.rate_rps * factor)

    def times(self, start_seq: int = 0) -> Iterator[float]:
        scale_us = 1e6 / self.rate_rps
        log = math.log
        t = 0.0
        index = 0
        for u in _unit_uniforms(self.seed):
            t += -log(u) * scale_us
            if index >= start_seq:
                yield t
            index += 1


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Two-phase MMPP-style bursts: alternating gap/burst Poisson phases.

    The process alternates *gap* phases (rate ``base_rps``) and *burst*
    phases (rate ``burst_rps``), each lasting a geometric-ish number of
    **requests** (an exponential draw of the configured mean, rounded, at
    least 1) so the phase structure is independent of the rate dial —
    :meth:`scaled` re-rates both phases and keeps the exact same phase
    boundaries and uniforms.  Interarrivals within a phase are exponential
    at the phase rate.  Starts in a gap phase.
    """

    base_rps: float
    burst_rps: float
    mean_gap_requests: float = 800.0
    mean_burst_requests: float = 200.0
    seed: int = 0

    #: Sub-stream tag for the phase-length draws (interarrivals use stream 0).
    _PHASE_STREAM = 1

    def __post_init__(self) -> None:
        self._check_rate(self.base_rps, "base_rps")
        self._check_rate(self.burst_rps, "burst_rps")
        for name in ("mean_gap_requests", "mean_burst_requests"):
            if not getattr(self, name) >= 1.0:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    @classmethod
    def with_mean(
        cls,
        rate_rps: float,
        burst_multiplier: float = 5.0,
        mean_gap_requests: float = 800.0,
        mean_burst_requests: float = 200.0,
        seed: int = 0,
    ) -> "BurstyArrivals":
        """A bursty process whose *request-weighted* mean rate is *rate_rps*.

        With mean phase lengths ``n_g``/``n_b`` (in requests) and the burst
        rate ``m`` times the gap rate, the long-run mean rate is
        ``(n_g + n_b) / (n_g / g + n_b / (m g))``; this solves for ``g``.
        """
        if not rate_rps > 0.0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        if not burst_multiplier >= 1.0:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {burst_multiplier}"
            )
        total = mean_gap_requests + mean_burst_requests
        base = rate_rps * (
            mean_gap_requests + mean_burst_requests / burst_multiplier
        ) / total
        return cls(
            base_rps=base,
            burst_rps=base * burst_multiplier,
            mean_gap_requests=mean_gap_requests,
            mean_burst_requests=mean_burst_requests,
            seed=seed,
        )

    @property
    def mean_rate_rps(self) -> float:
        total = self.mean_gap_requests + self.mean_burst_requests
        busy_time = (
            self.mean_gap_requests / self.base_rps
            + self.mean_burst_requests / self.burst_rps
        )
        return total / busy_time

    def scaled(self, factor: float) -> "BurstyArrivals":
        return replace(
            self,
            base_rps=self.base_rps * factor,
            burst_rps=self.burst_rps * factor,
        )

    def times(self, start_seq: int = 0) -> Iterator[float]:
        seed = self.seed
        log = math.log
        gap_scale_us = 1e6 / self.base_rps
        burst_scale_us = 1e6 / self.burst_rps
        t = 0.0
        index = 0
        phase_index = 0
        remaining = 0
        in_burst = True  # toggled to gap before the first request
        scale_us = gap_scale_us
        for u in _unit_uniforms(seed):
            if remaining == 0:
                in_burst = not in_burst
                mean = self.mean_burst_requests if in_burst else self.mean_gap_requests
                draw = unit_uniform(seed, phase_index, self._PHASE_STREAM)
                phase_index += 1
                remaining = max(1, round(-mean * log(draw)))
                scale_us = burst_scale_us if in_burst else gap_scale_us
            t += -log(u) * scale_us
            remaining -= 1
            if index >= start_seq:
                yield t
            index += 1


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally rate-modulated arrivals: the day/night load curve.

    The instantaneous rate at time ``t`` (seconds) is
    ``mean_rps * (1 + amplitude * sin(2 pi t / period_s))``; interarrival
    ``i`` is an exponential draw at the rate in effect at the previous
    arrival (a standard discretisation of an inhomogeneous Poisson
    process — exact in the limit of many arrivals per period).  The
    *time*-average rate is ``mean_rps``; the request-weighted average is
    slightly higher because more requests land in high-rate stretches.
    """

    mean_rps: float
    amplitude: float = 0.6
    period_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._check_rate(self.mean_rps, "mean_rps")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1) so the rate stays positive, "
                f"got {self.amplitude}"
            )
        if not self.period_s > 0.0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")

    @property
    def mean_rate_rps(self) -> float:
        return self.mean_rps

    def scaled(self, factor: float) -> "DiurnalArrivals":
        return replace(self, mean_rps=self.mean_rps * factor)

    def times(self, start_seq: int = 0) -> Iterator[float]:
        seed = self.seed
        log = math.log
        sin = math.sin
        base_rate_per_us = self.mean_rps / 1e6
        amplitude = self.amplitude
        omega = 2.0 * math.pi / (self.period_s * 1e6)
        t = 0.0
        index = 0
        for u in _unit_uniforms(seed):
            rate = base_rate_per_us * (1.0 + amplitude * sin(omega * t))
            t += -log(u) / rate
            if index >= start_seq:
                yield t
            index += 1


#: The arrival shapes selectable by name (the ``--arrival`` CLI flag).
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "bursty", "diurnal")


def build_arrivals(kind: str, rate_rps: float, seed: int = 0) -> ArrivalProcess:
    """Build a named arrival shape with mean rate *rate_rps*.

    ``poisson`` is the constant-rate baseline; ``bursty`` alternates 5x
    bursts with quiet gaps at the same long-run mean; ``diurnal`` swings
    +-60% around the mean over a 60-second period.
    """
    if kind == "poisson":
        return PoissonArrivals(rate_rps=rate_rps, seed=seed)
    if kind == "bursty":
        return BurstyArrivals.with_mean(rate_rps, seed=seed)
    if kind == "diurnal":
        return DiurnalArrivals(mean_rps=rate_rps, seed=seed)
    raise ValueError(f"unknown arrival kind {kind!r}; available: {ARRIVAL_KINDS}")
