"""Base class for synthetic DBMS storage clients.

A client owns a synthetic database, one or more first-tier buffer pools and a
workload model.  Running the client translates the workload's logical page
operations into the hinted I/O request stream the storage server sees — the
same role the instrumented DB2/MySQL servers play in the paper.
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Iterator

from repro.core.hints import HintSet
from repro.simulation.request import IORequest, RequestKind
from repro.trace.records import Trace
from repro.workloads.access import LogicalOp, PageAccess, ScanAccess
from repro.workloads.dbmodel import SyntheticDatabase
from repro.workloads.firsttier import FirstTierBufferPool, PoolIO

__all__ = ["DBMSClient"]


class DBMSClient(abc.ABC):
    """Translates logical workload operations into hinted storage I/O requests.

    Subclasses decide how the buffer is organised into pools (DB2 uses one
    pool per ``pool_id``; MySQL uses a single pool) and how a
    :class:`~repro.workloads.firsttier.PoolIO` maps to a hint set.
    """

    def __init__(
        self,
        client_id: str,
        database: SyntheticDatabase,
        buffer_pages: int,
        seed: int = 0,
        cleaner_interval: int = 200,
        checkpoint_interval: int = 4_000,
    ):
        if buffer_pages < 1:
            raise ValueError("buffer_pages must be >= 1")
        self.client_id = client_id
        self.database = database
        self.buffer_pages = buffer_pages
        self._rng = random.Random(seed)
        self._cleaner_interval = cleaner_interval
        self._checkpoint_interval = checkpoint_interval
        self._pools = self._build_pools()

    # ----------------------------------------------------------- pool set-up
    @abc.abstractmethod
    def _build_pools(self) -> dict[int, FirstTierBufferPool]:
        """Create the first-tier buffer pool(s), keyed by pool id."""

    def _make_pool(self, capacity: int) -> FirstTierBufferPool:
        return FirstTierBufferPool(
            capacity=max(8, capacity),
            rng=self._rng,
            cleaner_interval=self._cleaner_interval,
            checkpoint_interval=self._checkpoint_interval,
        )

    def _pool_for(self, pool_id: int) -> FirstTierBufferPool:
        if pool_id in self._pools:
            return self._pools[pool_id]
        # Objects whose pool id has no dedicated pool share pool 0.
        return self._pools[min(self._pools)]

    # --------------------------------------------------------------- mapping
    @abc.abstractmethod
    def hint_set_for(self, io: PoolIO) -> HintSet:
        """Build the client's hint set for one emitted I/O."""

    def _to_request(self, io: PoolIO) -> IORequest:
        kind = RequestKind.READ if io.io_class.is_read else RequestKind.WRITE
        return IORequest(
            page=io.page,
            kind=kind,
            hints=self.hint_set_for(io),
            client_id=self.client_id,
        )

    # --------------------------------------------------------------- running
    def process(self, op: LogicalOp) -> list[IORequest]:
        """Run one logical operation through the buffer pool(s)."""
        if isinstance(op, PageAccess):
            pool = self._pool_for(op.obj.pool_id)
            ios = pool.access(
                op.obj, op.page_index, write=op.write, txn=op.txn, is_new_page=op.is_new_page
            )
        elif isinstance(op, ScanAccess):
            pool = self._pool_for(op.obj.pool_id)
            ios = pool.scan(op.obj, op.start_index, op.length, txn=op.txn)
        else:
            raise TypeError(f"unsupported logical operation: {op!r}")
        return [self._to_request(io) for io in ios]

    def iter_requests(
        self, operations: Iterable[LogicalOp], target_requests: int | None = None
    ) -> Iterator[IORequest]:
        """Yield emitted I/O requests incrementally.

        Runs operations until exhausted or *target_requests* I/Os were
        yielded; the emitted prefix is identical to :meth:`run` with the same
        arguments, but nothing is accumulated, so the stream can feed the
        binary trace writer (or any other consumer) with bounded memory.
        """
        emitted = 0
        for op in operations:
            for request in self.process(op):
                yield request
                emitted += 1
                if target_requests is not None and emitted >= target_requests:
                    return

    def run(self, operations: Iterable[LogicalOp], target_requests: int | None = None) -> list[IORequest]:
        """Run operations until exhausted or *target_requests* I/Os were emitted."""
        return list(self.iter_requests(operations, target_requests))

    def collect_trace(
        self,
        operations: Iterable[LogicalOp],
        target_requests: int,
        name: str,
        metadata: dict | None = None,
    ) -> Trace:
        """Run the workload and package the emitted requests as a :class:`Trace`."""
        requests = self.run(operations, target_requests=target_requests)
        info = {
            "client_id": self.client_id,
            "database_pages": self.database.total_pages,
            "buffer_pages": self.buffer_pages,
            "first_tier_hit_ratio": self.first_tier_hit_ratio(),
        }
        info.update(metadata or {})
        return Trace(name=name, requests_list=requests, metadata=info)

    # ------------------------------------------------------------ inspection
    def first_tier_hit_ratio(self) -> float:
        """Aggregate logical hit ratio of the client's buffer pool(s)."""
        hits = sum(pool.logical_hits for pool in self._pools.values())
        misses = sum(pool.logical_misses for pool in self._pools.values())
        total = hits + misses
        return hits / total if total else 0.0

    def pools(self) -> dict[int, FirstTierBufferPool]:
        return dict(self._pools)
