"""DB2-like storage client: emits the five DB2 hint types of Figure 2.

Every I/O request carries a hint set ``(pool id, object id, object type id,
request type, buffer priority)``.  The client organises its buffer into one
first-tier pool per ``pool_id`` used by the database layout (two pools for
the TPC-C layout, five for TPC-H, matching the domain cardinalities the
paper reports), splitting the configured buffer size across pools in
proportion to the pages they serve.
"""

from __future__ import annotations

from repro.core.hints import HintSchema, HintSet
from repro.trace.schema import RequestType, db2_schema
from repro.workloads.client import DBMSClient
from repro.workloads.dbmodel import SyntheticDatabase
from repro.workloads.firsttier import FirstTierBufferPool, IOClass, PoolIO

__all__ = ["DB2Client", "DB2_REQUEST_TYPE_BY_IO_CLASS"]


#: How buffer-pool I/O classes map onto the DB2 ``request_type`` hint values.
DB2_REQUEST_TYPE_BY_IO_CLASS = {
    IOClass.REGULAR_READ: RequestType.READ,
    IOClass.PREFETCH_READ: RequestType.PREFETCH_READ,
    IOClass.RECOVERY_WRITE: RequestType.RECOVERY_WRITE,
    IOClass.REPLACEMENT_WRITE: RequestType.REPLACEMENT_WRITE,
    IOClass.SYNCHRONOUS_WRITE: RequestType.SYNCHRONOUS_WRITE,
}


class DB2Client(DBMSClient):
    """A synthetic stand-in for the paper's instrumented DB2 storage client."""

    def __init__(
        self,
        database: SyntheticDatabase,
        buffer_pages: int,
        client_id: str = "db2",
        seed: int = 0,
        cleaner_interval: int = 200,
        checkpoint_interval: int = 4_000,
    ):
        self._schema: HintSchema | None = None
        super().__init__(
            client_id=client_id,
            database=database,
            buffer_pages=buffer_pages,
            seed=seed,
            cleaner_interval=cleaner_interval,
            checkpoint_interval=checkpoint_interval,
        )
        self._schema = db2_schema(
            client_id=client_id,
            num_pools=max(database.pool_ids()) + 1,
            num_objects=database.object_count(),
            num_object_types=6,
            num_priorities=4,
        )

    @property
    def schema(self) -> HintSchema:
        assert self._schema is not None
        return self._schema

    # ----------------------------------------------------------- pool set-up
    def _build_pools(self) -> dict[int, FirstTierBufferPool]:
        pool_ids = sorted(self.database.pool_ids())
        pages_per_pool = {
            pool_id: sum(obj.page_count for obj in self.database.objects_in_pool(pool_id))
            for pool_id in pool_ids
        }
        total_pages = sum(pages_per_pool.values()) or 1
        pools: dict[int, FirstTierBufferPool] = {}
        for pool_id in pool_ids:
            share = pages_per_pool[pool_id] / total_pages
            pools[pool_id] = self._make_pool(int(self.buffer_pages * share))
        return pools

    # --------------------------------------------------------------- mapping
    def hint_set_for(self, io: PoolIO) -> HintSet:
        obj = io.obj
        return self.schema.make_hint_set(
            {
                "pool_id": obj.pool_id,
                "object_id": obj.object_id,
                "object_type_id": obj.object_type_id,
                "request_type": DB2_REQUEST_TYPE_BY_IO_CLASS[io.io_class],
                "buffer_priority": obj.buffer_priority,
            }
        )
