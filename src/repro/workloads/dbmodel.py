"""Synthetic database model: objects (tables/indexes) laid out over pages.

The paper's storage clients are database systems; their hint values (pool id,
object id, object type, file id) describe the database object each page
belongs to.  This module models a database as a collection of named objects,
each owning a set of pages (as extents), optionally growing over time (the
TPC-C tables grow during a run, as the paper notes under Figure 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["ObjectType", "DatabaseObject", "SyntheticDatabase"]


class ObjectType:
    """Object type identifiers used for the DB2 ``object_type_id`` hint."""

    TABLE = 0
    INDEX = 1
    LOB = 2
    TEMP = 3
    CATALOG = 4
    LOG = 5

    NAMES = {
        TABLE: "table",
        INDEX: "index",
        LOB: "lob",
        TEMP: "temp",
        CATALOG: "catalog",
        LOG: "log",
    }


@dataclass
class DatabaseObject:
    """One database object (a table, an index, ...) and the pages it owns."""

    name: str
    object_id: int
    object_type_id: int
    pool_id: int
    file_id: int
    buffer_priority: int = 1
    #: Page extents as (start_page, count) pairs, in allocation order.
    extents: list[tuple[int, int]] = field(default_factory=list)

    @property
    def page_count(self) -> int:
        return sum(count for _, count in self.extents)

    @property
    def object_type_name(self) -> str:
        return ObjectType.NAMES.get(self.object_type_id, str(self.object_type_id))

    def page(self, index: int) -> int:
        """Absolute page id of the object's *index*-th page (0-based)."""
        if index < 0:
            raise IndexError(f"negative page index {index}")
        remaining = index
        for start, count in self.extents:
            if remaining < count:
                return start + remaining
            remaining -= count
        raise IndexError(f"{self.name}: page index {index} out of range ({self.page_count} pages)")

    def pages(self) -> list[int]:
        """All absolute page ids of the object, in logical order."""
        result: list[int] = []
        for start, count in self.extents:
            result.extend(range(start, start + count))
        return result

    def random_page_index(self, rng: random.Random) -> int:
        """Uniformly random logical page index."""
        if self.page_count == 0:
            raise ValueError(f"{self.name} has no pages")
        return rng.randrange(self.page_count)

    def last_page_index(self) -> int:
        if self.page_count == 0:
            raise ValueError(f"{self.name} has no pages")
        return self.page_count - 1


class SyntheticDatabase:
    """A collection of database objects sharing one flat page address space."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._objects: dict[str, DatabaseObject] = {}
        self._next_page = 0
        self._next_object_id = 0
        self._next_file_id = 0

    # ------------------------------------------------------------- creation
    def add_object(
        self,
        name: str,
        pages: int,
        object_type_id: int = ObjectType.TABLE,
        pool_id: int = 0,
        file_id: int | None = None,
        buffer_priority: int = 1,
    ) -> DatabaseObject:
        """Create an object with an initial allocation of *pages* pages."""
        if name in self._objects:
            raise ValueError(f"object {name!r} already exists")
        if pages < 0:
            raise ValueError("pages must be >= 0")
        obj = DatabaseObject(
            name=name,
            object_id=self._next_object_id,
            object_type_id=object_type_id,
            pool_id=pool_id,
            file_id=self._next_file_id if file_id is None else file_id,
            buffer_priority=buffer_priority,
        )
        self._next_object_id += 1
        if file_id is None:
            self._next_file_id += 1
        if pages:
            obj.extents.append((self._next_page, pages))
            self._next_page += pages
        self._objects[name] = obj
        return obj

    def grow(self, obj: DatabaseObject, pages: int) -> None:
        """Append *pages* freshly allocated pages to *obj* (TPC-C growth)."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if obj.name not in self._objects:
            raise KeyError(f"object {obj.name!r} does not belong to this database")
        obj.extents.append((self._next_page, pages))
        self._next_page += pages

    # ------------------------------------------------------------ inspection
    def __getitem__(self, name: str) -> DatabaseObject:
        return self._objects[name]

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def objects(self) -> list[DatabaseObject]:
        return list(self._objects.values())

    def object_count(self) -> int:
        return len(self._objects)

    @property
    def total_pages(self) -> int:
        """Total number of allocated pages (the paper's "DB Size (pages)")."""
        return self._next_page

    def pool_ids(self) -> set[int]:
        return {obj.pool_id for obj in self._objects.values()}

    def objects_in_pool(self, pool_id: int) -> list[DatabaseObject]:
        return [obj for obj in self._objects.values() if obj.pool_id == pool_id]

    def describe(self) -> list[dict]:
        """Tabular description of the layout (useful in examples and docs)."""
        return [
            {
                "object": obj.name,
                "object_id": obj.object_id,
                "type": obj.object_type_name,
                "pool_id": obj.pool_id,
                "file_id": obj.file_id,
                "pages": obj.page_count,
            }
            for obj in self._objects.values()
        ]
