"""First-tier (client) buffer pool simulation.

The paper's traces come from instrumented DBMSs; the storage server only
sees the I/O that *escapes* the first-tier buffer cache, annotated with
hints.  This module reproduces that filtering effect: a buffer pool absorbs
logical page accesses and emits second-tier I/O events:

* **regular reads** when a logical access misses in the pool;
* **prefetch reads** when a sequential scan faults pages in;
* **replacement writes** when the asynchronous page cleaner flushes dirty
  pages near the cold end of the pool (they are about to be evicted);
* **synchronous writes** when a dirty page must be flushed on the eviction
  path itself because the cleaner did not get to it in time;
* **recovery writes** when the periodic checkpoint persists hot dirty pages
  that remain cached (and therefore are unlikely to be read back soon).

These are exactly the request classes behind the DB2/MySQL ``request_type``
hints of Figure 2, and their correlation with future reads is what TQ's
hard-coded heuristic and CLIC's learned priorities both feed on.
"""

from __future__ import annotations

import enum
import random
from collections import OrderedDict
from dataclasses import dataclass

from repro.workloads.dbmodel import DatabaseObject

__all__ = ["IOClass", "PoolIO", "FirstTierBufferPool"]


class IOClass(enum.Enum):
    """Second-tier I/O classes emitted by the first-tier buffer pool."""

    REGULAR_READ = "regular_read"
    PREFETCH_READ = "prefetch_read"
    RECOVERY_WRITE = "recovery_write"
    REPLACEMENT_WRITE = "replacement_write"
    SYNCHRONOUS_WRITE = "synchronous_write"

    @property
    def is_read(self) -> bool:
        return self in (IOClass.REGULAR_READ, IOClass.PREFETCH_READ)

    @property
    def is_write(self) -> bool:
        return not self.is_read


@dataclass(frozen=True, slots=True)
class PoolIO:
    """One I/O request issued by the buffer pool to the storage server."""

    page: int
    io_class: IOClass
    obj: DatabaseObject
    txn: int = 0
    #: Number of concurrent fixes of the page at emission time (MySQL hint).
    fix_count: int = 0


class _Frame:
    __slots__ = ("obj", "dirty", "scan_only")

    def __init__(self, obj: DatabaseObject, dirty: bool, scan_only: bool):
        self.obj = obj
        self.dirty = dirty
        self.scan_only = scan_only


class FirstTierBufferPool:
    """An LRU buffer pool with an asynchronous page cleaner and checkpoints.

    Parameters
    ----------
    capacity:
        Pool size in pages (the paper's "DBMS Buffer Size").
    cleaner_interval:
        Run the asynchronous page cleaner every this many logical accesses.
    cleaner_batch:
        Maximum number of cold dirty pages the cleaner flushes per run.
    checkpoint_interval:
        Emit recovery writes every this many logical accesses (0 disables).
    checkpoint_batch:
        Maximum number of dirty pages persisted per checkpoint.
    scan_resistant:
        Insert sequentially scanned pages of *large* objects at the cold end
        of the pool so their scans do not flush the working set (what real
        DBMS pools do).  Objects smaller than ``scan_threshold_fraction`` of
        the pool are cached normally — a DBMS happily keeps a table resident
        when it fits.
    scan_threshold_fraction:
        An object is treated as "large" (scan-resistant handling) when its
        page count exceeds this fraction of the pool capacity.  The default
        (0.95) means a table is only bypassed when it genuinely cannot be
        kept resident, which is how DBMS sequential-detection heuristics
        behave.
    """

    def __init__(
        self,
        capacity: int,
        rng: random.Random | None = None,
        cleaner_interval: int = 200,
        cleaner_batch: int = 32,
        checkpoint_interval: int = 4_000,
        checkpoint_batch: int = 64,
        scan_resistant: bool = True,
        scan_threshold_fraction: float = 0.95,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if cleaner_interval < 1:
            raise ValueError("cleaner_interval must be >= 1")
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        self._capacity = capacity
        # The pool's replacement behaviour is fully deterministic; the rng is
        # accepted for client adapters that share one stream.  A missing rng
        # must not fall back to OS entropy — default to the fixed seed 0.
        self._rng = rng if rng is not None else random.Random(0)
        self._cleaner_interval = cleaner_interval
        self._cleaner_batch = cleaner_batch
        self._checkpoint_interval = checkpoint_interval
        self._checkpoint_batch = checkpoint_batch
        self._scan_resistant = scan_resistant
        if not 0.0 < scan_threshold_fraction <= 1.0:
            raise ValueError("scan_threshold_fraction must be in (0, 1]")
        self._scan_threshold = scan_threshold_fraction
        # LRU order: cold (least recently used) first.
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self._accesses = 0
        self.logical_hits = 0
        self.logical_misses = 0

    # ------------------------------------------------------------ properties
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page: int) -> bool:
        return page in self._frames

    @property
    def hit_ratio(self) -> float:
        total = self.logical_hits + self.logical_misses
        return self.logical_hits / total if total else 0.0

    def dirty_pages(self) -> int:
        return sum(1 for frame in self._frames.values() if frame.dirty)

    # ------------------------------------------------------- background work
    def _maybe_background_io(self, ios: list[PoolIO], txn: int) -> None:
        """Run the page cleaner and checkpointer on their schedules."""
        if self._accesses % self._cleaner_interval == 0:
            self._run_cleaner(ios, txn)
        if self._checkpoint_interval and self._accesses % self._checkpoint_interval == 0:
            self._run_checkpoint(ios, txn)

    def _run_cleaner(self, ios: list[PoolIO], txn: int) -> None:
        """Asynchronously flush cold dirty pages (replacement writes)."""
        flushed = 0
        for page, frame in self._frames.items():          # cold end first
            if flushed >= self._cleaner_batch:
                break
            if frame.dirty:
                frame.dirty = False
                ios.append(
                    PoolIO(page=page, io_class=IOClass.REPLACEMENT_WRITE, obj=frame.obj, txn=txn)
                )
                flushed += 1

    def _run_checkpoint(self, ios: list[PoolIO], txn: int) -> None:
        """Persist hot dirty pages for recoverability (recovery writes)."""
        flushed = 0
        # Walk from the hot end: checkpoints target pages that stay cached.
        for page in reversed(list(self._frames.keys())):
            if flushed >= self._checkpoint_batch:
                break
            frame = self._frames[page]
            if frame.dirty:
                frame.dirty = False
                ios.append(
                    PoolIO(page=page, io_class=IOClass.RECOVERY_WRITE, obj=frame.obj, txn=txn)
                )
                flushed += 1

    # --------------------------------------------------------------- access
    def _evict_one(self, ios: list[PoolIO], txn: int) -> None:
        """Evict the coldest page; flush it synchronously if still dirty."""
        page, frame = self._frames.popitem(last=False)
        if frame.dirty:
            ios.append(
                PoolIO(page=page, io_class=IOClass.SYNCHRONOUS_WRITE, obj=frame.obj, txn=txn)
            )

    def _insert(self, page: int, obj: DatabaseObject, dirty: bool, scan_only: bool) -> None:
        frame = _Frame(obj=obj, dirty=dirty, scan_only=scan_only)
        self._frames[page] = frame
        if scan_only and self._scan_resistant and len(self._frames) > 1:
            # Place scanned pages at the cold end so they are evicted first.
            self._frames.move_to_end(page, last=False)

    def access(
        self,
        obj: DatabaseObject,
        page_index: int,
        write: bool = False,
        txn: int = 0,
        is_new_page: bool = False,
    ) -> list[PoolIO]:
        """Perform one logical page access; return the second-tier I/O it caused."""
        page = obj.page(page_index)
        ios: list[PoolIO] = []
        self._accesses += 1
        self._maybe_background_io(ios, txn)

        frame = self._frames.get(page)
        if frame is not None:
            self.logical_hits += 1
            frame.dirty = frame.dirty or write
            frame.scan_only = False
            self._frames.move_to_end(page)
            return ios

        self.logical_misses += 1
        if len(self._frames) >= self._capacity:
            self._evict_one(ios, txn)
        if not is_new_page:
            # The page must be fetched from the storage server before use;
            # freshly appended pages are created in the pool without a read.
            ios.append(PoolIO(page=page, io_class=IOClass.REGULAR_READ, obj=obj, txn=txn))
        self._insert(page, obj, dirty=write, scan_only=False)
        return ios

    def scan(
        self,
        obj: DatabaseObject,
        start_index: int,
        length: int,
        txn: int = 0,
    ) -> list[PoolIO]:
        """Sequentially read *length* pages of *obj*, using prefetch reads."""
        if length < 0:
            raise ValueError("length must be >= 0")
        ios: list[PoolIO] = []
        end = min(start_index + length, obj.page_count)
        # Only treat the scan as cache-polluting when the object is too large
        # to keep resident; small tables are cached like any other access.
        large_object = (
            self._scan_resistant and obj.page_count > self._scan_threshold * self._capacity
        )
        for index in range(start_index, end):
            page = obj.page(index)
            self._accesses += 1
            self._maybe_background_io(ios, txn)
            frame = self._frames.get(page)
            if frame is not None:
                self.logical_hits += 1
                if large_object and frame.scan_only:
                    # Scanned-only pages stay at the cold end even when re-scanned.
                    self._frames.move_to_end(page, last=False)
                else:
                    self._frames.move_to_end(page)
                continue
            self.logical_misses += 1
            if len(self._frames) >= self._capacity:
                self._evict_one(ios, txn)
            ios.append(PoolIO(page=page, io_class=IOClass.PREFETCH_READ, obj=obj, txn=txn))
            self._insert(page, obj, dirty=False, scan_only=large_object)
        return ios

    def flush_all(self, txn: int = 0) -> list[PoolIO]:
        """Flush every dirty page (used at end-of-trace / shutdown checkpoints)."""
        ios: list[PoolIO] = []
        for page, frame in self._frames.items():
            if frame.dirty:
                frame.dirty = False
                ios.append(
                    PoolIO(page=page, io_class=IOClass.RECOVERY_WRITE, obj=frame.obj, txn=txn)
                )
        return ios
