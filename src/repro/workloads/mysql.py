"""MySQL-like storage client: emits the four MySQL hint types of Figure 2.

Every I/O request carries a hint set ``(thread id, request type, file id,
fix count)``:

* the thread id is the workload thread (query stream) that issued the
  request, assigned round-robin per transaction/query;
* the request type collapses the five DB2 classes into MySQL's three (read,
  replacement write, recovery write);
* the file id groups each table with its indexes, since the paper's MySQL
  configuration stores a table and its indexes in one file;
* the fix count says whether the page is currently pinned in the buffer pool
  (recovery writes target pinned-hot pages; evicted pages are unpinned).

MySQL manages a single InnoDB buffer pool, so this client uses one first-tier
pool regardless of the layout's pool ids.
"""

from __future__ import annotations

from repro.core.hints import HintSchema, HintSet
from repro.trace.schema import RequestType, mysql_schema
from repro.workloads.client import DBMSClient
from repro.workloads.dbmodel import DatabaseObject, SyntheticDatabase
from repro.workloads.firsttier import FirstTierBufferPool, IOClass, PoolIO

__all__ = ["MySQLClient", "MYSQL_REQUEST_TYPE_BY_IO_CLASS"]


#: MySQL's request-type hint has only three values (Figure 2): prefetch reads
#: report as plain reads and synchronous writes as replacement writes.
MYSQL_REQUEST_TYPE_BY_IO_CLASS = {
    IOClass.REGULAR_READ: RequestType.READ,
    IOClass.PREFETCH_READ: RequestType.READ,
    IOClass.RECOVERY_WRITE: RequestType.RECOVERY_WRITE,
    IOClass.REPLACEMENT_WRITE: RequestType.REPLACEMENT_WRITE,
    IOClass.SYNCHRONOUS_WRITE: RequestType.REPLACEMENT_WRITE,
}


class MySQLClient(DBMSClient):
    """A synthetic stand-in for the paper's instrumented MySQL storage client."""

    def __init__(
        self,
        database: SyntheticDatabase,
        buffer_pages: int,
        client_id: str = "mysql",
        num_threads: int = 5,
        seed: int = 0,
        cleaner_interval: int = 200,
        checkpoint_interval: int = 4_000,
    ):
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self._num_threads = num_threads
        super().__init__(
            client_id=client_id,
            database=database,
            buffer_pages=buffer_pages,
            seed=seed,
            cleaner_interval=cleaner_interval,
            checkpoint_interval=checkpoint_interval,
        )
        self._file_ids = self._assign_file_ids(database)
        self._schema = mysql_schema(
            client_id=client_id,
            num_threads=num_threads,
            num_files=max(self._file_ids.values()) + 1,
            max_fix_count=2,
        )

    @property
    def schema(self) -> HintSchema:
        return self._schema

    # ----------------------------------------------------------- pool set-up
    def _build_pools(self) -> dict[int, FirstTierBufferPool]:
        # MySQL/InnoDB uses a single buffer pool shared by all objects.
        return {0: self._make_pool(self.buffer_pages)}

    def _pool_for(self, pool_id: int) -> FirstTierBufferPool:
        return self._pools[0]

    # --------------------------------------------------------------- mapping
    @staticmethod
    def _base_table_name(obj: DatabaseObject) -> str:
        """Strip index suffixes so a table and its indexes share one file."""
        name = obj.name
        for suffix in ("_PK", "_IDX"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
        # Secondary indexes named <TABLE>_<something>_IDX already handled; a
        # plain table name maps to itself.
        return name

    def _assign_file_ids(self, database: SyntheticDatabase) -> dict[int, int]:
        files: dict[str, int] = {}
        mapping: dict[int, int] = {}
        for obj in database.objects():
            base = self._base_table_name(obj)
            if base not in files:
                files[base] = len(files)
            mapping[obj.object_id] = files[base]
        return mapping

    def hint_set_for(self, io: PoolIO) -> HintSet:
        fix_count = 1 if io.io_class is IOClass.RECOVERY_WRITE else 0
        return self._schema.make_hint_set(
            {
                "thread_id": io.txn % self._num_threads,
                "request_type": MYSQL_REQUEST_TYPE_BY_IO_CLASS[io.io_class],
                "file_id": self._file_ids[io.obj.object_id],
                "fix_count": fix_count,
            }
        )
