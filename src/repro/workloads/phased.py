"""Non-stationary phased workloads: deterministic schedules of client change.

CLIC re-estimates hint-set priorities every statistics window (paper
Sections 3-5) precisely so the storage-server cache *adapts* when the client
mix changes — yet every standard trace (:mod:`repro.workloads.standard`) is
stationary: one client, one workload, end to end.  This module composes the
standard trace generators into deterministic multi-phase schedules that
exercise the adaptation machinery:

* **workload switches** — the request mix changes wholesale at a phase
  boundary (e.g. a TPC-C client hands the server over to a TPC-H client);
* **tenant arrival / departure** — a client joins the server mid-run and
  leaves again, shifting how much locality each tenant's share carries;
* **client churn** — a client is replaced by a *re-seeded* instance of the
  same configuration (a restarted database server: same workload shape,
  cold first tier, new hint-set identity).

A schedule is a :class:`PhasePlan` — an immutable, picklable, hashable value
object — and :class:`PhasedTraceStream` turns it into a request stream with
the same single-use streaming contract as
:class:`~repro.workloads.standard.StandardTraceStream`: requests flow one at
a time into the binary trace writer (:mod:`repro.trace.binio`), and the
on-disk trace cache (:mod:`repro.trace.cache`) keys cached phased traces by
a hash of the full plan.

Determinism guarantees:

* clients draw from their generators round-robin within each phase, so the
  interleaving is a pure function of the plan;
* a client that spans several phases *continues* its stream (its first-tier
  buffer stays warm across boundaries — only the mix around it changes);
* each distinct client is remapped into its own disjoint page-id range (in
  first-appearance order over the plan), so tenants never alias pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.simulation.request import IORequest
from repro.trace.records import Trace
from repro.workloads.standard import STANDARD_TRACES, StandardTraceStream

__all__ = [
    "PhaseClient",
    "Phase",
    "PhasePlan",
    "PhasedTraceStream",
    "phased_trace",
    "PHASE_PLANS",
    "build_phase_plan",
    "default_page_stride",
]

#: Multiple of the largest referenced database size used to separate the
#: page-id ranges of distinct clients.  TPC-C databases grow during the run,
#: so the stride leaves generous headroom; the stream still *checks* every
#: page against the stride and fails loudly rather than aliasing silently.
_STRIDE_FACTOR = 16


@dataclass(frozen=True)
class PhaseClient:
    """One tenant inside a phase: a standard-trace generator identity.

    Two phase clients with the same ``(trace, seed, client id)`` are the
    *same* tenant: the plan's stream keeps one generator for them across all
    the phases they appear in.  Changing the seed (churn) or the client id
    makes a distinct tenant with its own first tier, hint-set identity and
    page range.
    """

    trace: str
    seed: int = 17
    client_id: str | None = None

    def key(self) -> tuple[str, int, str]:
        """The identity under which the plan tracks this tenant."""
        return (self.trace, self.seed, self.resolved_client_id())

    def resolved_client_id(self) -> str:
        """The storage-client id this tenant presents to the server."""
        return self.client_id or f"{self.trace}@s{self.seed}"


@dataclass(frozen=True)
class Phase:
    """A contiguous slice of the schedule with a fixed client mix."""

    name: str
    requests: int
    clients: tuple[PhaseClient, ...]

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"phase {self.name!r}: requests must be >= 1")
        if not self.clients:
            raise ValueError(f"phase {self.name!r}: needs at least one client")


@dataclass(frozen=True)
class PhasePlan:
    """A deterministic schedule of phases (the phased-trace cache key).

    The plan is a frozen value object: equal plans hash equally, pickle
    compactly, and ``repr`` covers every generation knob — which is exactly
    what the trace cache fingerprints
    (:meth:`repro.trace.cache.TraceCache.path_for`).
    """

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a phase plan needs at least one phase")
        unknown = {
            client.trace
            for phase in self.phases
            for client in phase.clients
            if client.trace not in STANDARD_TRACES
        }
        if unknown:
            raise KeyError(
                f"phase plan {self.name!r} references unknown standard traces "
                f"{sorted(unknown)}; available: {sorted(STANDARD_TRACES)}"
            )

    @property
    def total_requests(self) -> int:
        return sum(phase.requests for phase in self.phases)

    def phase_offsets(self) -> list[int]:
        """Absolute request offset at which each phase starts."""
        offsets, position = [], 0
        for phase in self.phases:
            offsets.append(position)
            position += phase.requests
        return offsets

    def shift_offsets(self) -> list[int]:
        """The phase *boundaries*: offsets where the client mix changes."""
        return self.phase_offsets()[1:]

    def phase_at(self, seq: int) -> Phase:
        """The phase covering absolute request offset *seq*."""
        if seq < 0:
            raise ValueError(f"seq must be >= 0, got {seq}")
        position = 0
        for phase in self.phases:
            position += phase.requests
            if seq < position:
                return phase
        return self.phases[-1]

    def distinct_clients(self) -> list[PhaseClient]:
        """All tenants, deduplicated by identity, in first-appearance order."""
        seen: dict[tuple, PhaseClient] = {}
        for phase in self.phases:
            for client in phase.clients:
                seen.setdefault(client.key(), client)
        return list(seen.values())


def default_page_stride(plan: PhasePlan) -> int:
    """Distance between the page ranges assigned to the plan's tenants."""
    largest = max(
        STANDARD_TRACES[client.trace].database_pages
        for client in plan.distinct_clients()
    )
    return largest * _STRIDE_FACTOR


class PhasedTraceStream:
    """Incremental generator of one phased trace (single use).

    Mirrors :class:`~repro.workloads.standard.StandardTraceStream`: iterate
    once to stream the plan's requests in order (bounded memory), then read
    :meth:`metadata` for the trace metadata — per-tenant fields such as the
    first-tier hit ratio are only final once the stream is exhausted.

    Each tenant's pages are shifted into a disjoint range (first-appearance
    order x ``page_stride``); a generated page at or above the stride raises
    rather than silently aliasing another tenant's range.
    """

    def __init__(self, plan: PhasePlan, page_stride: int | None = None):
        self.plan = plan
        self.name = plan.name
        self._stride = (
            default_page_stride(plan) if page_stride is None else int(page_stride)
        )
        if self._stride < 1:
            raise ValueError(f"page_stride must be >= 1, got {self._stride}")
        self._started = False
        # Tenant identity -> (underlying stream, its request iterator, page
        # offset).  Offsets follow first-appearance order over the *plan*
        # (not the replay), so they are a pure function of the plan.
        self._streams: dict[tuple, StandardTraceStream] = {}
        self._iterators: dict[tuple, Iterator[IORequest]] = {}
        self._offsets: dict[tuple, int] = {
            client.key(): index * self._stride
            for index, client in enumerate(plan.distinct_clients())
        }

    @property
    def page_stride(self) -> int:
        return self._stride

    def _iterator(self, client: PhaseClient) -> Iterator[IORequest]:
        key = client.key()
        iterator = self._iterators.get(key)
        if iterator is None:
            # The per-tenant cap is the whole plan's length: a tenant can
            # never be asked for more than that, so the underlying stream
            # cannot run dry mid-phase.
            stream = StandardTraceStream(
                client.trace,
                seed=client.seed,
                target_requests=self.plan.total_requests,
                client_id=client.resolved_client_id(),
            )
            self._streams[key] = stream
            iterator = iter(stream)
            self._iterators[key] = iterator
        return iterator

    def __iter__(self) -> Iterator[IORequest]:
        if self._started:
            raise RuntimeError(
                "PhasedTraceStream is single-use; build a new one to regenerate"
            )
        self._started = True
        stride = self._stride
        for phase in self.plan.phases:
            iterators = [self._iterator(client) for client in phase.clients]
            offsets = [self._offsets[client.key()] for client in phase.clients]
            tenants = len(iterators)
            for position in range(phase.requests):
                slot = position % tenants
                request = next(iterators[slot])
                if request.page >= stride:
                    raise ValueError(
                        f"phase {phase.name!r}: generated page {request.page} "
                        f"overflows the per-tenant page stride {stride}; pass "
                        "a larger page_stride to PhasedTraceStream"
                    )
                offset = offsets[slot]
                if offset:
                    request = IORequest(
                        page=request.page + offset,
                        kind=request.kind,
                        hints=request.hints,
                        client_id=request.client_id,
                    )
                yield request

    def metadata(self) -> dict:
        """The metadata dict of the equivalent materialized trace.

        JSON-serializable (the binary writer stores it verbatim); tenant
        entries carry the underlying standard-trace metadata — including any
        warm-up truncation record — plus the tenant's page offset.
        """
        tenants = []
        for client in self.plan.distinct_clients():
            stream = self._streams.get(client.key())
            entry = {
                "trace": client.trace,
                "seed": client.seed,
                "client_id": client.resolved_client_id(),
                "page_offset": self._offsets[client.key()],
            }
            if stream is not None:
                entry.update(stream.metadata())
            tenants.append(entry)
        return {
            "phase_plan": self.plan.name,
            "phases": [
                {
                    "name": phase.name,
                    "requests": phase.requests,
                    "clients": [c.resolved_client_id() for c in phase.clients],
                }
                for phase in self.plan.phases
            ],
            "phase_offsets": self.plan.phase_offsets(),
            "page_stride": self._stride,
            "total_requests": self.plan.total_requests,
            "tenants": tenants,
        }


def phased_trace(plan: PhasePlan, page_stride: int | None = None) -> Trace:
    """Materialize a phased trace in memory (tests and small experiments)."""
    stream = PhasedTraceStream(plan, page_stride=page_stride)
    requests = list(stream)
    return Trace(name=plan.name, requests_list=requests, metadata=stream.metadata())


# --------------------------------------------------------------- named plans
def _split(total: int, parts: int) -> list[int]:
    """Split *total* requests into *parts* contiguous phases (sum preserved)."""
    if total < parts:
        raise ValueError(f"cannot split {total} requests into {parts} phases")
    base, remainder = divmod(total, parts)
    return [base + (1 if index < remainder else 0) for index in range(parts)]


def switch_plan(
    total_requests: int,
    seed: int = 17,
    first: str = "DB2_C60",
    second: str = "DB2_H80",
) -> PhasePlan:
    """Workload switch: a TPC-C tenant hands over to a TPC-H tenant."""
    sizes = _split(total_requests, 2)
    return PhasePlan(
        name="switch",
        phases=(
            Phase("tpcc", sizes[0], (PhaseClient(first, seed),)),
            Phase("tpch", sizes[1], (PhaseClient(second, seed),)),
        ),
    )


def churn_plan(
    total_requests: int, seed: int = 17, trace: str = "DB2_C60"
) -> PhasePlan:
    """Client churn: the tenant restarts as a re-seeded instance of itself."""
    sizes = _split(total_requests, 2)
    return PhasePlan(
        name="churn",
        phases=(
            Phase("original", sizes[0], (PhaseClient(trace, seed),)),
            Phase("restarted", sizes[1], (PhaseClient(trace, seed + 101),)),
        ),
    )


def tenant_plan(
    total_requests: int,
    seed: int = 17,
    base: str = "DB2_C60",
    tenant: str = "DB2_C300",
) -> PhasePlan:
    """Tenant arrival/departure: a second client joins mid-run, then leaves."""
    sizes = _split(total_requests, 3)
    resident = PhaseClient(base, seed)
    visitor = PhaseClient(tenant, seed + 1)
    return PhasePlan(
        name="tenant",
        phases=(
            Phase("solo", sizes[0], (resident,)),
            Phase("shared", sizes[1], (resident, visitor)),
            Phase("solo-again", sizes[2], (resident,)),
        ),
    )


#: Named plan builders selectable from the CLI (``--phase-plan``).
PHASE_PLANS = {
    "switch": switch_plan,
    "churn": churn_plan,
    "tenant": tenant_plan,
}


def build_phase_plan(name: str, total_requests: int, seed: int = 17) -> PhasePlan:
    """Build one of the named plans, scaled to *total_requests*."""
    if name not in PHASE_PLANS:
        raise KeyError(
            f"unknown phase plan {name!r}; available: {sorted(PHASE_PLANS)}"
        )
    return PHASE_PLANS[name](total_requests, seed=seed)
