"""The eight standard trace configurations of the paper's Figure 5, scaled down.

The paper collected traces from DB2 (TPC-C and TPC-H) and MySQL (TPC-H) with
several first-tier buffer sizes; the buffer size controls how much temporal
locality survives to the storage server, which is the key variable in the
evaluation.  We reproduce the *ratios* — first-tier buffer : database size,
and the server-cache sweep range : database size — at 1/50 scale so that the
pure-Python simulation completes in seconds rather than days.

=============  ========================  ==========================
paper trace    paper sizes (pages)       scaled sizes (pages)
=============  ========================  ==========================
DB2_C60        DB 600K, buffer 60K       DB 12 000, buffer 1 200
DB2_C300       DB 600K, buffer 300K      DB 12 000, buffer 6 000
DB2_C540       DB 600K, buffer 540K      DB 12 000, buffer 10 800
DB2_H80        DB 800K, buffer 80K       DB 16 000, buffer 1 600
DB2_H400       DB 800K, buffer 400K      DB 16 000, buffer 8 000
DB2_H720       DB 800K, buffer 720K      DB 16 000, buffer 14 400
MY_H65         DB 328K, buffer 65K       DB  6 560, buffer 1 300
MY_H98         DB 328K, buffer 98K       DB  6 560, buffer 1 960
=============  ========================  ==========================

The paper sweeps the server cache from 60K to 300K pages for the DB2 traces
and from 50K to 100K pages for the MySQL traces; scaled, that is 1 200-6 000
and 1 000-2 000 pages respectively (:func:`server_cache_sizes`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.trace.records import Trace
from repro.workloads.db2 import DB2Client
from repro.workloads.mysql import MySQLClient
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.tpch import TPCHWorkload

__all__ = [
    "StandardTraceConfig",
    "STANDARD_TRACES",
    "SCALE_FACTOR",
    "StandardTraceStream",
    "standard_trace",
    "server_cache_sizes",
    "clic_window_for",
]

#: Linear scale factor between the paper's sizes and this reproduction's.
SCALE_FACTOR = 50

#: Default number of storage-server requests generated per trace.  The paper's
#: traces are millions of requests long; the default keeps experiments fast
#: while remaining large enough for CLIC's windowed statistics to stabilise.
DEFAULT_TARGET_REQUESTS = 60_000


@dataclass(frozen=True)
class StandardTraceConfig:
    """Generation parameters of one standard trace."""

    name: str
    dbms: str                      # "db2" or "mysql"
    workload: str                  # "tpcc" or "tpch"
    database_pages: int
    buffer_pages: int
    description: str
    paper_database_pages: int
    paper_buffer_pages: int
    #: Server cache sizes (pages) swept in the paper's figure for this trace.
    cache_sweep: tuple[int, ...]
    tpch_skip_queries: tuple[int, ...] = ()
    tpch_include_refresh: bool = True

    def workload_model(self, seed: int):
        """Instantiate the workload model for this configuration."""
        if self.workload == "tpcc":
            return TPCCWorkload(total_pages=self.database_pages, seed=seed)
        return TPCHWorkload(
            total_pages=self.database_pages,
            include_refresh=self.tpch_include_refresh,
            skip_queries=self.tpch_skip_queries,
            seed=seed,
        )

    def warmup_page_target(self) -> int:
        """Database size (pages) the warm-up phase must reach before tracing.

        TPC-C grows its database throughout the run; the paper's traces are
        collected over long runs during which the database grows well past
        the first-tier buffer (Figure 5 reports up to 1.8M distinct pages
        against a 540K-page buffer).  We warm up — generating but discarding
        I/O — until the database is at least 1.7x the buffer, so that even
        the largest-buffer configurations exhibit first-tier evictions during
        the traced window.  TPC-H databases do not grow, so no warm-up.
        """
        if self.workload != "tpcc":
            return 0
        return max(self.database_pages, int(self.buffer_pages * 1.7))


#: Server cache sweeps, scaled from the paper's x-axes (Figures 6-8).
_DB2_SWEEP = (1_200, 2_400, 3_600, 4_800, 6_000)      # paper: 60K..300K
_MYSQL_SWEEP = (1_000, 1_500, 2_000)                   # paper: 50K, 75K, 100K

STANDARD_TRACES: dict[str, StandardTraceConfig] = {
    "DB2_C60": StandardTraceConfig(
        name="DB2_C60", dbms="db2", workload="tpcc",
        database_pages=12_000, buffer_pages=1_200,
        description="DB2 TPC-C, small (10% of DB) first-tier buffer: high residual locality.",
        paper_database_pages=600_000, paper_buffer_pages=60_000, cache_sweep=_DB2_SWEEP,
    ),
    "DB2_C300": StandardTraceConfig(
        name="DB2_C300", dbms="db2", workload="tpcc",
        database_pages=12_000, buffer_pages=6_000,
        description="DB2 TPC-C, 50%-of-DB first-tier buffer: little residual locality.",
        paper_database_pages=600_000, paper_buffer_pages=300_000, cache_sweep=_DB2_SWEEP,
    ),
    "DB2_C540": StandardTraceConfig(
        name="DB2_C540", dbms="db2", workload="tpcc",
        database_pages=12_000, buffer_pages=10_800,
        description="DB2 TPC-C, 90%-of-DB first-tier buffer: hardest replacement problem.",
        paper_database_pages=600_000, paper_buffer_pages=540_000, cache_sweep=_DB2_SWEEP,
    ),
    "DB2_H80": StandardTraceConfig(
        name="DB2_H80", dbms="db2", workload="tpch",
        database_pages=16_000, buffer_pages=1_600,
        description="DB2 TPC-H (22 queries + refreshes), 10%-of-DB first-tier buffer.",
        paper_database_pages=800_000, paper_buffer_pages=80_000, cache_sweep=_DB2_SWEEP,
    ),
    "DB2_H400": StandardTraceConfig(
        name="DB2_H400", dbms="db2", workload="tpch",
        database_pages=16_000, buffer_pages=8_000,
        description="DB2 TPC-H, 50%-of-DB first-tier buffer.",
        paper_database_pages=800_000, paper_buffer_pages=400_000, cache_sweep=_DB2_SWEEP,
    ),
    "DB2_H720": StandardTraceConfig(
        name="DB2_H720", dbms="db2", workload="tpch",
        database_pages=16_000, buffer_pages=14_400,
        description="DB2 TPC-H, 90%-of-DB first-tier buffer.",
        paper_database_pages=800_000, paper_buffer_pages=720_000, cache_sweep=_DB2_SWEEP,
    ),
    "MY_H65": StandardTraceConfig(
        name="MY_H65", dbms="mysql", workload="tpch",
        database_pages=6_560, buffer_pages=1_300,
        description="MySQL TPC-H (Q18 and refreshes skipped), ~20%-of-DB buffer.",
        paper_database_pages=328_000, paper_buffer_pages=65_000, cache_sweep=_MYSQL_SWEEP,
        tpch_skip_queries=(18,), tpch_include_refresh=False,
    ),
    "MY_H98": StandardTraceConfig(
        name="MY_H98", dbms="mysql", workload="tpch",
        database_pages=6_560, buffer_pages=1_960,
        description="MySQL TPC-H (Q18 and refreshes skipped), ~30%-of-DB buffer.",
        paper_database_pages=328_000, paper_buffer_pages=98_000, cache_sweep=_MYSQL_SWEEP,
        tpch_skip_queries=(18,), tpch_include_refresh=False,
    ),
}


def _operations_forever(workload):
    """Yield workload operations indefinitely (transactions or queries)."""
    while True:
        if isinstance(workload, TPCCWorkload):
            yield from workload.next_transaction()
        else:
            yield from workload.next_query()


#: Safety cap on warm-up transactions so a mis-configured growth target can
#: never loop forever.
_MAX_WARMUP_TRANSACTIONS = 100_000


def _warm_up(client, workload, config: StandardTraceConfig) -> dict:
    """Run (and discard) workload activity until the database reaches its target size.

    Returns a (possibly empty) metadata dict describing the warm-up.  If the
    safety cap cuts warm-up short of the growth target, that is a *different
    trace* than the configuration asked for — so the truncation is warned
    about and recorded in the returned metadata instead of being swallowed.
    """
    target = config.warmup_page_target()
    if target <= workload.database.total_pages:
        return {}
    transactions = 0
    while workload.database.total_pages < target and transactions < _MAX_WARMUP_TRANSACTIONS:
        for op in workload.next_transaction():
            client.process(op)
        transactions += 1
    reached = workload.database.total_pages
    if reached < target:
        warnings.warn(
            f"standard trace {config.name!r}: warm-up hit the "
            f"{_MAX_WARMUP_TRANSACTIONS}-transaction safety cap at "
            f"{reached}/{target} database pages; the traced window starts "
            "from a smaller database than configured",
            RuntimeWarning,
            stacklevel=3,
        )
        return {
            "warmup_truncated": True,
            "warmup_transactions": transactions,
            "warmup_page_target": target,
            "warmup_pages_reached": reached,
        }
    return {}


class StandardTraceStream:
    """Incremental generator of one standard trace (single use).

    Iterating the stream warms up the client and then yields the same
    request sequence :func:`standard_trace` would materialize — one request
    at a time, so generation can flow straight into the binary trace writer
    (:class:`repro.trace.binio.BinaryTraceWriter`) with bounded memory.
    :meth:`metadata` reports the same metadata dict a materialized
    :class:`~repro.trace.records.Trace` would carry; fields such as the
    first-tier hit ratio are only final once the stream is exhausted.
    """

    def __init__(
        self,
        name: str,
        seed: int = 17,
        target_requests: int = DEFAULT_TARGET_REQUESTS,
        client_id: str | None = None,
    ):
        if name not in STANDARD_TRACES:
            raise KeyError(
                f"unknown standard trace {name!r}; available: {sorted(STANDARD_TRACES)}"
            )
        self.name = name
        self.seed = seed
        self.target_requests = target_requests
        self._config = STANDARD_TRACES[name]
        self._workload = self._config.workload_model(seed)
        effective_client = client_id or f"{self._config.dbms}-{name}"
        client_cls = DB2Client if self._config.dbms == "db2" else MySQLClient
        self._client = client_cls(
            database=self._workload.database,
            buffer_pages=self._config.buffer_pages,
            client_id=effective_client,
            seed=seed + 1,
        )
        self._started = False
        self._warmup_info: dict = {}

    def __iter__(self):
        if self._started:
            raise RuntimeError(
                "StandardTraceStream is single-use; build a new one to regenerate"
            )
        self._started = True
        self._warmup_info = _warm_up(self._client, self._workload, self._config)
        yield from self._client.iter_requests(
            _operations_forever(self._workload), self.target_requests
        )

    def metadata(self) -> dict:
        """The metadata dict of the equivalent materialized trace."""
        config = self._config
        return {
            "client_id": self._client.client_id,
            "database_pages": config.database_pages,
            "buffer_pages": config.buffer_pages,
            "first_tier_hit_ratio": self._client.first_tier_hit_ratio(),
            "config": config.name,
            "dbms": config.dbms,
            "workload": config.workload,
            "seed": self.seed,
            "paper_database_pages": config.paper_database_pages,
            "paper_buffer_pages": config.paper_buffer_pages,
            # Warm-up truncation record (only present when the safety cap
            # fired; fields are final once the stream is exhausted).
            **self._warmup_info,
        }


def standard_trace(
    name: str,
    seed: int = 17,
    target_requests: int = DEFAULT_TARGET_REQUESTS,
    client_id: str | None = None,
) -> Trace:
    """Generate one of the standard traces of Figure 5 (scaled), in memory.

    Callers that can consume requests incrementally (or that want generated
    traces persisted and reused across runs) should prefer the streaming
    path: :class:`StandardTraceStream` or the on-disk trace cache
    (:mod:`repro.trace.cache`).

    Parameters
    ----------
    name:
        One of the keys of :data:`STANDARD_TRACES` (e.g. ``"DB2_C60"``).
    seed:
        Seed for both the workload model and the client; identical seeds give
        identical traces.
    target_requests:
        Number of storage-server requests to generate.
    client_id:
        Override the client identifier (needed when interleaving several
        instances of the same configuration, which must appear as distinct
        clients to CLIC).
    """
    stream = StandardTraceStream(
        name, seed=seed, target_requests=target_requests, client_id=client_id
    )
    requests = list(stream)
    return Trace(name=name, requests_list=requests, metadata=stream.metadata())


def server_cache_sizes(name: str) -> list[int]:
    """The scaled server-cache sweep (x-axis of Figures 6-8) for a trace."""
    if name not in STANDARD_TRACES:
        raise KeyError(f"unknown standard trace {name!r}")
    return list(STANDARD_TRACES[name].cache_sweep)


def clic_window_for(target_requests: int) -> int:
    """A CLIC window size proportional to the paper's W=10^6 over multi-million traces.

    The paper's window is roughly 1/30th of its shortest trace; we keep the
    same relative size with a floor that keeps per-window statistics stable.
    """
    return max(2_000, target_requests // 30)
