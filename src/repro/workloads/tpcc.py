"""TPC-C-like OLTP workload model.

The paper traces DB2 running TPC-C at scale factor 25 (about 600K 4KB pages).
We reproduce the *structure* of that workload rather than the benchmark
itself: the standard table mix (WAREHOUSE, DISTRICT, CUSTOMER, STOCK, ITEM,
ORDERS, NEW_ORDER, ORDER_LINE, HISTORY plus indexes), the standard
transaction mix (New-Order, Payment, Order-Status, Delivery, Stock-Level),
skewed customer/stock access, and database growth through inserts.

The model emits *logical* page operations; the DBMS client adapters run them
through a first-tier buffer pool to produce the hinted storage-server trace.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.access import AppendCursor, HotSpotSampler, LogicalOp, PageAccess
from repro.workloads.dbmodel import ObjectType, SyntheticDatabase

__all__ = ["TPCCWorkload", "TPCC_TRANSACTION_MIX"]


#: The standard TPC-C transaction mix (fractions sum to 1).
TPCC_TRANSACTION_MIX = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}


class TPCCWorkload:
    """Generates TPC-C-like logical page operations over a synthetic database.

    Parameters
    ----------
    total_pages:
        Approximate initial database size in pages (the layout scales every
        table proportionally, mirroring TPC-C's relative table sizes).
    seed:
        RNG seed; two workloads with the same seed generate identical streams.
    """

    def __init__(self, total_pages: int = 12_000, seed: int = 0, delivery_backlog: int = 1_500):
        if total_pages < 200:
            raise ValueError("total_pages must be at least 200")
        if delivery_backlog < 0:
            raise ValueError("delivery_backlog must be >= 0")
        self._rng = random.Random(seed)
        #: Deferred-delivery depth: Delivery transactions only process orders
        #: once at least this many are queued, so delivered orders are read
        #: back a while after they were inserted (and after their pages have
        #: typically left the first-tier buffer).
        self._delivery_backlog = delivery_backlog
        self.database = SyntheticDatabase(name="tpcc")
        self._build_layout(total_pages)
        # Customer selection follows TPC-C's NURand: mildly skewed but covering
        # the whole table; stock item selection is essentially uniform, which
        # is what makes STOCK cycle through the first-tier buffer (and its
        # replacement writes informative, cf. the paper's Figure 3).
        self._customer_sampler = HotSpotSampler(hot_fraction=0.3, hot_probability=0.6)
        self._stock_sampler = HotSpotSampler(hot_fraction=0.5, hot_probability=0.55)
        self._item_sampler = HotSpotSampler(hot_fraction=0.1, hot_probability=0.8)
        self._orders_append = AppendCursor(self.database["ORDERS"], rows_per_page=40)
        self._orderline_append = AppendCursor(self.database["ORDER_LINE"], rows_per_page=30)
        self._history_append = AppendCursor(self.database["HISTORY"], rows_per_page=60)
        self._neworder_append = AppendCursor(self.database["NEW_ORDER"], rows_per_page=80)
        self._txn_counter = 0
        #: Recently inserted order positions, consumed by Delivery transactions.
        self._undelivered: list[int] = []

    # ---------------------------------------------------------------- layout
    def _build_layout(self, total_pages: int) -> None:
        """Create the TPC-C tables and indexes with proportional sizes.

        Proportions roughly follow a populated TPC-C database, in which STOCK,
        CUSTOMER and ORDER_LINE dominate.  Two buffer pools are used, as in
        the paper's DB2 TPC-C configuration (Figure 2 reports a pool-id domain
        of cardinality 2): pool 0 for tables, pool 1 for indexes.
        """
        db = self.database
        unit = total_pages / 100.0

        def pages(percent: float) -> int:
            return max(1, int(percent * unit))

        # Tables (pool 0).
        db.add_object("WAREHOUSE", pages(0.2), ObjectType.TABLE, pool_id=0, buffer_priority=3)
        db.add_object("DISTRICT", pages(0.3), ObjectType.TABLE, pool_id=0, buffer_priority=3)
        db.add_object("CUSTOMER", pages(18.0), ObjectType.TABLE, pool_id=0, buffer_priority=2)
        db.add_object("STOCK", pages(35.0), ObjectType.TABLE, pool_id=0, buffer_priority=1)
        db.add_object("ITEM", pages(4.0), ObjectType.TABLE, pool_id=0, buffer_priority=2)
        db.add_object("ORDERS", pages(4.0), ObjectType.TABLE, pool_id=0, buffer_priority=1)
        db.add_object("NEW_ORDER", pages(0.5), ObjectType.TABLE, pool_id=0, buffer_priority=1)
        db.add_object("ORDER_LINE", pages(20.0), ObjectType.TABLE, pool_id=0, buffer_priority=0)
        db.add_object("HISTORY", pages(2.0), ObjectType.TABLE, pool_id=0, buffer_priority=0)
        # Indexes (pool 1) — higher buffer priority, as DBMSs favour index pages.
        db.add_object("WAREHOUSE_PK", pages(0.05), ObjectType.INDEX, pool_id=1, buffer_priority=3)
        db.add_object("DISTRICT_PK", pages(0.05), ObjectType.INDEX, pool_id=1, buffer_priority=3)
        db.add_object("CUSTOMER_PK", pages(2.0), ObjectType.INDEX, pool_id=1, buffer_priority=3)
        db.add_object("CUSTOMER_NAME_IDX", pages(2.0), ObjectType.INDEX, pool_id=1, buffer_priority=2)
        db.add_object("STOCK_PK", pages(3.5), ObjectType.INDEX, pool_id=1, buffer_priority=2)
        db.add_object("ITEM_PK", pages(0.5), ObjectType.INDEX, pool_id=1, buffer_priority=3)
        db.add_object("ORDERS_PK", pages(0.8), ObjectType.INDEX, pool_id=1, buffer_priority=2)
        db.add_object("ORDERS_CUST_IDX", pages(0.8), ObjectType.INDEX, pool_id=1, buffer_priority=2)
        db.add_object("NEW_ORDER_PK", pages(0.1), ObjectType.INDEX, pool_id=1, buffer_priority=2)
        db.add_object("ORDER_LINE_PK", pages(4.0), ObjectType.INDEX, pool_id=1, buffer_priority=1)
        db.add_object("HISTORY_PK", pages(0.4), ObjectType.INDEX, pool_id=1, buffer_priority=1)
        db.add_object("CATALOG", pages(0.5), ObjectType.CATALOG, pool_id=0, buffer_priority=3)

    # ----------------------------------------------------------- transactions
    def _index_lookup(self, index_name: str, sampler: HotSpotSampler, txn: int) -> list[PageAccess]:
        """B-tree descent: a root/internal page plus a skew-sampled leaf page."""
        index = self.database[index_name]
        root = PageAccess(index, 0, write=False, txn=txn)
        leaf = PageAccess(index, sampler.sample(index, self._rng), write=False, txn=txn)
        return [root, leaf]

    def _new_order(self, txn: int) -> list[LogicalOp]:
        rng = self._rng
        db = self.database
        ops: list[LogicalOp] = []
        ops.extend(self._index_lookup("WAREHOUSE_PK", self._item_sampler, txn))
        ops.append(PageAccess(db["WAREHOUSE"], db["WAREHOUSE"].random_page_index(rng), txn=txn))
        ops.extend(self._index_lookup("DISTRICT_PK", self._item_sampler, txn))
        ops.append(PageAccess(db["DISTRICT"], db["DISTRICT"].random_page_index(rng), write=True, txn=txn))
        ops.extend(self._index_lookup("CUSTOMER_PK", self._customer_sampler, txn))
        ops.append(PageAccess(db["CUSTOMER"], self._customer_sampler.sample(db["CUSTOMER"], rng), txn=txn))
        # 5-15 order lines, each touching ITEM and updating STOCK.
        for _ in range(rng.randint(5, 15)):
            ops.extend(self._index_lookup("ITEM_PK", self._item_sampler, txn))
            ops.append(PageAccess(db["ITEM"], self._item_sampler.sample(db["ITEM"], rng), txn=txn))
            ops.extend(self._index_lookup("STOCK_PK", self._stock_sampler, txn))
            ops.append(PageAccess(db["STOCK"], self._stock_sampler.sample(db["STOCK"], rng), write=True, txn=txn))
            ops.extend(self._orderline_append.append(db, 1))
            ops.append(PageAccess(db["ORDER_LINE_PK"], db["ORDER_LINE_PK"].last_page_index(), write=True, txn=txn))
        ops.extend(self._orders_append.append(db, 1))
        ops.append(PageAccess(db["ORDERS_PK"], db["ORDERS_PK"].last_page_index(), write=True, txn=txn))
        ops.extend(self._neworder_append.append(db, 1))
        self._undelivered.append(db["ORDERS"].page_count - 1)
        return ops

    def _payment(self, txn: int) -> list[LogicalOp]:
        rng = self._rng
        db = self.database
        ops: list[LogicalOp] = []
        ops.append(PageAccess(db["WAREHOUSE"], db["WAREHOUSE"].random_page_index(rng), write=True, txn=txn))
        ops.append(PageAccess(db["DISTRICT"], db["DISTRICT"].random_page_index(rng), write=True, txn=txn))
        # 60% of payments select the customer by last name (secondary index).
        if rng.random() < 0.6:
            ops.extend(self._index_lookup("CUSTOMER_NAME_IDX", self._customer_sampler, txn))
        ops.extend(self._index_lookup("CUSTOMER_PK", self._customer_sampler, txn))
        ops.append(PageAccess(db["CUSTOMER"], self._customer_sampler.sample(db["CUSTOMER"], rng), write=True, txn=txn))
        ops.extend(self._history_append.append(db, 1))
        return ops

    def _order_status(self, txn: int) -> list[LogicalOp]:
        rng = self._rng
        db = self.database
        ops: list[LogicalOp] = []
        ops.extend(self._index_lookup("CUSTOMER_PK", self._customer_sampler, txn))
        ops.append(PageAccess(db["CUSTOMER"], self._customer_sampler.sample(db["CUSTOMER"], rng), txn=txn))
        ops.extend(self._index_lookup("ORDERS_CUST_IDX", self._customer_sampler, txn))
        # Read the customer's most recent order.  A random customer's last
        # order can be arbitrarily old, so this re-reads pages inserted long
        # ago (the "ORDERLINE reads" hint sets of the paper's Figure 3).
        order_page = db["ORDERS"].random_page_index(rng)
        ops.append(PageAccess(db["ORDERS"], order_page, txn=txn))
        line_ratio = max(1, db["ORDER_LINE"].page_count // max(1, db["ORDERS"].page_count))
        line_page = min(order_page * line_ratio, db["ORDER_LINE"].page_count - 1)
        for offset in range(2):
            ops.append(PageAccess(db["ORDER_LINE"], max(0, line_page - offset), txn=txn))
        return ops

    def _delivery(self, txn: int) -> list[LogicalOp]:
        rng = self._rng
        db = self.database
        ops: list[LogicalOp] = []
        ops.extend(self._index_lookup("NEW_ORDER_PK", self._item_sampler, txn))
        ops.append(PageAccess(db["NEW_ORDER"], db["NEW_ORDER"].random_page_index(rng), write=True, txn=txn))
        # Deliver up to 10 of the oldest undelivered orders (read & update
        # them), but only once a backlog has built up — so delivered orders
        # are old enough to have aged out of the first-tier buffer.
        deliverable = max(0, len(self._undelivered) - self._delivery_backlog)
        for _ in range(min(10, deliverable)):
            order_page = self._undelivered.pop(0)
            order_page = min(order_page, db["ORDERS"].page_count - 1)
            ops.append(PageAccess(db["ORDERS"], order_page, write=True, txn=txn))
            line_page = min(order_page * 5, db["ORDER_LINE"].page_count - 1)
            ops.append(PageAccess(db["ORDER_LINE"], line_page, write=True, txn=txn))
        ops.extend(self._index_lookup("CUSTOMER_PK", self._customer_sampler, txn))
        ops.append(PageAccess(db["CUSTOMER"], self._customer_sampler.sample(db["CUSTOMER"], rng), write=True, txn=txn))
        return ops

    def _stock_level(self, txn: int) -> list[LogicalOp]:
        rng = self._rng
        db = self.database
        ops: list[LogicalOp] = []
        ops.append(PageAccess(db["DISTRICT"], db["DISTRICT"].random_page_index(rng), txn=txn))
        # Examine the most recent order lines and the stock of their items.
        tail = db["ORDER_LINE"].page_count - 1
        for offset in range(rng.randint(4, 8)):
            ops.append(PageAccess(db["ORDER_LINE"], max(0, tail - offset), txn=txn))
            ops.extend(self._index_lookup("STOCK_PK", self._stock_sampler, txn))
            ops.append(PageAccess(db["STOCK"], self._stock_sampler.sample(db["STOCK"], rng), txn=txn))
        return ops

    # --------------------------------------------------------------- driving
    def next_transaction(self) -> list[LogicalOp]:
        """Generate the logical operations of one transaction."""
        self._txn_counter += 1
        txn = self._txn_counter
        roll = self._rng.random()
        threshold = 0.0
        for name, fraction in TPCC_TRANSACTION_MIX.items():
            threshold += fraction
            if roll < threshold:
                return getattr(self, f"_{name}")(txn)
        return self._stock_level(txn)

    def operations(self, transactions: int) -> Iterator[LogicalOp]:
        """Yield the logical operations of *transactions* consecutive transactions."""
        for _ in range(transactions):
            yield from self.next_transaction()

    @property
    def transactions_generated(self) -> int:
        return self._txn_counter
