"""TPC-H-like decision-support workload model.

The paper's TPC-H traces come from DB2 (22 queries + 2 refresh functions) and
MySQL (21 queries, no refreshes).  We model each query as a template of
sequential scans over the large tables and index-driven lookups into the
smaller ones, which is how the real queries behave at the page level:
scan-heavy, prefetch-dominated reads with comparatively few writes.

When the first-tier buffer is much smaller than the scanned tables, every
query re-reads the same table pages from the storage server — exactly the
re-reference structure that makes the storage-server cache useful for TPC-H
and that CLIC learns from the ``(object id, prefetch read)`` hint sets.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.access import HotSpotSampler, LogicalOp, PageAccess, ScanAccess
from repro.workloads.dbmodel import ObjectType, SyntheticDatabase

__all__ = ["TPCHWorkload", "TPCH_QUERY_TEMPLATES"]


#: Per-query table usage: (table, kind, fraction-of-table or #lookups).
#: ``("scan", table, fraction)`` scans that fraction of the table;
#: ``("lookup", table, count)`` performs *count* index lookups + row fetches.
#: The templates are a page-level approximation of the 22 TPC-H queries.
TPCH_QUERY_TEMPLATES: dict[int, list[tuple[str, str, float]]] = {
    1: [("scan", "LINEITEM", 1.0)],
    2: [("scan", "PARTSUPP", 0.5), ("lookup", "PART", 200), ("lookup", "SUPPLIER", 100)],
    3: [("scan", "ORDERS", 0.6), ("scan", "LINEITEM", 0.4), ("lookup", "CUSTOMER", 150)],
    4: [("scan", "ORDERS", 0.8), ("scan", "LINEITEM", 0.3)],
    5: [("scan", "ORDERS", 0.5), ("scan", "LINEITEM", 0.4), ("lookup", "CUSTOMER", 200),
        ("lookup", "SUPPLIER", 100), ("scan", "NATION", 1.0), ("scan", "REGION", 1.0)],
    6: [("scan", "LINEITEM", 1.0)],
    7: [("scan", "LINEITEM", 0.5), ("lookup", "ORDERS", 300), ("lookup", "SUPPLIER", 150),
        ("lookup", "CUSTOMER", 150), ("scan", "NATION", 1.0)],
    8: [("scan", "LINEITEM", 0.3), ("lookup", "ORDERS", 250), ("lookup", "PART", 200),
        ("lookup", "CUSTOMER", 100), ("scan", "NATION", 1.0), ("scan", "REGION", 1.0)],
    9: [("scan", "LINEITEM", 0.7), ("lookup", "PART", 300), ("lookup", "SUPPLIER", 150),
        ("lookup", "PARTSUPP", 300), ("lookup", "ORDERS", 200)],
    10: [("scan", "ORDERS", 0.4), ("scan", "LINEITEM", 0.3), ("lookup", "CUSTOMER", 250),
         ("scan", "NATION", 1.0)],
    11: [("scan", "PARTSUPP", 1.0), ("lookup", "SUPPLIER", 150), ("scan", "NATION", 1.0)],
    12: [("scan", "LINEITEM", 0.6), ("lookup", "ORDERS", 300)],
    13: [("scan", "CUSTOMER", 1.0), ("scan", "ORDERS", 0.7)],
    14: [("scan", "LINEITEM", 0.4), ("lookup", "PART", 300)],
    15: [("scan", "LINEITEM", 0.5), ("lookup", "SUPPLIER", 150)],
    16: [("scan", "PARTSUPP", 0.8), ("lookup", "PART", 250), ("lookup", "SUPPLIER", 100)],
    17: [("scan", "LINEITEM", 0.5), ("lookup", "PART", 200)],
    18: [("scan", "ORDERS", 0.8), ("scan", "LINEITEM", 0.6), ("lookup", "CUSTOMER", 200)],
    19: [("scan", "LINEITEM", 0.4), ("lookup", "PART", 250)],
    20: [("scan", "LINEITEM", 0.4), ("lookup", "PART", 150), ("lookup", "PARTSUPP", 200),
         ("lookup", "SUPPLIER", 100)],
    21: [("scan", "LINEITEM", 0.7), ("lookup", "ORDERS", 250), ("lookup", "SUPPLIER", 150),
         ("scan", "NATION", 1.0)],
    22: [("scan", "CUSTOMER", 0.8), ("lookup", "ORDERS", 200)],
}


class TPCHWorkload:
    """Generates TPC-H-like logical page operations.

    Parameters
    ----------
    total_pages:
        Approximate database size in pages.
    include_refresh:
        Include the RF1/RF2 refresh functions between query streams (the
        paper's DB2 runs include them, the MySQL runs do not).
    skip_queries:
        Query numbers to leave out (the paper's MySQL runs skip Q18).
    seed:
        RNG seed for reproducible streams.
    """

    def __init__(
        self,
        total_pages: int = 16_000,
        include_refresh: bool = True,
        skip_queries: tuple[int, ...] = (),
        seed: int = 0,
    ):
        if total_pages < 200:
            raise ValueError("total_pages must be at least 200")
        self._rng = random.Random(seed)
        self._include_refresh = include_refresh
        self._queries = [q for q in sorted(TPCH_QUERY_TEMPLATES) if q not in set(skip_queries)]
        if not self._queries:
            raise ValueError("all queries were skipped")
        self.database = SyntheticDatabase(name="tpch")
        self._build_layout(total_pages)
        self._lookup_sampler = HotSpotSampler(hot_fraction=0.3, hot_probability=0.6)
        self._query_counter = 0
        # Each query template always scans the same range of a table (its
        # predicate is fixed), so a page is only re-read when another query
        # whose range covers it runs — not a few thousand requests later by a
        # re-rolled random range.  This mirrors the long re-reference
        # distances of the paper's full-scale TPC-H traces.
        self._scan_ranges = self._fix_scan_ranges()

    # ---------------------------------------------------------------- layout
    def _build_layout(self, total_pages: int) -> None:
        """TPC-H table sizes, roughly proportional to the benchmark's row counts."""
        db = self.database
        unit = total_pages / 100.0

        def pages(percent: float) -> int:
            return max(1, int(percent * unit))

        # Tables spread over several buffer pools, as in the paper's DB2 TPC-H
        # configuration (pool-id cardinality 5 in Figure 2).
        db.add_object("LINEITEM", pages(44.0), ObjectType.TABLE, pool_id=0, buffer_priority=0)
        db.add_object("ORDERS", pages(18.0), ObjectType.TABLE, pool_id=0, buffer_priority=1)
        db.add_object("PARTSUPP", pages(12.0), ObjectType.TABLE, pool_id=1, buffer_priority=1)
        db.add_object("PART", pages(4.0), ObjectType.TABLE, pool_id=1, buffer_priority=2)
        db.add_object("CUSTOMER", pages(4.5), ObjectType.TABLE, pool_id=2, buffer_priority=2)
        db.add_object("SUPPLIER", pages(0.5), ObjectType.TABLE, pool_id=2, buffer_priority=2)
        db.add_object("NATION", 1, ObjectType.TABLE, pool_id=2, buffer_priority=3)
        db.add_object("REGION", 1, ObjectType.TABLE, pool_id=2, buffer_priority=3)
        db.add_object("LINEITEM_PK", pages(6.0), ObjectType.INDEX, pool_id=3, buffer_priority=2)
        db.add_object("ORDERS_PK", pages(3.0), ObjectType.INDEX, pool_id=3, buffer_priority=2)
        db.add_object("PARTSUPP_PK", pages(2.0), ObjectType.INDEX, pool_id=3, buffer_priority=2)
        db.add_object("PART_PK", pages(0.8), ObjectType.INDEX, pool_id=3, buffer_priority=3)
        db.add_object("CUSTOMER_PK", pages(0.8), ObjectType.INDEX, pool_id=3, buffer_priority=3)
        db.add_object("SUPPLIER_PK", pages(0.2), ObjectType.INDEX, pool_id=3, buffer_priority=3)
        db.add_object("TEMP_SORT", pages(3.0), ObjectType.TEMP, pool_id=4, buffer_priority=0)
        db.add_object("CATALOG", pages(0.2), ObjectType.CATALOG, pool_id=4, buffer_priority=3)

    # ---------------------------------------------------------------- queries
    def _index_for(self, table: str) -> str | None:
        candidate = f"{table}_PK"
        return candidate if candidate in self.database else None

    def _fix_scan_ranges(self) -> dict[tuple[int, str], tuple[int, int]]:
        """Choose, once per (query, table), the fixed page range the query scans.

        Partial scans of the same table are spread evenly across it (different
        queries filter different key/date ranges), so two different queries
        rarely re-read the same pages back to back; a page is typically only
        re-read when the *same* query runs again a full round later, giving
        the long re-reference distances of the paper's full-scale traces.
        """
        partial_scanners: dict[str, list[tuple[int, int]]] = {}
        ranges: dict[tuple[int, str], tuple[int, int]] = {}
        for query_number, template in TPCH_QUERY_TEMPLATES.items():
            for kind, table, amount in template:
                if kind != "scan":
                    continue
                obj = self.database[table]
                length = max(1, int(obj.page_count * amount))
                if amount >= 0.99 or length >= obj.page_count:
                    ranges[(query_number, table)] = (0, obj.page_count)
                else:
                    partial_scanners.setdefault(table, []).append((query_number, length))
        for table, scanners in partial_scanners.items():
            obj = self.database[table]
            count = len(scanners)
            for position, (query_number, length) in enumerate(sorted(scanners)):
                span = max(1, obj.page_count - length)
                start = (position * span) // max(1, count - 1) if count > 1 else span // 2
                ranges[(query_number, table)] = (min(start, span), length)
        return ranges

    def _query_ops(self, query_number: int, txn: int) -> Iterator[LogicalOp]:
        rng = self._rng
        db = self.database
        template = TPCH_QUERY_TEMPLATES[query_number]
        for kind, table, amount in template:
            obj = db[table]
            if kind == "scan":
                start, length = self._scan_ranges[(query_number, table)]
                yield ScanAccess(obj, start_index=start, length=length, txn=txn)
            else:
                count = int(amount)
                index_name = self._index_for(table)
                for _ in range(count):
                    if index_name is not None:
                        index = db[index_name]
                        yield PageAccess(index, 0, txn=txn)
                        yield PageAccess(index, self._lookup_sampler.sample(index, rng), txn=txn)
                    yield PageAccess(obj, self._lookup_sampler.sample(obj, rng), txn=txn)
        # Large joins/aggregations spill to the temporary sort area.
        temp = db["TEMP_SORT"]
        spill = rng.randrange(0, max(2, temp.page_count // 4))
        for index in range(spill):
            yield PageAccess(temp, index % temp.page_count, write=True, txn=txn)

    def _refresh_ops(self, txn: int) -> Iterator[LogicalOp]:
        """RF1/RF2: small batches of inserts/deletes against ORDERS and LINEITEM."""
        rng = self._rng
        db = self.database
        for _ in range(rng.randint(20, 60)):
            yield PageAccess(db["ORDERS"], db["ORDERS"].random_page_index(rng), write=True, txn=txn)
            yield PageAccess(db["LINEITEM"], db["LINEITEM"].random_page_index(rng), write=True, txn=txn)
            yield PageAccess(db["ORDERS_PK"], db["ORDERS_PK"].random_page_index(rng), write=True, txn=txn)
            yield PageAccess(db["LINEITEM_PK"], db["LINEITEM_PK"].random_page_index(rng), write=True, txn=txn)

    # --------------------------------------------------------------- driving
    def next_query(self) -> Iterator[LogicalOp]:
        """Yield the operations of the next query in the stream (round-robin)."""
        query = self._queries[self._query_counter % len(self._queries)]
        self._query_counter += 1
        yield from self._query_ops(query, txn=self._query_counter)
        if self._include_refresh and self._query_counter % len(self._queries) == 0:
            self._query_counter += 1
            yield from self._refresh_ops(txn=self._query_counter)

    def operations(self, queries: int) -> Iterator[LogicalOp]:
        """Yield the operations of *queries* consecutive queries."""
        for _ in range(queries):
            yield from self.next_query()

    @property
    def queries_generated(self) -> int:
        return self._query_counter
