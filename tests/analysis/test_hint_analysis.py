"""Tests for the off-line hint-set analysis (Section 3 / Figure 3)."""

from __future__ import annotations

import pytest

from repro.analysis.hint_analysis import analyze_hint_sets, figure3_rows
from repro.analysis.reporting import percentage, rows_to_csv, rows_to_table, series_to_rows

from tests.conftest import hint, rd, wr


GOOD = hint("db2", table="stock", request_type="replacement_write")
BAD = hint("db2", table="orderline", request_type="read")


def small_trace():
    """GOOD-hinted requests are re-read quickly; BAD-hinted ones never are."""
    requests = []
    # Pages 1..5 written with GOOD, re-read two requests later.
    for page in range(1, 6):
        requests.append(wr(page, GOOD))
        requests.append(rd(100 + page, BAD))
        requests.append(rd(page, GOOD))
    # Pages 200.. read once with BAD, never again.
    for page in range(200, 210):
        requests.append(rd(page, BAD))
    return requests


class TestAnalyzeHintSets:
    def test_counts_requests_per_hint_set(self):
        analysis = analyze_hint_sets(small_trace())
        assert analysis[GOOD.key()].requests == 10
        assert analysis[BAD.key()].requests == 15

    def test_read_rereferences_and_distance(self):
        analysis = analyze_hint_sets(small_trace())
        good = analysis[GOOD.key()]
        # Every GOOD write is re-read exactly 2 requests later.
        assert good.read_rereferences == 5
        assert good.mean_distance == pytest.approx(2.0)

    def test_unrereferenced_hint_set_has_zero_priority(self):
        analysis = analyze_hint_sets(small_trace())
        assert analysis[BAD.key()].priority == 0.0
        assert analysis[BAD.key()].no_rereferences > 0

    def test_priority_ranks_good_above_bad(self):
        analysis = analyze_hint_sets(small_trace())
        assert analysis[GOOD.key()].priority > analysis[BAD.key()].priority

    def test_write_rereference_not_counted_as_benefit(self):
        requests = [rd(1, GOOD), wr(1, GOOD), rd(1, GOOD)]
        analysis = analyze_hint_sets(requests)
        good = analysis[GOOD.key()]
        # First request -> write re-ref; second -> read re-ref; third -> none.
        assert good.write_rereferences == 1
        assert good.read_rereferences == 1
        assert good.no_rereferences == 1

    def test_empty_trace(self):
        assert analyze_hint_sets([]) == {}


class TestFigure3Rows:
    def test_rows_sorted_by_priority(self):
        rows = figure3_rows(small_trace())
        priorities = [row["priority"] for row in rows]
        assert priorities == sorted(priorities, reverse=True)

    def test_zero_priority_rows_hidden_by_default(self):
        rows = figure3_rows(small_trace())
        assert all(row["priority"] > 0 for row in rows)

    def test_zero_priority_rows_included_on_request(self):
        rows = figure3_rows(small_trace(), include_zero_priority=True)
        assert any(row["priority"] == 0 for row in rows)

    def test_rows_carry_frequency(self):
        rows = figure3_rows(small_trace())
        assert rows[0]["frequency"] == 10


class TestReporting:
    def test_percentage(self):
        assert percentage(0.4163) == "41.6%"

    def test_rows_to_table_contains_headers_and_values(self):
        table = rows_to_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        assert "a" in table and "b" in table
        assert "0.5" in table

    def test_rows_to_table_empty(self):
        assert rows_to_table([]) == "(no rows)"

    def test_rows_to_csv_round_trip(self, tmp_path):
        import csv

        path = rows_to_csv([{"a": 1, "b": "x"}], tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows == [{"a": "1", "b": "x"}]

    def test_series_to_rows(self):
        rows = series_to_rows({"LRU": [(10, 0.5)]}, x_name="cache")
        assert rows == [{"series": "LRU", "cache": 10, "read_hit_ratio": 0.5}]
