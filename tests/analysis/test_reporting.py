"""Tests for the report formatting helpers (tables and CSV emission)."""

from __future__ import annotations

import csv

from repro.analysis.reporting import percentage, rows_to_csv, rows_to_table, series_to_rows


HETEROGENEOUS_ROWS = [
    {"policy": "LRU", "read_hit_ratio": 0.25},
    {"policy": "LRU x4", "read_hit_ratio": 0.21, "hottest_shard_penalty": 1.4},
]


class TestRowsToTable:
    def test_columns_union_over_all_rows(self):
        # Columns that first appear in later rows must not be dropped.
        table = rows_to_table(HETEROGENEOUS_ROWS)
        header = table.splitlines()[0]
        assert "hottest_shard_penalty" in header
        assert "1.4" in table

    def test_union_preserves_first_seen_order(self):
        table = rows_to_table(
            [{"b": 1}, {"a": 2, "b": 3}, {"c": 4}]
        )
        header = table.splitlines()[0].split()
        assert header == ["b", "a", "c"]

    def test_missing_values_render_blank(self):
        table = rows_to_table(HETEROGENEOUS_ROWS)
        first_data_row = table.splitlines()[2]
        assert first_data_row.rstrip().endswith("0.25")

    def test_explicit_columns_select_and_order(self):
        table = rows_to_table(HETEROGENEOUS_ROWS, columns=["read_hit_ratio", "policy"])
        header = table.splitlines()[0].split()
        assert header == ["read_hit_ratio", "policy"]

    def test_empty_rows(self):
        assert rows_to_table([]) == "(no rows)"


class TestRowsToCsv:
    def read_back(self, path):
        with open(path, newline="", encoding="utf-8") as handle:
            return list(csv.reader(handle))

    def test_columns_union_over_all_rows(self, tmp_path):
        path = rows_to_csv(HETEROGENEOUS_ROWS, tmp_path / "out.csv")
        parsed = self.read_back(path)
        assert parsed[0] == ["policy", "read_hit_ratio", "hottest_shard_penalty"]
        assert parsed[1] == ["LRU", "0.25", ""]
        assert parsed[2] == ["LRU x4", "0.21", "1.4"]

    def test_empty_rows_with_columns_still_write_header(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv", columns=["series", "x", "y"])
        parsed = self.read_back(path)
        assert parsed == [["series", "x", "y"]]

    def test_empty_rows_without_columns_write_empty_file(self, tmp_path):
        path = rows_to_csv([], tmp_path / "nothing.csv")
        assert path.read_text() == ""

    def test_explicit_columns_project_rows(self, tmp_path):
        # Extra keys are projected away by the explicit column list without
        # relying on DictWriter's extrasaction to silently swallow them.
        path = rows_to_csv(HETEROGENEOUS_ROWS, tmp_path / "narrow.csv", columns=["policy"])
        parsed = self.read_back(path)
        assert parsed == [["policy"], ["LRU"], ["LRU x4"]]


class TestHelpers:
    def test_percentage(self):
        assert percentage(0.416) == "41.6%"

    def test_series_to_rows(self):
        rows = series_to_rows({"LRU": [(1.0, 0.5)]}, x_name="cache_size")
        assert rows == [{"series": "LRU", "cache_size": 1.0, "read_hit_ratio": 0.5}]
