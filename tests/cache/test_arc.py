"""Tests for the ARC policy."""

from __future__ import annotations

import random

import pytest

from repro.cache.arc import ARCPolicy
from repro.cache.lru import LRUPolicy
from repro.simulation.simulator import CacheSimulator

from tests.conftest import rd


class TestARCBasics:
    def test_hit_and_miss(self):
        arc = ARCPolicy(4)
        assert not arc.access(rd(1), 0).hit
        assert arc.access(rd(1), 1).hit

    def test_capacity_never_exceeded(self):
        arc = ARCPolicy(8)
        rng = random.Random(5)
        for seq in range(2000):
            arc.access(rd(rng.randrange(64)), seq)
            assert len(arc) <= 8

    def test_repeated_access_promotes_to_frequency_list(self):
        arc = ARCPolicy(4)
        arc.access(rd(1), 0)
        arc.access(rd(1), 1)
        assert 1 in arc._t2
        assert 1 not in arc._t1

    def test_ghost_hit_adapts_target(self):
        arc = ARCPolicy(2)
        # Put page 1 in T2, page 2 in T1, then force 2 out into the B1 ghosts.
        arc.access(rd(1), 0)
        arc.access(rd(1), 1)          # page 1 promoted to T2
        arc.access(rd(2), 2)          # page 2 enters T1
        arc.access(rd(3), 3)          # REPLACE evicts page 2 from T1 into B1
        assert 2 in arc._b1
        before = arc.target_t1_size
        arc.access(rd(2), 4)          # ghost hit in B1 -> p grows
        assert arc.target_t1_size > before
        assert arc.contains(2)

    def test_scan_resistance_beats_lru(self):
        """A loop larger than the cache mixed with hot pages: ARC >= LRU."""
        rng = random.Random(11)
        requests = []
        for i in range(30_000):
            if i % 2 == 0:
                requests.append(rd(rng.randrange(8)))          # hot set
            else:
                requests.append(rd(100 + (i // 2) % 2000))      # long scan loop
        arc_result = CacheSimulator(ARCPolicy(64)).run(requests)
        lru_result = CacheSimulator(LRUPolicy(64)).run(requests)
        assert arc_result.read_hit_ratio >= lru_result.read_hit_ratio

    def test_reset(self):
        arc = ARCPolicy(4)
        for seq in range(10):
            arc.access(rd(seq % 6), seq)
        arc.reset()
        assert len(arc) == 0
        assert arc.target_t1_size == 0.0

    def test_total_directory_bounded(self):
        # |T1|+|T2|+|B1|+|B2| <= 2c for ARC.
        arc = ARCPolicy(16)
        rng = random.Random(3)
        for seq in range(5000):
            arc.access(rd(rng.randrange(200)), seq)
            directory = len(arc._t1) + len(arc._t2) + len(arc._b1) + len(arc._b2)
            assert directory <= 2 * 16 + 1
