"""Tests for the policy base class, statistics and capacity validation."""

from __future__ import annotations

import pytest

from repro.cache.base import (
    HIT,
    MISS_ADMIT,
    MISS_BYPASS,
    AccessOutcome,
    CachePolicy,
    CacheStats,
    validate_capacity,
)
from repro.cache.lru import LRUPolicy
from repro.simulation.simulator import simulate

from tests.conftest import rd, wr


class TestAccessOutcome:
    def test_truthiness_is_the_hit_flag(self):
        assert bool(HIT)
        assert not bool(MISS_ADMIT)
        assert not bool(MISS_BYPASS)
        assert bool(AccessOutcome(True, evicted=(3,)))

    def test_equality_is_field_wise(self):
        assert AccessOutcome(False, admitted=True) == MISS_ADMIT
        assert AccessOutcome(False, admitted=True, evicted=(7,)) != MISS_ADMIT
        assert hash(AccessOutcome(False, admitted=True)) == hash(MISS_ADMIT)

    def test_comparison_with_bool_is_not_an_outcome_check(self):
        # AccessOutcome is not a bool: compare ``.hit`` (or truthiness), never
        # ``== True`` — this pins the NotImplemented fallback.
        assert (HIT == True) is False  # noqa: E712

    def test_singletons_carry_no_evictions(self):
        for outcome in (HIT, MISS_ADMIT, MISS_BYPASS):
            assert outcome.evicted == ()

    def test_record_outcome_counting_rules(self):
        stats = CacheStats()
        stats.record_outcome(rd(1), MISS_ADMIT)
        stats.record_outcome(rd(1), HIT)
        stats.record_outcome(rd(2), MISS_BYPASS)
        stats.record_outcome(wr(3), AccessOutcome(False, admitted=True, evicted=(1, 2)))
        assert stats.requests == 4
        assert stats.read_hits == 1
        assert stats.admissions == 2
        assert stats.bypasses == 1
        assert stats.evictions == 2


class TestValidateCapacity:
    def test_accepts_positive_int(self):
        assert validate_capacity(10) == 10

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            validate_capacity(0)
        with pytest.raises(ValueError):
            validate_capacity(-5)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            validate_capacity(2.5)


class TestCacheStats:
    def test_read_hit_ratio(self):
        stats = CacheStats()
        stats.record(rd(1), hit=True)
        stats.record(rd(2), hit=False)
        stats.record(rd(3), hit=True)
        assert stats.read_hit_ratio == pytest.approx(2 / 3)

    def test_read_hit_ratio_zero_reads(self):
        stats = CacheStats()
        stats.record(wr(1), hit=True)
        assert stats.read_hit_ratio == 0.0

    def test_writes_do_not_count_towards_read_hit_ratio(self):
        stats = CacheStats()
        stats.record(rd(1), hit=False)
        stats.record(wr(2), hit=True)
        assert stats.read_hit_ratio == 0.0
        assert stats.write_hits == 1

    def test_overall_hit_ratio(self):
        stats = CacheStats()
        stats.record(rd(1), hit=True)
        stats.record(wr(2), hit=False)
        assert stats.overall_hit_ratio == pytest.approx(0.5)

    def test_requests_count(self):
        stats = CacheStats()
        for i in range(3):
            stats.record(rd(i), hit=False)
        stats.record(wr(9), hit=False)
        assert stats.requests == 4

    def test_merge_sums_all_counters(self):
        a = CacheStats(read_requests=2, read_hits=1, evictions=3)
        b = CacheStats(read_requests=4, read_hits=2, write_requests=1, admissions=5)
        merged = a.merge(b)
        assert merged.read_requests == 6
        assert merged.read_hits == 3
        assert merged.write_requests == 1
        assert merged.evictions == 3
        assert merged.admissions == 5

    def test_as_dict_round_trips_counters(self):
        stats = CacheStats(read_requests=10, read_hits=4)
        d = stats.as_dict()
        assert d["read_requests"] == 10
        assert d["read_hit_ratio"] == pytest.approx(0.4)


class TestCachePolicyBase:
    def test_capacity_exposed(self):
        assert LRUPolicy(7).capacity == 7

    def test_check_invariant_passes_for_valid_policy(self):
        policy = LRUPolicy(2)
        for seq, page in enumerate([1, 2, 3, 4]):
            policy.access(rd(page), seq)
        policy._check_invariant()

    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            CachePolicy(4)  # type: ignore[abstract]

    def test_reset_clears_state_and_stats_view(self):
        policy = LRUPolicy(2)
        simulate(policy, [rd(1)])
        policy.reset()
        with pytest.warns(DeprecationWarning):
            assert policy.stats.requests == 0
        assert len(policy) == 0

    def test_stats_shim_warns_and_mirrors_the_last_run(self):
        policy = LRUPolicy(2)
        result = simulate(policy, [rd(1), rd(1), wr(2)])
        with pytest.warns(DeprecationWarning, match="CachePolicy.stats is deprecated"):
            assert policy.stats == result.stats
