"""Scalar==batch equivalence suite for every registered policy.

The batch kernel contract (:meth:`repro.cache.base.CachePolicy
.batch_access`) says a batch call must be outcome-for-outcome identical to
the scalar ``access()`` loop over the same requests — and must leave the
policy in the identical state.  This suite derives its policy list from the
registry (:func:`repro.cache.registry.available_policies`), so every
registered policy — those with fused batch kernels (LRU, FIFO, CLOCK, the
sharded cluster) and those running the default materialising fallback — is
held to the contract over random request streams and random chunk splits.
lintkit's ``batch-kernel-parity`` rule enforces that any policy overriding
``batch_access`` stays covered here.

The engine-level half of the contract — the columnar replay path produces
the same results at any job count — is pinned by the sweep test at the
bottom.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import AccessOutcomeBatch, CachePolicy
from repro.cache.registry import available_policies, create_policy
from repro.core.config import CLICConfig
from repro.simulation.engine import ParallelSweepRunner, PolicySpec, SweepCell
from repro.trace.columnar import ColumnarChunk

from tests.strategies import request_streams

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.property

#: Constructor kwargs giving each registry policy a test-sized configuration.
_POLICY_KWARGS = {
    "CLIC": {"config": CLICConfig(window_size=20, charge_metadata=False)},
    "SHARDED": {"policy": "LRU", "shards": 3, "router": "hash"},
}

#: Sharded variants: the cluster's gather/scatter batch path (all shards
#: batch-capable), its whole-cluster fallback (ARC shards), and each router.
_SHARDED_VARIANTS = [
    ("SHARDED[LRU,hash]", {"policy": "LRU", "shards": 3, "router": "hash"}),
    ("SHARDED[CLOCK,range]", {"policy": "CLOCK", "shards": 2, "router": "range", "page_span": 41}),
    ("SHARDED[FIFO,client]", {"policy": "FIFO", "shards": 2, "router": "client"}),
    ("SHARDED[ARC,hash]", {"policy": "ARC", "shards": 2, "router": "hash"}),
]

#: CLIC variants beyond the default HintTable case: a Space-Saving tracker
#: small enough that counter recycling forces the kernel's ordered-replay
#: fallback (top_k=4; the small hint domain easily exceeds 4 keys), a
#: degenerate k=1 tracker (recycling on nearly every segment), and a short
#: decayed window so heap rebuilds land mid-chunk.
_CLIC_VARIANTS = [
    ("CLIC[topk4]", {"config": CLICConfig(window_size=20, top_k=4, charge_metadata=False)}),
    ("CLIC[topk1]", {"config": CLICConfig(window_size=13, top_k=1, charge_metadata=False)}),
    ("CLIC[decay]", {"config": CLICConfig(window_size=7, decay=0.5, charge_metadata=False)}),
]


def _registry_cases() -> list[tuple[str, str, dict]]:
    cases = [
        (name, name, _POLICY_KWARGS.get(name, {})) for name in available_policies()
    ]
    cases.extend((label, "SHARDED", kwargs) for label, kwargs in _SHARDED_VARIANTS)
    cases.extend((label, "CLIC", kwargs) for label, kwargs in _CLIC_VARIANTS)
    return cases


CASES = _registry_cases()
CASE_IDS = [case[0] for case in CASES]

CAPACITY = 12

STREAMS = request_streams(min_size=1, max_size=200)

#: Random chunk splits: sizes drawn until the stream is consumed, so the
#: batch path sees chunk boundaries everywhere (including size-1 chunks).
CHUNK_SIZES = st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=20)


def _build(name: str, kwargs: dict) -> CachePolicy:
    return create_policy(name, capacity=CAPACITY, **kwargs)


def _split(stream, sizes):
    """Cut *stream* into chunks of the drawn sizes (cycling as needed)."""
    chunks = []
    offset = 0
    index = 0
    while offset < len(stream):
        take = sizes[index % len(sizes)]
        chunks.append((offset, stream[offset : offset + take]))
        offset += take
        index += 1
    return chunks


@pytest.mark.parametrize(("name", "kwargs"), [c[1:] for c in CASES], ids=CASE_IDS)
@given(stream=STREAMS, sizes=CHUNK_SIZES)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batch_access_matches_scalar(name, kwargs, stream, sizes):
    scalar = _build(name, kwargs)
    batched = _build(name, kwargs)
    if scalar.offline:
        scalar.prepare(stream, 0)
        batched.prepare(stream, 0)

    scalar_outcomes = [
        scalar.access(request, seq) for seq, request in enumerate(stream)
    ]
    batch_outcomes = []
    for offset, chunk_requests in _split(stream, sizes):
        chunk = ColumnarChunk.from_requests(chunk_requests, start_seq=offset)
        batch = batched.batch_access(chunk)
        assert isinstance(batch, AccessOutcomeBatch)
        assert len(batch) == len(chunk_requests)
        batch_outcomes.extend(batch.outcomes())

    assert batch_outcomes == scalar_outcomes
    assert len(batched) == len(scalar)
    assert sorted(batched.cached_pages()) == sorted(scalar.cached_pages())


@given(stream=STREAMS, sizes=CHUNK_SIZES)
@settings(max_examples=25, deadline=None)
def test_batch_columns_match_scalar_outcomes(stream, sizes):
    """The batch's column view (hit/admitted/bypassed/CSR evictions) agrees
    with its own reconstructed outcome objects."""
    policy = create_policy("LRU", capacity=CAPACITY)
    for offset, chunk_requests in _split(stream, sizes):
        chunk = ColumnarChunk.from_requests(chunk_requests, start_seq=offset)
        batch = policy.batch_access(chunk)
        for i, outcome in enumerate(batch.outcomes()):
            assert bool(batch.hit[i]) == outcome.hit
            assert bool(batch.admitted[i]) == outcome.admitted
            assert bool(batch.bypassed[i]) == outcome.bypassed
            start = int(batch.evicted_offsets[i])
            stop = int(batch.evicted_offsets[i + 1])
            assert tuple(int(p) for p in batch.evicted_pages[start:stop]) == (
                outcome.evicted
            )


def test_default_batch_access_materialises_chunk_once(monkeypatch):
    """The scalar-lifting fallback shares one materialisation per chunk.

    Regression: the default ``batch_access`` used to convert the seq column
    itself (``chunk.seq.tolist()``), so N fallback policies replaying one
    chunk paid N conversions.  Both the request list and the seq list are
    now memoised at the chunk — replaying the same decoded chunk through
    several fallback policies must construct each request object exactly
    once, ever.
    """
    import repro.trace.columnar as columnar_mod
    from repro.core.hints import HintSet
    from repro.simulation.request import IORequest, RequestKind

    stream = [
        IORequest(
            page=i % 7,
            kind=RequestKind.READ if i % 3 else RequestKind.WRITE,
            hints=HintSet(client_id="a", names=("kind",), values=(i % 2,)),
        )
        for i in range(40)
    ]
    chunk = ColumnarChunk.from_requests(stream, start_seq=0)
    # from_requests pre-memoises the objects; null the memos so the chunk
    # looks freshly array-decoded (the iter_columnar case).
    chunk._requests = None
    chunk._seq_list = None

    constructed = 0

    def counting_request(*args, **kwargs):
        nonlocal constructed
        constructed += 1
        return IORequest(*args, **kwargs)

    monkeypatch.setattr(columnar_mod, "IORequest", counting_request)

    for name in ("LFU", "MQ", "TQ"):
        policy = create_policy(name, capacity=CAPACITY)
        # These policies must actually run the fallback for the test to mean
        # anything; if one grows a fused kernel, swap it out here.
        assert type(policy).batch_access is CachePolicy.batch_access
        batch = policy.batch_access(chunk)
        assert len(batch) == len(chunk)

    assert constructed == len(chunk)
    assert chunk.requests() is chunk.requests()
    assert chunk.seq_list() is chunk.seq_list()


@pytest.mark.slow
def test_columnar_sweep_jobs_invariant():
    """jobs=1 and jobs=2 produce identical sweeps on the columnar path."""
    from repro.workloads.standard import standard_trace

    trace = standard_trace("DB2_C60", target_requests=6_000)
    requests = trace.requests()
    cells = [
        SweepCell(
            x=capacity,
            specs=(
                PolicySpec(label="LRU", name="LRU", capacity=capacity),
                PolicySpec(label="CLOCK", name="CLOCK", capacity=capacity),
                PolicySpec(
                    label="SHARDED[LRU]",
                    name="SHARDED",
                    capacity=capacity,
                    kwargs={"policy": "LRU", "shards": 2, "router": "hash"},
                ),
            ),
        )
        for capacity in (32, 64)
    ]

    def run(jobs):
        runner = ParallelSweepRunner(requests=requests, jobs=jobs, columnar=True)
        return runner.run(cells, parameter="capacity")

    serial = run(1)
    parallel = run(2)
    assert serial.labels() == parallel.labels()
    for label in serial.labels():
        assert serial.curve(label) == parallel.curve(label)
        for a, b in zip(serial.series[label], parallel.series[label]):
            assert a.result.stats.as_dict() == b.result.stats.as_dict()
