"""Tests for the simple hint-oblivious policies: LRU, FIFO, CLOCK, LFU."""

from __future__ import annotations

import pytest

from repro.cache.clock import ClockPolicy
from repro.cache.fifo import FIFOPolicy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy

from tests.conftest import rd, wr


class TestLRU:
    def test_hit_and_miss(self):
        lru = LRUPolicy(2)
        assert not lru.access(rd(1), 0).hit
        assert lru.access(rd(1), 1).hit

    def test_evicts_least_recently_used(self):
        lru = LRUPolicy(2)
        lru.access(rd(1), 0)
        lru.access(rd(2), 1)
        lru.access(rd(1), 2)      # page 1 is now more recent than page 2
        lru.access(rd(3), 3)      # evicts page 2
        assert lru.contains(1) and lru.contains(3)
        assert not lru.contains(2)

    def test_writes_count_as_uses(self):
        lru = LRUPolicy(2)
        lru.access(rd(1), 0)
        lru.access(rd(2), 1)
        lru.access(wr(1), 2)
        lru.access(rd(3), 3)
        assert lru.contains(1)
        assert not lru.contains(2)

    def test_capacity_never_exceeded(self):
        lru = LRUPolicy(3)
        for seq in range(100):
            lru.access(rd(seq % 10), seq)
            assert len(lru) <= 3

    def test_eviction_and_admission_outcomes(self):
        lru = LRUPolicy(1)
        first = lru.access(rd(1), 0)
        second = lru.access(rd(2), 1)
        assert first.admitted and not first.evicted
        assert second.admitted and second.evicted == (1,)

    def test_sequential_scan_yields_no_hits(self):
        lru = LRUPolicy(10)
        outcomes = [lru.access(rd(seq), seq) for seq in range(100)]
        assert not any(outcome.hit for outcome in outcomes)


class TestFIFO:
    def test_evicts_in_insertion_order_regardless_of_use(self):
        fifo = FIFOPolicy(2)
        fifo.access(rd(1), 0)
        fifo.access(rd(2), 1)
        fifo.access(rd(1), 2)     # hit, but does not refresh position
        fifo.access(rd(3), 3)     # evicts page 1 (oldest insertion)
        assert not fifo.contains(1)
        assert fifo.contains(2) and fifo.contains(3)

    def test_hit_reporting(self):
        fifo = FIFOPolicy(2)
        assert not fifo.access(rd(7), 0).hit
        assert fifo.access(rd(7), 1).hit

    def test_capacity_never_exceeded(self):
        fifo = FIFOPolicy(4)
        for seq in range(50):
            fifo.access(rd(seq % 9), seq)
            assert len(fifo) <= 4


class TestClock:
    def test_hit_and_miss(self):
        clock = ClockPolicy(2)
        assert not clock.access(rd(1), 0).hit
        assert clock.access(rd(1), 1).hit

    def test_second_chance_protects_referenced_page(self):
        clock = ClockPolicy(2)
        clock.access(rd(1), 0)
        clock.access(rd(2), 1)
        clock.access(rd(1), 2)    # sets page 1's reference bit
        clock.access(rd(3), 3)    # hand clears 1's bit, evicts 2
        assert clock.contains(1)
        assert not clock.contains(2)
        assert clock.contains(3)

    def test_capacity_never_exceeded(self):
        clock = ClockPolicy(5)
        for seq in range(200):
            clock.access(rd(seq % 17), seq)
            assert len(clock) <= 5

    def test_reset(self):
        clock = ClockPolicy(2)
        clock.access(rd(1), 0)
        clock.reset()
        assert len(clock) == 0
        assert not clock.contains(1)


class TestLFU:
    def test_evicts_least_frequent(self):
        lfu = LFUPolicy(2)
        lfu.access(rd(1), 0)
        lfu.access(rd(1), 1)
        lfu.access(rd(2), 2)
        lfu.access(rd(3), 3)      # evicts page 2 (frequency 1 < 2)
        assert lfu.contains(1)
        assert not lfu.contains(2)
        assert lfu.contains(3)

    def test_tie_broken_by_recency_of_insertion(self):
        lfu = LFUPolicy(2)
        lfu.access(rd(1), 0)
        lfu.access(rd(2), 1)
        lfu.access(rd(3), 2)      # 1 and 2 tie at frequency 1; 1 is older
        assert not lfu.contains(1)
        assert lfu.contains(2) and lfu.contains(3)

    def test_capacity_never_exceeded(self):
        lfu = LFUPolicy(3)
        for seq in range(100):
            lfu.access(rd(seq % 7), seq)
            assert len(lfu) <= 3

    def test_reset(self):
        lfu = LFUPolicy(2)
        lfu.access(rd(1), 0)
        lfu.reset()
        assert len(lfu) == 0
