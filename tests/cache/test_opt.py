"""Tests for the off-line optimal policy (Belady MIN on future reads)."""

from __future__ import annotations

import random

import pytest

from repro.cache.arc import ARCPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.opt import OPTPolicy
from repro.simulation.simulator import CacheSimulator

from tests.conftest import rd, wr


class TestOPT:
    def test_access_before_prepare_raises(self):
        opt = OPTPolicy(2)
        with pytest.raises(RuntimeError):
            opt.access(rd(1), 0)

    def test_simple_belady_decision(self):
        # Pages: 1 2 3 1 2 3 with capacity 2.  OPT keeps the pages that are
        # read soonest; LRU thrashes on this pattern.
        requests = [rd(p) for p in (1, 2, 3, 1, 2, 3)]
        opt_result = CacheSimulator(OPTPolicy(2)).run(requests)
        lru_result = CacheSimulator(LRUPolicy(2)).run(requests)
        assert opt_result.stats.read_hits > lru_result.stats.read_hits

    def test_never_read_again_pages_are_bypassed(self):
        requests = [rd(1), rd(2), rd(1), rd(2), rd(99)]   # 99 never read again
        opt = OPTPolicy(2)
        result = CacheSimulator(opt).run(requests)
        assert not opt.contains(99)
        assert result.stats.bypasses >= 1

    def test_write_only_pages_are_worthless(self):
        requests = [wr(5), wr(5), rd(1), rd(1)]
        opt = OPTPolicy(1)
        result = CacheSimulator(opt).run(requests)
        assert not opt.contains(5)
        assert result.stats.read_hits == 1

    def test_opt_dominates_online_policies_on_random_workloads(self):
        """The defining property: OPT's read hit ratio upper-bounds every online policy."""
        rng = random.Random(123)
        for trial in range(3):
            requests = []
            for i in range(3000):
                if rng.random() < 0.7:
                    requests.append(rd(rng.randrange(50)))
                else:
                    requests.append(rd(50 + rng.randrange(500)))
            capacity = 40
            opt = CacheSimulator(OPTPolicy(capacity)).run(requests).read_hit_ratio
            lru = CacheSimulator(LRUPolicy(capacity)).run(requests).read_hit_ratio
            arc = CacheSimulator(ARCPolicy(capacity)).run(requests).read_hit_ratio
            assert opt >= lru - 1e-9
            assert opt >= arc - 1e-9

    def test_capacity_never_exceeded(self):
        rng = random.Random(77)
        requests = [rd(rng.randrange(100)) for _ in range(2000)]
        opt = OPTPolicy(16)
        opt.prepare(requests)
        for seq, request in enumerate(requests):
            opt.access(request, seq)
            assert len(opt) <= 16

    def test_start_seq_does_not_change_decisions(self):
        """Regression: OPT indexed future reads from 0 regardless of start_seq.

        The simulator numbers requests from ``start_seq``, so before the fix
        every ``_next_read`` lookup at ``start_seq=1000`` missed and OPT
        bypassed the entire stream.
        """
        rng = random.Random(99)
        requests = []
        for _ in range(3000):
            if rng.random() < 0.7:
                requests.append(rd(rng.randrange(50)))
            else:
                requests.append(rd(50 + rng.randrange(500)))
        at_zero = CacheSimulator(OPTPolicy(40)).run(requests, start_seq=0)
        at_1000 = CacheSimulator(OPTPolicy(40)).run(requests, start_seq=1000)
        assert at_zero.stats.read_hits > 0
        assert at_1000.stats == at_zero.stats

    def test_shared_read_index_adoption(self):
        requests = [rd(p) for p in (1, 2, 3, 1, 2, 3)]
        index = OPTPolicy.build_read_index(requests)
        direct = OPTPolicy(2)
        direct.prepare(requests)
        adopted = OPTPolicy(2)
        adopted.adopt_read_index(index)
        for seq, request in enumerate(requests):
            # Full AccessOutcome equality: same hit *and* the same
            # admission/bypass/eviction event, request for request.
            assert direct.access(request, seq) == adopted.access(request, seq)

    def test_reset_keeps_future_index(self):
        requests = [rd(1), rd(2), rd(1)]
        opt = OPTPolicy(2)
        opt.prepare(requests)
        for seq, request in enumerate(requests):
            opt.access(request, seq)
        opt.reset()
        assert len(opt) == 0
        # The same trace can be replayed without calling prepare() again.
        outcomes = [opt.access(request, seq) for seq, request in enumerate(requests)]
        assert sum(outcome.hit for outcome in outcomes) == 1
