"""Tests for the policy registry."""

from __future__ import annotations

import pytest

from repro.cache.base import CachePolicy
from repro.cache.lru import LRUPolicy
from repro.cache.registry import (
    PAPER_POLICIES,
    available_policies,
    create_policy,
    register_policy,
)


class TestRegistry:
    def test_paper_policies_all_registered(self):
        names = set(available_policies())
        assert set(PAPER_POLICIES) <= names

    def test_create_policy_builds_correct_type(self):
        policy = create_policy("LRU", capacity=10)
        assert isinstance(policy, LRUPolicy)
        assert policy.capacity == 10

    def test_lookup_is_case_insensitive(self):
        assert isinstance(create_policy("lru", capacity=4), LRUPolicy)
        assert isinstance(create_policy("Clic", capacity=4), CachePolicy)

    def test_unknown_policy_raises_keyerror(self):
        with pytest.raises(KeyError):
            create_policy("NOPE", capacity=4)

    def test_kwargs_forwarded_to_factory(self):
        policy = create_policy("TQ", capacity=4, cache_recovery_writes=True)
        assert policy._cache_recovery_writes is True

    def test_register_custom_policy(self):
        class AlwaysEmpty(LRUPolicy):
            name = "EMPTY-TEST"

        register_policy("EMPTY-TEST", AlwaysEmpty, overwrite=True)
        assert isinstance(create_policy("EMPTY-TEST", capacity=2), AlwaysEmpty)

    def test_duplicate_registration_rejected_without_overwrite(self):
        with pytest.raises(ValueError):
            register_policy("LRU", LRUPolicy)

    def test_clic_created_with_default_config(self):
        policy = create_policy("CLIC", capacity=100)
        assert policy.name == "CLIC"
        assert policy.capacity == 100
