"""Tests for the TQ write-hint-aware policy."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.tq import TQPolicy
from repro.simulation.simulator import CacheSimulator
from repro.simulation.request import IORequest, RequestKind

from tests.conftest import hint, rd, wr


REPLACEMENT = hint(request_type="replacement_write")
SYNCHRONOUS = hint(request_type="synchronous_write")
RECOVERY = hint(request_type="recovery_write")
READ = hint(request_type="read")


class TestClassification:
    def test_replacement_write_lands_in_high_queue(self):
        tq = TQPolicy(4)
        tq.access(wr(1, REPLACEMENT), 0)
        assert 1 in tq._high

    def test_synchronous_write_lands_in_high_queue(self):
        tq = TQPolicy(4)
        tq.access(wr(1, SYNCHRONOUS), 0)
        assert 1 in tq._high

    def test_recovery_write_is_bypassed(self):
        tq = TQPolicy(4)
        outcome = tq.access(wr(1, RECOVERY), 0)
        assert not tq.contains(1)
        assert outcome.bypassed and not outcome.admitted

    def test_recovery_write_cached_when_configured(self):
        tq = TQPolicy(4, cache_recovery_writes=True)
        tq.access(wr(1, RECOVERY), 0)
        assert tq.contains(1)
        assert 1 in tq._low

    def test_read_lands_in_low_queue(self):
        tq = TQPolicy(4)
        tq.access(rd(1, READ), 0)
        assert 1 in tq._low

    def test_write_hint_on_read_request_is_ignored(self):
        # The write-hint classification only applies to writes.
        tq = TQPolicy(4)
        tq.access(rd(1, REPLACEMENT), 0)
        assert 1 in tq._low


class TestEvictionOrder:
    def test_low_queue_evicted_before_high_queue(self):
        tq = TQPolicy(2)
        tq.access(wr(1, REPLACEMENT), 0)   # high
        tq.access(rd(2, READ), 1)          # low
        tq.access(rd(3, READ), 2)          # evicts page 2 (low LRU), keeps page 1
        assert tq.contains(1)
        assert not tq.contains(2)
        assert tq.contains(3)

    def test_high_queue_evicted_when_low_is_empty(self):
        tq = TQPolicy(2)
        tq.access(wr(1, REPLACEMENT), 0)
        tq.access(wr(2, REPLACEMENT), 1)
        tq.access(wr(3, REPLACEMENT), 2)   # evicts page 1 (oldest in high)
        assert not tq.contains(1)
        assert tq.contains(2) and tq.contains(3)

    def test_requeue_follows_most_recent_request_class(self):
        tq = TQPolicy(4)
        tq.access(wr(1, REPLACEMENT), 0)
        assert 1 in tq._high
        tq.access(rd(1, READ), 1)
        assert 1 in tq._low and 1 not in tq._high

    def test_capacity_never_exceeded(self):
        tq = TQPolicy(3)
        for seq in range(60):
            page = seq % 9
            req = wr(page, REPLACEMENT) if seq % 2 else rd(page, READ)
            tq.access(req, seq)
            assert len(tq) <= 3


class TestEndToEnd:
    def test_tq_beats_lru_when_write_hints_are_informative(self):
        """Replacement-written pages are re-read soon; recovery writes are not.

        This is the scenario TQ's hard-coded heuristic targets, so its read hit
        ratio must beat LRU's.
        """
        import random

        rng = random.Random(42)
        requests: list[IORequest] = []
        hot_writes = list(range(200))          # evicted from tier 1, re-read soon
        recovery_pages = list(range(1000, 1400))
        for i in range(30_000):
            roll = rng.random()
            if roll < 0.30:
                page = rng.choice(hot_writes)
                requests.append(wr(page, REPLACEMENT))
            elif roll < 0.60:
                # Read back a recently replacement-written page.
                page = rng.choice(hot_writes)
                requests.append(rd(page, READ))
            elif roll < 0.85:
                requests.append(wr(rng.choice(recovery_pages), RECOVERY))
            else:
                requests.append(rd(2000 + rng.randrange(3000), READ))
        capacity = 150
        tq = CacheSimulator(TQPolicy(capacity)).run(requests).read_hit_ratio
        lru = CacheSimulator(LRUPolicy(capacity)).run(requests).read_hit_ratio
        assert tq > lru

    def test_reset(self):
        tq = TQPolicy(4)
        tq.access(wr(1, REPLACEMENT), 0)
        tq.reset()
        assert len(tq) == 0
        assert not tq.contains(1)
