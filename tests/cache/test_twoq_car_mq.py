"""Tests for the extended hint-oblivious policies: 2Q, CAR and MQ."""

from __future__ import annotations

import random

import pytest

from repro.cache.car import CARPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.mq import MQPolicy
from repro.cache.twoq import TwoQPolicy
from repro.simulation.simulator import CacheSimulator

from tests.conftest import rd


class TestTwoQ:
    def test_hit_and_miss(self):
        twoq = TwoQPolicy(8)
        assert not twoq.access(rd(1), 0).hit
        assert twoq.access(rd(1), 1).hit

    def test_capacity_never_exceeded(self):
        twoq = TwoQPolicy(10)
        rng = random.Random(1)
        for seq in range(3000):
            twoq.access(rd(rng.randrange(100)), seq)
            assert len(twoq) <= 10

    def test_ghost_rereference_promotes_to_main_queue(self):
        twoq = TwoQPolicy(4, kin_fraction=0.25, kout_fraction=2.0)
        # Fill A1in past its limit so page 1 falls into the A1out ghost queue.
        for seq, page in enumerate([1, 2, 3, 4, 5]):
            twoq.access(rd(page), seq)
        assert 1 in twoq._a1out
        twoq.access(rd(1), 10)
        assert 1 in twoq._am

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            TwoQPolicy(10, kin_fraction=0.0)
        with pytest.raises(ValueError):
            TwoQPolicy(10, kout_fraction=0.0)

    def test_scan_does_not_flush_main_queue(self):
        twoq = TwoQPolicy(20)
        # Promote page 1 into Am: let it fall out of A1in into the A1out ghost
        # queue, then re-reference it (that is 2Q's promotion rule).
        twoq.access(rd(1), 0)
        for seq in range(1, 26):
            twoq.access(rd(1000 + seq), seq)
        assert 1 in twoq._a1out
        twoq.access(rd(1), 26)
        assert 1 in twoq._am
        # A long one-shot scan must not push the hot page out of Am.
        for seq in range(27, 2027):
            twoq.access(rd(5000 + seq), seq)
        assert twoq.contains(1)


class TestCAR:
    def test_hit_and_miss(self):
        car = CARPolicy(4)
        assert not car.access(rd(1), 0).hit
        assert car.access(rd(1), 1).hit

    def test_capacity_never_exceeded(self):
        car = CARPolicy(8)
        rng = random.Random(2)
        for seq in range(3000):
            car.access(rd(rng.randrange(80)), seq)
            assert len(car) <= 8

    def test_ghost_hit_moves_page_to_frequency_clock(self):
        car = CARPolicy(2)
        car.access(rd(1), 0)
        car.access(rd(2), 1)
        car.access(rd(3), 2)
        car.access(rd(4), 3)
        # At least one of the early pages is now a ghost; touching it again
        # must bring it back into the cache via T2.
        ghost = next(iter(car._b1)) if car._b1 else next(iter(car._b2))
        car.access(rd(ghost), 4)
        assert car.contains(ghost)
        assert ghost in car._in_t2

    def test_reasonable_hit_ratio_on_skewed_workload(self):
        rng = random.Random(9)
        requests = [rd(rng.randrange(30) if rng.random() < 0.8 else 30 + rng.randrange(1000)) for _ in range(20000)]
        car_result = CacheSimulator(CARPolicy(40)).run(requests)
        assert car_result.read_hit_ratio > 0.4

    def test_reset(self):
        car = CARPolicy(4)
        for seq in range(20):
            car.access(rd(seq % 7), seq)
        car.reset()
        assert len(car) == 0


class TestMQ:
    def test_hit_and_miss(self):
        mq = MQPolicy(4)
        assert not mq.access(rd(1), 0).hit
        assert mq.access(rd(1), 1).hit

    def test_capacity_never_exceeded(self):
        mq = MQPolicy(8)
        rng = random.Random(4)
        for seq in range(3000):
            mq.access(rd(rng.randrange(64)), seq)
            assert len(mq) <= 8

    def test_frequent_pages_live_in_higher_queues(self):
        mq = MQPolicy(8, num_queues=4)
        for seq in range(8):
            mq.access(rd(1), seq)
        entry = mq._where[1]
        assert entry.level >= 2          # freq 8 -> level min(log2(8), 3) = 3

    def test_ghost_queue_preserves_frequency_across_eviction(self):
        mq = MQPolicy(2, num_queues=4, lifetime=1000)
        for seq in range(6):
            mq.access(rd(1), seq)        # page 1 becomes frequent
        mq.access(rd(2), 6)
        mq.access(rd(3), 7)
        mq.access(rd(4), 8)              # page 1 may be evicted by now
        if not mq.contains(1):
            mq.access(rd(1), 9)
            assert mq._where[1].freq > 1  # remembered frequency from the ghost queue
        else:
            assert mq._where[1].freq >= 6

    def test_frequency_matters_more_than_recency(self):
        """MQ keeps a frequently used page over a merely recent one."""
        mq = MQPolicy(2, num_queues=4, lifetime=10_000)
        for seq in range(10):
            mq.access(rd(1), seq)        # hot page
        mq.access(rd(2), 10)
        mq.access(rd(3), 11)             # must evict page 2, not hot page 1
        assert mq.contains(1)

    def test_invalid_num_queues_rejected(self):
        with pytest.raises(ValueError):
            MQPolicy(4, num_queues=0)

    def test_reset(self):
        mq = MQPolicy(4)
        for seq in range(20):
            mq.access(rd(seq % 9), seq)
        mq.reset()
        assert len(mq) == 0
