"""Shared test fixtures and helpers for the CLIC reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.hints import HintSet, make_hint_set
from repro.simulation.request import IORequest, RequestKind


def hint(client: str = "db2", **values) -> HintSet:
    """Shorthand for building a hint set in tests."""
    return make_hint_set(client, **values)


def rd(page: int, hints: HintSet | None = None) -> IORequest:
    """Shorthand read request."""
    from repro.core.hints import EMPTY_HINT_SET

    return IORequest(page=page, kind=RequestKind.READ, hints=hints or EMPTY_HINT_SET)


def wr(page: int, hints: HintSet | None = None) -> IORequest:
    """Shorthand write request."""
    from repro.core.hints import EMPTY_HINT_SET

    return IORequest(page=page, kind=RequestKind.WRITE, hints=hints or EMPTY_HINT_SET)


def run_policy(policy, requests):
    """Drive *policy* with *requests* via the simulator and return the result."""
    from repro.simulation.simulator import CacheSimulator

    return CacheSimulator(policy).run(requests)


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the on-disk trace cache at a session-scoped temp directory.

    Keeps the suite from writing into the user's real cache while still
    letting tests share generated traces within one session.
    """
    import os

    from repro.trace.cache import CACHE_ENV_VAR, set_default_trace_cache

    root = tmp_path_factory.mktemp("trace-cache")
    previous = os.environ.get(CACHE_ENV_VAR)
    os.environ[CACHE_ENV_VAR] = str(root)
    set_default_trace_cache(None)  # re-resolve from the environment
    yield
    if previous is None:
        os.environ.pop(CACHE_ENV_VAR, None)
    else:
        os.environ[CACHE_ENV_VAR] = previous
    set_default_trace_cache(None)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that need randomness."""
    return random.Random(0xC11C)


@pytest.fixture
def skewed_trace(rng) -> list[IORequest]:
    """A small two-temperature read trace: 100 hot pages and 5000 cold pages.

    Half of the requests target the hot set (tagged with a 'hot' hint set),
    half target the cold set (tagged 'cold').  A policy that learns to keep
    the hot pages should approach a 50% read hit ratio with a cache of a few
    hundred pages.
    """
    hot = hint(object_id="hot", request_type="read")
    cold = hint(object_id="cold", request_type="read")
    requests = []
    for _ in range(20_000):
        if rng.random() < 0.5:
            requests.append(rd(rng.randrange(100), hot))
        else:
            requests.append(rd(100 + rng.randrange(5000), cold))
    return requests
