"""Tests for the CLIC replacement policy (paper Figure 4 and Sections 3-5)."""

from __future__ import annotations

import pytest

from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.core.hints import make_hint_set
from repro.simulation.simulator import CacheSimulator

from tests.conftest import hint, rd, wr


def small_config(**overrides) -> CLICConfig:
    defaults = dict(window_size=10, decay=1.0, outqueue_factor=2.0, charge_metadata=False)
    defaults.update(overrides)
    return CLICConfig(**defaults)


HOT = hint(object_id="hot")
COLD = hint(object_id="cold")


def teach_priorities(policy: CLICPolicy, hot_pages=range(100, 105), filler_pages=range(200, 300)):
    """Run one training window so HOT gets a high priority and COLD gets zero.

    HOT pages are read twice in quick succession (read re-references); COLD
    pages are read once each (no re-reference).
    """
    seq = 0
    requests = []
    for page in hot_pages:
        requests.append(rd(page, HOT))
        requests.append(rd(page, HOT))
    for page in filler_pages:
        requests.append(rd(page, COLD))
    for request in requests:
        policy.access(request, seq)
        seq += 1
    # Close the training window explicitly so priorities take effect.
    policy.priority_manager.force_window_boundary()
    policy._rebuild_heap()
    return seq


class TestFigure4Policy:
    def test_admits_while_cache_not_full(self):
        policy = CLICPolicy(capacity=4, config=small_config())
        for seq, page in enumerate([1, 2, 3]):
            outcome = policy.access(rd(page, COLD), seq)
            assert not outcome.hit and outcome.admitted
        assert len(policy) == 3
        assert all(policy.contains(p) for p in (1, 2, 3))

    def test_hit_reports_true_and_updates_metadata(self):
        policy = CLICPolicy(capacity=4, config=small_config())
        policy.access(rd(1, COLD), 0)
        assert policy.access(rd(1, HOT), 1).hit
        # Most recent request determines the page's hint set.
        assert policy._cached[1].hint_key == HOT.key()
        assert policy._cached[1].seq == 1

    def test_equal_priority_request_is_not_cached_when_full(self):
        # With all priorities zero (no window completed), Pr(H) > m never
        # holds, so a full cache never evicts (Figure 4 line 12 uses strict >).
        policy = CLICPolicy(capacity=2, config=small_config(window_size=1000))
        policy.access(rd(1, COLD), 0)
        policy.access(rd(2, COLD), 1)
        outcome = policy.access(rd(3, COLD), 2)
        assert policy.contains(1) and policy.contains(2)
        assert not policy.contains(3)
        assert outcome.bypassed and not outcome.admitted

    def test_uncached_page_is_remembered_in_outqueue(self):
        policy = CLICPolicy(capacity=2, config=small_config(window_size=1000))
        policy.access(rd(1, COLD), 0)
        policy.access(rd(2, COLD), 1)
        policy.access(rd(3, COLD), 2)
        entry = policy.outqueue.get(3)
        assert entry is not None
        assert entry.seq == 2
        assert entry.hint_key == COLD.key()

    def test_higher_priority_request_evicts_lowest_priority_oldest_page(self):
        # teach_priorities touches exactly 105 distinct pages, filling the cache.
        policy = CLICPolicy(capacity=105, config=small_config(window_size=1_000_000))
        seq = teach_priorities(policy)
        assert policy.hint_priority(HOT) > policy.hint_priority(COLD) == 0.0
        # Cache is full of HOT+COLD pages. A new HOT request must evict the
        # oldest COLD page (the lowest-priority, minimum-sequence page).
        oldest_cold = next(iter(policy._lists[COLD.key()]))
        assert not policy.contains(999)
        policy.access(rd(999, HOT), seq)
        assert policy.contains(999)
        assert not policy.contains(oldest_cold)

    def test_low_priority_request_does_not_evict_higher_priority_pages(self):
        policy = CLICPolicy(capacity=10, config=small_config(window_size=1_000_000))
        # Fill the cache with HOT pages and teach a high priority for HOT.
        seq = 0
        for _ in range(2):
            for page in range(10):
                policy.access(rd(page, HOT), seq)
                seq += 1
        policy.priority_manager.force_window_boundary()
        policy._rebuild_heap()
        assert policy.hint_priority(HOT) > 0.0
        policy.access(rd(500, COLD), seq)
        assert not policy.contains(500)
        assert len(policy) == 10

    def test_evicted_page_lands_in_outqueue(self):
        policy = CLICPolicy(capacity=105, config=small_config(window_size=1_000_000))
        seq = teach_priorities(policy)
        oldest_cold = next(iter(policy._lists[COLD.key()]))
        policy.access(rd(999, HOT), seq)
        entry = policy.outqueue.get(oldest_cold)
        assert entry is not None
        assert entry.hint_key == COLD.key()

    def test_rerequest_moves_page_between_hint_set_lists(self):
        policy = CLICPolicy(capacity=4, config=small_config())
        policy.access(rd(1, COLD), 0)
        policy.access(rd(1, HOT), 1)
        assert 1 in policy._lists[HOT.key()]
        assert 1 not in policy._lists[COLD.key()]

    def test_capacity_invariant_never_violated(self):
        policy = CLICPolicy(capacity=8, config=small_config(window_size=5))
        seq = 0
        for round_ in range(50):
            for page in range(16):
                policy.access(rd(page, HOT if page % 2 else COLD), seq)
                seq += 1
                assert len(policy) <= policy.capacity

    def test_effective_capacity_charged_for_metadata(self):
        charged = CLICPolicy(capacity=1000, config=CLICConfig(charge_metadata=True))
        uncharged = CLICPolicy(capacity=1000, config=CLICConfig(charge_metadata=False))
        assert charged.effective_capacity < 1000
        assert uncharged.effective_capacity == 1000
        # The paper reports roughly 1% overhead for Noutq = 5C.
        assert charged.effective_capacity >= 980

    def test_outqueue_capacity_follows_config_factor(self):
        policy = CLICPolicy(capacity=100, config=small_config(outqueue_factor=5.0))
        assert policy.outqueue.capacity == 500


class TestHintAnalysisIntegration:
    def test_read_rereference_detected_through_cache(self):
        policy = CLICPolicy(capacity=4, config=small_config(window_size=100))
        policy.access(rd(1, HOT), 0)
        policy.access(rd(1, HOT), 5)
        stats = policy.priority_manager.tracker.snapshot()[HOT.key()]
        assert stats.read_rereferences == 1
        assert stats.mean_distance == pytest.approx(5.0)

    def test_read_rereference_detected_through_outqueue(self):
        policy = CLICPolicy(capacity=1, config=small_config(window_size=100))
        policy.access(rd(1, COLD), 0)     # cached
        policy.access(rd(2, HOT), 1)      # not cached -> outqueue
        policy.access(rd(2, HOT), 3)      # re-read while only in the outqueue
        stats = policy.priority_manager.tracker.snapshot()[HOT.key()]
        assert stats.read_rereferences == 1
        assert stats.mean_distance == pytest.approx(2.0)

    def test_write_rereference_is_not_credited(self):
        policy = CLICPolicy(capacity=4, config=small_config(window_size=100))
        policy.access(rd(1, HOT), 0)
        policy.access(wr(1, HOT), 5)      # write re-reference: no benefit
        stats = policy.priority_manager.tracker.snapshot()[HOT.key()]
        assert stats.read_rereferences == 0

    def test_rereference_credited_to_previous_hint_set(self):
        # The credit goes to the hint set attached to the *original* request.
        policy = CLICPolicy(capacity=4, config=small_config(window_size=100))
        policy.access(rd(1, COLD), 0)
        policy.access(rd(1, HOT), 4)
        snapshot = policy.priority_manager.tracker.snapshot()
        assert snapshot[COLD.key()].read_rereferences == 1
        assert snapshot.get(HOT.key()) is None or snapshot[HOT.key()].read_rereferences == 0

    def test_priorities_learned_favor_rereferenced_hint_set(self):
        policy = CLICPolicy(capacity=200, config=small_config(window_size=1_000_000))
        teach_priorities(policy)
        assert policy.hint_priority(HOT) > policy.hint_priority(COLD)

    def test_window_rollover_rebuilds_priorities(self):
        policy = CLICPolicy(capacity=16, config=small_config(window_size=6))
        seq = 0
        for _ in range(3):
            for page in (1, 2, 3):
                policy.access(rd(page, HOT), seq)
                seq += 1
        assert policy.priority_manager.windows_completed >= 1
        assert policy.hint_priority(HOT) > 0.0

    def test_top_k_mode_limits_tracked_hint_sets(self):
        config = small_config(window_size=1_000, top_k=2)
        policy = CLICPolicy(capacity=8, config=config)
        for seq, obj in enumerate(["a", "b", "c", "d", "e", "f"]):
            policy.access(rd(seq, hint(object_id=obj)), seq)
        assert len(policy.priority_manager.tracker) <= 2


class TestEndToEndBehaviour:
    def test_clic_beats_lru_on_hint_separable_workload(self, skewed_trace):
        from repro.cache.lru import LRUPolicy

        clic = CLICPolicy(capacity=200, config=CLICConfig(window_size=2000, charge_metadata=False))
        lru = LRUPolicy(capacity=200)
        clic_result = CacheSimulator(clic).run(skewed_trace)
        lru_result = CacheSimulator(lru).run(skewed_trace)
        assert clic_result.read_hit_ratio > lru_result.read_hit_ratio

    def test_reset_restores_pristine_state(self):
        policy = CLICPolicy(capacity=4, config=small_config())
        for seq in range(20):
            policy.access(rd(seq % 6, HOT), seq)
        policy.reset()
        assert len(policy) == 0
        assert policy.current_priorities() == {}
        assert len(policy.outqueue) == 0

    def test_rejects_invalid_capacity(self):
        with pytest.raises(ValueError):
            CLICPolicy(capacity=0)


class TestVictimSelectionProperty:
    """The lazy-heap ``_peek_victim`` must agree with a naive reference scan.

    The heap over hint-set lists is validated lazily (stale priorities and
    head sequence numbers are popped and re-pushed on demand), which is only
    correct if, at *every* point of a replay, its top matches the
    straightforward O(n) rule: minimum priority over all cached pages,
    oldest (smallest seq) page on ties.  The generated streams cross window
    boundaries (window_size=7, priorities re-estimated and the heap rebuilt
    many times per run) and re-request cached pages under different hint
    sets, moving pages between hint-set lists.
    """

    @staticmethod
    def naive_victim(policy: CLICPolicy):
        """O(n) reference: (min priority, then oldest seq) over cached pages."""
        best = None
        for page, meta in policy._cached.items():
            priority = policy.priority_manager.priority(meta.hint_key)
            candidate = (priority, meta.seq, meta.hint_key)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        return best

    def test_peek_victim_matches_naive_scan(self):
        from hypothesis import HealthCheck, given, settings

        from tests.strategies import page_hint_event_streams

        hints = [hint(object_id=name) for name in ("a", "b", "c")]

        @settings(
            max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
        )
        @given(stream=page_hint_event_streams(max_page=11, hint_count=3))
        def run(stream):
            policy = CLICPolicy(capacity=4, config=small_config(window_size=7))
            for seq, (page, hint_index, is_read) in enumerate(stream):
                request = (rd if is_read else wr)(page, hints[hint_index])
                policy.access(request, seq)
                victim = policy._peek_victim()
                expected = self.naive_victim(policy)
                if expected is None:
                    assert victim is None
                else:
                    assert victim is not None
                    # (priority, seq) identify the victim page uniquely:
                    # sequence numbers are distinct across cached pages.
                    assert (victim[0], victim[1]) == (expected[0], expected[1])
                    assert victim[2] == expected[2]

        run()
