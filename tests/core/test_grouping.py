"""Tests for the hint-set grouping extension (the paper's Section 8 future work)."""

from __future__ import annotations

import pytest

from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.core.grouping import (
    grouping_score,
    project_hint_key,
    project_hint_set,
    select_informative_hint_types,
)
from repro.core.statistics import HintSetStats
from repro.simulation.simulator import CacheSimulator
from repro.trace.noise import inject_noise_hints

from tests.conftest import hint, rd


class TestProjection:
    def test_project_hint_set_keeps_requested_names(self):
        hs = hint("db2", a=1, b=2, c=3)
        assert project_hint_set(hs, ["c", "a"]).as_dict() == {"c": 3, "a": 1}

    def test_project_hint_set_skips_missing_names(self):
        hs = hint("db2", a=1)
        assert project_hint_set(hs, ["a", "zzz"]).as_dict() == {"a": 1}

    def test_project_hint_key_identity_when_none(self):
        hs = hint("db2", a=1, b=2)
        assert project_hint_key(hs, None) == hs.key()

    def test_projection_merges_hint_sets_that_agree_on_kept_types(self):
        a = hint("db2", obj="stock", noise=1)
        b = hint("db2", obj="stock", noise=2)
        assert project_hint_key(a, ["obj"]) == project_hint_key(b, ["obj"])


def _stats_fixture():
    """Hint sets over (obj, noise): obj fully determines the priority, noise is random."""
    per_hint_set = {}
    names_by_key = {}
    for obj, nr in (("stock", 40), ("orderline", 0)):
        for noise in range(4):
            key = ("db2", (obj, noise))
            per_hint_set[key] = HintSetStats(
                requests=100, read_rereferences=nr, distance_total=float(nr * 5)
            )
            names_by_key[key] = ("obj", "noise")
    return per_hint_set, names_by_key


class TestSelection:
    def test_informative_type_selected_before_noise(self):
        per_hint_set, names_by_key = _stats_fixture()
        chosen = select_informative_hint_types(per_hint_set, names_by_key, max_types=1)
        assert chosen == ("obj",)

    def test_noise_type_not_added_when_it_adds_nothing(self):
        per_hint_set, names_by_key = _stats_fixture()
        chosen = select_informative_hint_types(per_hint_set, names_by_key, max_types=2)
        assert "obj" in chosen
        assert "noise" not in chosen

    def test_grouping_score_higher_for_informative_projection(self):
        per_hint_set, names_by_key = _stats_fixture()
        assert grouping_score(per_hint_set, names_by_key, ["obj"]) > grouping_score(
            per_hint_set, names_by_key, ["noise"]
        )

    def test_invalid_max_types(self):
        with pytest.raises(ValueError):
            select_informative_hint_types({}, {}, max_types=0)


class TestCLICWithGrouping:
    def _noisy_trace(self, rng):
        hot = hint("db2", object_id="hot")
        cold = hint("db2", object_id="cold")
        base = []
        for _ in range(12_000):
            if rng.random() < 0.5:
                base.append(rd(rng.randrange(80), hot))
            else:
                base.append(rd(80 + rng.randrange(4_000), cold))
        # Three noise hint types over a domain of 10: up to 1000x dilution.
        return inject_noise_hints(base, num_types=3, domain_size=10, seed=3)

    def test_projection_recovers_hit_ratio_under_noise(self, rng):
        requests = self._noisy_trace(rng)
        # Tight hint-tracking budget, as in the paper's Figure 10 setting.
        diluted = CLICPolicy(
            160, CLICConfig(window_size=2_000, top_k=20, charge_metadata=False)
        )
        grouped = CLICPolicy(
            160,
            CLICConfig(
                window_size=2_000,
                top_k=20,
                charge_metadata=False,
                hint_projection=("object_id",),
            ),
        )
        diluted_ratio = CacheSimulator(diluted).run(requests).read_hit_ratio
        grouped_ratio = CacheSimulator(grouped).run(requests).read_hit_ratio
        assert grouped_ratio >= diluted_ratio
        assert grouped_ratio > 0.3

    def test_config_validates_projection(self):
        with pytest.raises(ValueError):
            CLICConfig(hint_projection=())
