"""Tests for the generic hint framework (paper Section 2)."""

from __future__ import annotations

import pytest

from repro.core.hints import (
    EMPTY_HINT_SET,
    HintSchema,
    HintSet,
    HintType,
    make_hint_set,
)


def db2_like_schema() -> HintSchema:
    return HintSchema(
        client_id="db2-1",
        hint_types=[
            HintType("pool_id", domain=(0, 1)),
            HintType("object_id", domain=tuple(range(5))),
            HintType("request_type", domain=("read", "recovery_write", "replacement_write")),
        ],
    )


class TestHintType:
    def test_cardinality_closed_domain(self):
        ht = HintType("pool_id", domain=(0, 1, 2))
        assert ht.cardinality == 3

    def test_cardinality_open_domain(self):
        ht = HintType("thread_id")
        assert ht.cardinality is None

    def test_validate_accepts_domain_value(self):
        HintType("x", domain=("a", "b")).validate("a")

    def test_validate_rejects_foreign_value(self):
        with pytest.raises(ValueError):
            HintType("x", domain=("a", "b")).validate("c")

    def test_open_domain_accepts_anything(self):
        HintType("x").validate(object())

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            HintType("")


class TestHintSchema:
    def test_names_in_declaration_order(self):
        schema = db2_like_schema()
        assert schema.names == ("pool_id", "object_id", "request_type")

    def test_duplicate_hint_type_names_rejected(self):
        with pytest.raises(ValueError):
            HintSchema("c", [HintType("a"), HintType("a")])

    def test_empty_client_id_rejected(self):
        with pytest.raises(ValueError):
            HintSchema("", [HintType("a")])

    def test_max_hint_sets_is_product_of_cardinalities(self):
        schema = db2_like_schema()
        assert schema.max_hint_sets() == 2 * 5 * 3

    def test_max_hint_sets_none_with_open_domain(self):
        schema = HintSchema("c", [HintType("a", domain=(1, 2)), HintType("b")])
        assert schema.max_hint_sets() is None

    def test_make_hint_set_from_mapping(self):
        schema = db2_like_schema()
        hs = schema.make_hint_set({"pool_id": 1, "object_id": 3, "request_type": "read"})
        assert hs.values == (1, 3, "read")
        assert hs.client_id == "db2-1"

    def test_make_hint_set_from_sequence(self):
        schema = db2_like_schema()
        hs = schema.make_hint_set([0, 2, "read"])
        assert hs.as_dict() == {"pool_id": 0, "object_id": 2, "request_type": "read"}

    def test_make_hint_set_missing_value(self):
        schema = db2_like_schema()
        with pytest.raises(ValueError):
            schema.make_hint_set({"pool_id": 1, "object_id": 3})

    def test_make_hint_set_unknown_hint_type(self):
        schema = db2_like_schema()
        with pytest.raises(ValueError):
            schema.make_hint_set(
                {"pool_id": 1, "object_id": 3, "request_type": "read", "bogus": 1}
            )

    def test_make_hint_set_wrong_arity(self):
        schema = db2_like_schema()
        with pytest.raises(ValueError):
            schema.make_hint_set([1, 2])

    def test_make_hint_set_validation(self):
        schema = db2_like_schema()
        with pytest.raises(ValueError):
            schema.make_hint_set([9, 0, "read"], validate=True)

    def test_describe_matches_figure2_shape(self):
        rows = db2_like_schema().describe()
        assert [row["hint_type"] for row in rows] == ["pool_id", "object_id", "request_type"]
        assert rows[0]["cardinality"] == 2

    def test_contains_and_getitem(self):
        schema = db2_like_schema()
        assert "pool_id" in schema
        assert schema["pool_id"].name == "pool_id"
        assert "nope" not in schema


class TestHintSet:
    def test_equality_and_hash(self):
        a = make_hint_set("c", x=1, y="t")
        b = make_hint_set("c", x=1, y="t")
        assert a == b
        assert hash(a) == hash(b)

    def test_clients_namespace_hint_sets(self):
        # Section 2: identical hint values from different clients are distinct.
        a = make_hint_set("client-a", x=1)
        b = make_hint_set("client-b", x=1)
        assert a != b
        assert a.key() != b.key()

    def test_key_is_compact_and_stable(self):
        hs = make_hint_set("c", x=1, y=2)
        assert hs.key() == ("c", (1, 2))

    def test_get_present_and_absent(self):
        hs = make_hint_set("c", x=1)
        assert hs.get("x") == 1
        assert hs.get("missing") is None
        assert hs.get("missing", default="d") == "d"

    def test_contains(self):
        hs = make_hint_set("c", x=1)
        assert "x" in hs
        assert "y" not in hs

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            HintSet(client_id="c", names=("a",), values=(1, 2))

    def test_extended_adds_hint_types(self):
        hs = make_hint_set("c", x=1)
        ext = hs.extended(["noise_0", "noise_1"], [7, 8])
        assert ext.as_dict() == {"x": 1, "noise_0": 7, "noise_1": 8}
        assert ext.client_id == "c"

    def test_extended_rejects_clashes(self):
        hs = make_hint_set("c", x=1)
        with pytest.raises(ValueError):
            hs.extended(["x"], [2])

    def test_extended_rejects_length_mismatch(self):
        hs = make_hint_set("c", x=1)
        with pytest.raises(ValueError):
            hs.extended(["a", "b"], [1])

    def test_project_keeps_requested_types(self):
        hs = make_hint_set("c", x=1, y=2, z=3)
        assert hs.project(["z", "x"]).as_dict() == {"z": 3, "x": 1}

    def test_project_missing_type_rejected(self):
        hs = make_hint_set("c", x=1)
        with pytest.raises(ValueError):
            hs.project(["y"])

    def test_empty_hint_set(self):
        assert len(EMPTY_HINT_SET) == 0
        assert EMPTY_HINT_SET.key() == ("", ())

    def test_str_mentions_client_and_values(self):
        text = str(make_hint_set("db2", pool_id=4))
        assert "db2" in text and "pool_id" in text and "4" in text
