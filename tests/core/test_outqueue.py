"""Tests for the bounded outqueue (paper Section 3.1)."""

from __future__ import annotations

import pytest

from repro.core.outqueue import OutQueue


class TestOutQueue:
    def test_put_and_get(self):
        oq = OutQueue(4)
        oq.put(1, seq=10, hint_key=("c", (1,)))
        entry = oq.get(1)
        assert entry is not None
        assert entry.seq == 10
        assert entry.hint_key == ("c", (1,))

    def test_capacity_bound_is_enforced(self):
        oq = OutQueue(3)
        for page in range(10):
            oq.put(page, seq=page, hint_key=())
        assert len(oq) == 3

    def test_least_recently_inserted_is_evicted(self):
        oq = OutQueue(2)
        assert oq.put(1, 1, ()) is None
        assert oq.put(2, 2, ()) is None
        evicted = oq.put(3, 3, ())
        assert evicted == 1
        assert 1 not in oq
        assert 2 in oq and 3 in oq

    def test_refresh_moves_page_to_most_recent(self):
        oq = OutQueue(2)
        oq.put(1, 1, ())
        oq.put(2, 2, ())
        oq.put(1, 3, ())          # refresh page 1
        evicted = oq.put(3, 4, ())
        assert evicted == 2        # page 2 is now the oldest insertion

    def test_refresh_updates_metadata(self):
        oq = OutQueue(2)
        oq.put(1, 1, ("c", ("a",)))
        oq.put(1, 9, ("c", ("b",)))
        entry = oq.get(1)
        assert entry.seq == 9
        assert entry.hint_key == ("c", ("b",))

    def test_remove(self):
        oq = OutQueue(2)
        oq.put(1, 1, ())
        removed = oq.remove(1)
        assert removed is not None and removed.seq == 1
        assert oq.remove(1) is None
        assert len(oq) == 0

    def test_zero_capacity_tracks_nothing(self):
        oq = OutQueue(0)
        assert oq.put(1, 1, ()) is None
        assert oq.get(1) is None
        assert len(oq) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            OutQueue(-1)

    def test_pages_iterates_oldest_first(self):
        oq = OutQueue(3)
        oq.put(5, 1, ())
        oq.put(6, 2, ())
        oq.put(7, 3, ())
        assert list(oq.pages()) == [5, 6, 7]

    def test_clear(self):
        oq = OutQueue(3)
        oq.put(1, 1, ())
        oq.clear()
        assert len(oq) == 0
        assert oq.get(1) is None
