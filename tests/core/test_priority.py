"""Tests for windowed priority estimation and exponential smoothing (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.core.priority import PriorityManager


KEY_A = ("db2", ("a",))
KEY_B = ("db2", ("b",))


def fill_window(pm: PriorityManager, key: tuple, rereference_every: int | None = None) -> bool:
    """Feed exactly one window of requests for *key*; return the last record_request result."""
    closed = False
    for i in range(pm.window_size):
        if rereference_every and i % rereference_every == 0:
            pm.record_read_rereference(key, distance=5)
        closed = pm.record_request(key)
    return closed


class TestPriorityManager:
    def test_priorities_zero_before_first_window(self):
        pm = PriorityManager(window_size=10)
        pm.record_request(KEY_A)
        assert pm.priority(KEY_A) == 0.0

    def test_window_boundary_reported_by_record_request(self):
        pm = PriorityManager(window_size=3)
        assert pm.record_request(KEY_A) is False
        assert pm.record_request(KEY_A) is False
        assert pm.record_request(KEY_A) is True
        assert pm.windows_completed == 1
        assert pm.requests_in_window == 0

    def test_priority_computed_from_window_statistics(self):
        pm = PriorityManager(window_size=4)
        pm.record_read_rereference(KEY_A, distance=2)
        pm.record_read_rereference(KEY_A, distance=2)
        for _ in range(4):
            pm.record_request(KEY_A)
        # fhit = 2/4 = 0.5, D = 2 -> Pr = 0.25
        assert pm.priority(KEY_A) == pytest.approx(0.25)

    def test_statistics_cleared_at_window_boundary(self):
        pm = PriorityManager(window_size=2)
        pm.record_read_rereference(KEY_A, distance=2)
        pm.record_request(KEY_A)
        pm.record_request(KEY_A)
        assert len(pm.tracker) == 0

    def test_r_equal_one_uses_only_latest_window(self):
        pm = PriorityManager(window_size=2, decay=1.0)
        # Window 1: KEY_A has re-references.
        pm.record_read_rereference(KEY_A, distance=1)
        pm.record_request(KEY_A)
        pm.record_request(KEY_A)
        first = pm.priority(KEY_A)
        assert first > 0.0
        # Window 2: KEY_A never re-referenced -> priority drops to zero.
        pm.record_request(KEY_A)
        pm.record_request(KEY_A)
        assert pm.priority(KEY_A) == 0.0

    def test_r_less_than_one_blends_windows(self):
        pm = PriorityManager(window_size=2, decay=0.5)
        pm.record_read_rereference(KEY_A, distance=1)
        pm.record_request(KEY_A)
        pm.record_request(KEY_A)
        first = pm.priority(KEY_A)
        # Second window with no re-references: Pr = 0.5*0 + 0.5*first.
        pm.record_request(KEY_A)
        pm.record_request(KEY_A)
        assert pm.priority(KEY_A) == pytest.approx(0.5 * first)

    def test_unobserved_hint_sets_decay_when_r_below_one(self):
        pm = PriorityManager(window_size=1, decay=0.25)
        pm.record_read_rereference(KEY_A, distance=1)
        pm.record_request(KEY_A)
        initial = pm.priority(KEY_A)
        # KEY_A absent from the next window entirely.
        pm.record_request(KEY_B)
        assert pm.priority(KEY_A) == pytest.approx(0.75 * initial)

    def test_unobserved_hint_sets_forgotten_when_r_is_one(self):
        pm = PriorityManager(window_size=1, decay=1.0)
        pm.record_read_rereference(KEY_A, distance=1)
        pm.record_request(KEY_A)
        assert pm.priority(KEY_A) > 0
        pm.record_request(KEY_B)
        assert pm.priority(KEY_A) == 0.0

    def test_top_k_mode_uses_space_saving(self):
        from repro.core.spacesaving import SpaceSavingTracker

        pm = PriorityManager(window_size=10, top_k=2)
        assert isinstance(pm.tracker, SpaceSavingTracker)

    def test_force_window_boundary(self):
        pm = PriorityManager(window_size=1000)
        pm.record_read_rereference(KEY_A, distance=1)
        pm.record_request(KEY_A)
        pm.force_window_boundary()
        assert pm.priority(KEY_A) > 0.0

    def test_reset(self):
        pm = PriorityManager(window_size=1)
        pm.record_read_rereference(KEY_A, distance=1)
        pm.record_request(KEY_A)
        pm.reset()
        assert pm.priority(KEY_A) == 0.0
        assert pm.windows_completed == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            PriorityManager(window_size=0)
        with pytest.raises(ValueError):
            PriorityManager(window_size=10, decay=0.0)
        with pytest.raises(ValueError):
            PriorityManager(window_size=10, decay=1.5)

    def test_higher_priority_for_quicker_rereferences_across_hint_sets(self):
        pm = PriorityManager(window_size=10)
        for i in range(5):
            pm.record_read_rereference(KEY_A, distance=2)
            pm.record_read_rereference(KEY_B, distance=50)
        for _ in range(5):
            pm.record_request(KEY_A)
            pm.record_request(KEY_B)
        assert pm.priority(KEY_A) > pm.priority(KEY_B)
