"""Tests for the Space-Saving frequent-item algorithm and its CLIC extension."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spacesaving import SpaceSaving, SpaceSavingTracker


class TestSpaceSaving:
    def test_tracks_at_most_k_items(self):
        ss = SpaceSaving(k=3)
        for item in range(100):
            ss.offer(item)
        assert len(ss) == 3

    def test_exact_when_distinct_items_fit(self):
        ss = SpaceSaving(k=10)
        stream = ["a"] * 5 + ["b"] * 3 + ["c"] * 2
        for item in stream:
            ss.offer(item)
        tracked = ss.tracked()
        assert tracked["a"].count == 5 and tracked["a"].error == 0
        assert tracked["b"].count == 3
        assert tracked["c"].count == 2

    def test_replacement_inherits_min_count_as_error(self):
        ss = SpaceSaving(k=2)
        ss.offer("a")
        ss.offer("a")
        ss.offer("b")
        replaced, _ = ss.offer("c")     # replaces "b" (the min, count 1)
        assert replaced == "b"
        entry = ss.get("c")
        assert entry.count == 2 and entry.error == 1
        assert entry.guaranteed_count == 1

    def test_count_overestimates_and_bounds_true_frequency(self):
        # Classic Space-Saving guarantee: count >= true frequency >= count - error.
        rng = random.Random(7)
        items = [rng.choices(range(50), weights=[1 / (i + 1) for i in range(50)])[0] for _ in range(5000)]
        truth = Counter(items)
        ss = SpaceSaving(k=10)
        for item in items:
            ss.offer(item)
        for item, entry in ss.tracked().items():
            assert entry.count >= truth[item]
            assert entry.guaranteed_count <= truth[item]

    def test_heavy_hitters_are_retained(self):
        # An item occurring more than N/k times must be tracked.
        rng = random.Random(3)
        stream = []
        for _ in range(2000):
            stream.append("HOT" if rng.random() < 0.4 else f"cold-{rng.randrange(1000)}")
        ss = SpaceSaving(k=20)
        for item in stream:
            ss.offer(item)
        assert "HOT" in ss
        assert ss.top(1)[0].item == "HOT"

    def test_processed_counter(self):
        ss = SpaceSaving(k=2)
        for item in "abcabc":
            ss.offer(item)
        assert ss.processed == 6

    def test_top_sorted_descending(self):
        ss = SpaceSaving(k=5)
        for item in "aaabbc":
            ss.offer(item)
        counts = [entry.count for entry in ss.top()]
        assert counts == sorted(counts, reverse=True)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            SpaceSaving(k=0)

    def test_lazy_heap_stays_bounded(self):
        """Regression: every increment pushed a stale heap entry, so the heap
        grew with the stream length (increments never trigger the lazy pops
        that replacements do); it must now stay O(k)."""
        ss = SpaceSaving(k=8)
        rng = random.Random(11)
        for _ in range(100_000):
            # Mostly increments of tracked items, with some churn mixed in.
            ss.offer(rng.randrange(8) if rng.random() < 0.9 else rng.randrange(5000))
        assert len(ss) <= 8
        assert ss.heap_size <= max(4 * ss.k, 32)

    def test_compaction_preserves_exact_behavior(self):
        """Compacting the lazy heap must not change which items are tracked,
        their counters, or which victims are replaced (including ties)."""
        rng = random.Random(23)
        stream = [
            rng.randrange(7) if rng.random() < 0.8 else rng.randrange(200)
            for _ in range(20_000)
        ]
        compacting = SpaceSaving(k=7)
        lazy = SpaceSaving(k=7)
        lazy._compact_limit = 10**9   # effectively disable compaction
        replacements = []
        for item in stream:
            replaced_a, _ = compacting.offer(item)
            replaced_b, _ = lazy.offer(item)
            replacements.append((replaced_a, replaced_b))
        assert all(a == b for a, b in replacements)
        assert compacting.tracked() == lazy.tracked()
        assert compacting.heap_size <= max(4 * 7, 32)
        assert lazy.heap_size > compacting.heap_size

    def test_clear(self):
        ss = SpaceSaving(k=2)
        ss.offer("a")
        ss.clear()
        assert len(ss) == 0 and ss.processed == 0


KEY_HOT = ("db2", ("stock",))
KEY_COLD = ("db2", ("orderline",))


class TestSpaceSavingTracker:
    def test_tracks_n_as_guaranteed_count(self):
        tracker = SpaceSavingTracker(k=4)
        for _ in range(5):
            tracker.record_request(KEY_HOT)
        snap = tracker.snapshot()
        assert snap[KEY_HOT].requests == 5

    def test_rereferences_only_counted_while_tracked(self):
        tracker = SpaceSavingTracker(k=1)
        tracker.record_request(KEY_HOT)
        # KEY_COLD is not tracked (k=1 and HOT holds the slot only after HOT's
        # arrival); a re-reference for an untracked key is dropped.
        tracker.record_read_rereference(KEY_COLD, distance=2)
        snap = tracker.snapshot()
        assert KEY_COLD not in snap or snap[KEY_COLD].read_rereferences == 0

    def test_rereference_for_tracked_key(self):
        tracker = SpaceSavingTracker(k=2)
        tracker.record_request(KEY_HOT)
        tracker.record_read_rereference(KEY_HOT, distance=4)
        snap = tracker.snapshot()
        assert snap[KEY_HOT].read_rereferences == 1
        assert snap[KEY_HOT].mean_distance == pytest.approx(4.0)

    def test_side_stats_reset_when_slot_recycled(self):
        tracker = SpaceSavingTracker(k=1)
        tracker.record_request(KEY_HOT)
        tracker.record_read_rereference(KEY_HOT, distance=2)
        # KEY_COLD arrives and replaces KEY_HOT in the single slot.
        tracker.record_request(KEY_COLD)
        # KEY_HOT returns: its side statistics must have been forgotten.
        tracker.record_request(KEY_HOT)
        snap = tracker.snapshot()
        assert snap[KEY_HOT].read_rereferences == 0

    def test_untracked_hint_sets_have_zero_priority(self):
        tracker = SpaceSavingTracker(k=1)
        tracker.record_request(KEY_HOT)
        priorities = tracker.priorities()
        assert priorities.get(KEY_COLD, 0.0) == 0.0

    def test_invalid_distance_rejected(self):
        tracker = SpaceSavingTracker(k=2)
        tracker.record_request(KEY_HOT)
        with pytest.raises(ValueError):
            tracker.record_read_rereference(KEY_HOT, distance=-1)

    def test_clear(self):
        tracker = SpaceSavingTracker(k=2)
        tracker.record_request(KEY_HOT)
        tracker.record_read_rereference(KEY_HOT, distance=1)
        tracker.clear()
        assert len(tracker) == 0
        assert tracker.snapshot() == {}

    def test_len_reports_tracked_hint_sets(self):
        tracker = SpaceSavingTracker(k=3)
        tracker.record_request(KEY_HOT)
        tracker.record_request(KEY_COLD)
        assert len(tracker) == 2


class TestBatchScalarEquivalence:
    """The batch fast path (offer_repeat / record_request_count) must be
    behaviourally identical to ordered scalar replay — including the heap's
    tie-break order, which decides *future* recycling victims.  This is the
    contract the columnar CLIC kernel's deferred segments rely on."""

    def test_offer_repeat_counts_like_sequential_offers(self):
        ss = SpaceSaving(k=4)
        ss.offer_repeat("a", 3)
        ss.offer_repeat("b", 2)
        ss.offer_repeat("a", 1)
        assert ss.processed == 6
        tracked = ss.tracked()
        assert (tracked["a"].count, tracked["a"].error) == (4, 0)
        assert (tracked["b"].count, tracked["b"].error) == (2, 0)

    def test_offer_repeat_refuses_to_recycle(self):
        ss = SpaceSaving(k=1)
        ss.offer_repeat("a", 5)
        with pytest.raises(ValueError, match="recycle"):
            ss.offer_repeat("b", 1)
        # The failed call must not have counted anything.
        assert ss.processed == 5
        assert set(ss.tracked()) == {"a"}

    def test_offer_repeat_rejects_nonpositive_repeat(self):
        ss = SpaceSaving(k=2)
        with pytest.raises(ValueError):
            ss.offer_repeat("a", 0)

    def test_would_recycle(self):
        ss = SpaceSaving(k=2)
        ss.offer("a")
        assert not ss.would_recycle(["a", "b"])       # one new slot free
        assert ss.would_recycle(["b", "c"])           # two new, one slot
        ss.offer("b")
        assert not ss.would_recycle(["a", "a", "b"])  # all tracked
        assert ss.would_recycle(["c"])                # full, one new

    @staticmethod
    def _counters(ss):
        return {item: (e.count, e.error) for item, e in ss.tracked().items()}

    @staticmethod
    def _replay_chunked(ss, stream, sizes, victims):
        """Replay *stream* through the batch protocol the CLIC kernel uses:
        grouped offer_repeat in last-occurrence order when no counter can
        recycle, ordered offer() calls otherwise."""
        offset = 0
        index = 0
        while offset < len(stream):
            chunk = stream[offset : offset + sizes[index % len(sizes)]]
            offset += len(chunk)
            index += 1
            if ss.would_recycle(chunk):
                for item in chunk:
                    replaced, _ = ss.offer(item)
                    if replaced is not None:
                        victims.append(replaced)
            else:
                counts: dict = {}
                for item in chunk:
                    counts[item] = counts.pop(item, 0) + 1
                for item, count in counts.items():
                    ss.offer_repeat(item, count)

    @given(
        stream=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=300),
        sizes=st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=10),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_replay_preserves_victim_order(self, stream, sizes, k):
        scalar = SpaceSaving(k=k)
        batched = SpaceSaving(k=k)

        scalar_victims: list = []
        for item in stream:
            replaced, _ = scalar.offer(item)
            if replaced is not None:
                scalar_victims.append(replaced)

        batched_victims: list = []
        self._replay_chunked(batched, stream, sizes, batched_victims)

        # Identical counters, identical recycling history, identical stream
        # position after the interleaved replay.
        assert self._counters(batched) == self._counters(scalar)
        assert batched_victims == scalar_victims
        assert batched.processed == scalar.processed

        # The regression proper: a recycling-heavy tail must pick the exact
        # same victims, i.e. the lazy heap's tie-break order survived the
        # batched replay (offer_repeat pushes one entry per key, sequential
        # offers push one per occurrence — pop order must not notice).
        for item in range(1000, 1000 + k + 3):
            scalar_replaced, _ = scalar.offer(item)
            batched_replaced, _ = batched.offer(item)
            assert batched_replaced == scalar_replaced
        assert self._counters(batched) == self._counters(scalar)

    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.booleans(),
            ),
            min_size=1,
            max_size=200,
        ),
        sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=6),
        k=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_tracker_batch_protocol_matches_scalar(self, events, sizes, k):
        """SpaceSavingTracker's can_defer / record_request_count /
        accepts_rereference agree with ordered record_* calls, side stats
        included."""
        keys = [("client", (i,)) for i in range(8)]
        scalar = SpaceSavingTracker(k=k)
        batched = SpaceSavingTracker(k=k)

        offset = 0
        index = 0
        while offset < len(events):
            chunk = events[offset : offset + sizes[index % len(sizes)]]
            offset += len(chunk)
            index += 1
            for key_index, is_reref in chunk:
                key = keys[key_index]
                if is_reref:
                    scalar.record_read_rereference(key, distance=3)
                else:
                    scalar.record_request(key)
            chunk_keys = {keys[key_index] for key_index, _ in chunk}
            if batched.can_defer(chunk_keys):
                counts: dict = {}
                rerefs: list = []
                for key_index, is_reref in chunk:
                    key = keys[key_index]
                    if is_reref:
                        if batched.accepts_rereference(key) or key in counts:
                            rerefs.append(key)
                    else:
                        counts[key] = counts.pop(key, 0) + 1
                for key, count in counts.items():
                    batched.record_request_count(key, count)
                for key in rerefs:
                    batched.record_read_rereference(key, distance=3)
            else:
                for key_index, is_reref in chunk:
                    key = keys[key_index]
                    if is_reref:
                        batched.record_read_rereference(key, distance=3)
                    else:
                        batched.record_request(key)

        assert batched.snapshot() == scalar.snapshot()
        assert batched.priorities() == scalar.priorities()
