"""Tests for per-hint-set statistics and the priority formula (Section 3)."""

from __future__ import annotations

import pytest

from repro.core.statistics import HintSetStats, HintTable, compute_priority


KEY_A = ("db2", ("stock", "replacement_write"))
KEY_B = ("db2", ("orderline", "read"))


class TestHintSetStats:
    def test_read_hit_rate_is_nr_over_n(self):
        stats = HintSetStats(requests=10, read_rereferences=4, distance_total=40.0)
        assert stats.read_hit_rate == pytest.approx(0.4)

    def test_read_hit_rate_zero_requests(self):
        assert HintSetStats().read_hit_rate == 0.0

    def test_mean_distance(self):
        stats = HintSetStats(requests=10, read_rereferences=4, distance_total=40.0)
        assert stats.mean_distance == pytest.approx(10.0)

    def test_mean_distance_no_rereferences(self):
        assert HintSetStats(requests=5).mean_distance == 0.0

    def test_priority_is_benefit_over_cost(self):
        # fhit = 0.4, D = 10 -> Pr = 0.04  (Equation 2)
        stats = HintSetStats(requests=10, read_rereferences=4, distance_total=40.0)
        assert stats.priority == pytest.approx(0.04)

    def test_priority_zero_without_rereferences(self):
        assert HintSetStats(requests=100).priority == 0.0

    def test_priority_prefers_quick_rereferences(self):
        # Same hit rate, shorter re-reference distance -> higher priority.
        slow = HintSetStats(requests=10, read_rereferences=5, distance_total=500.0)
        fast = HintSetStats(requests=10, read_rereferences=5, distance_total=50.0)
        assert fast.priority > slow.priority

    def test_priority_prefers_higher_hit_rate(self):
        low = HintSetStats(requests=100, read_rereferences=5, distance_total=50.0)
        high = HintSetStats(requests=10, read_rereferences=5, distance_total=50.0)
        assert high.priority > low.priority

    def test_compute_priority_matches_property(self):
        stats = HintSetStats(requests=8, read_rereferences=2, distance_total=16.0)
        assert compute_priority(stats) == stats.priority


class TestHintTable:
    def test_record_request_counts_n(self):
        table = HintTable()
        for _ in range(3):
            table.record_request(KEY_A)
        assert table.get(KEY_A).requests == 3

    def test_record_rereference_counts_nr_and_distance(self):
        table = HintTable()
        table.record_request(KEY_A)
        table.record_read_rereference(KEY_A, distance=7)
        table.record_read_rereference(KEY_A, distance=3)
        stats = table.get(KEY_A)
        assert stats.read_rereferences == 2
        assert stats.mean_distance == pytest.approx(5.0)

    def test_rereference_for_unseen_hint_set_is_tolerated(self):
        # The original request may predate the current window; the re-reference
        # is still credited.
        table = HintTable()
        table.record_read_rereference(KEY_B, distance=2)
        assert table.get(KEY_B).read_rereferences == 1

    def test_invalid_distance_rejected(self):
        table = HintTable()
        with pytest.raises(ValueError):
            table.record_read_rereference(KEY_A, distance=0)

    def test_nr_never_exceeds_n_in_normal_operation(self):
        table = HintTable()
        for i in range(20):
            table.record_request(KEY_A)
            if i % 2 == 0:
                table.record_read_rereference(KEY_A, distance=1)
        stats = table.get(KEY_A)
        assert stats.read_rereferences <= stats.requests

    def test_snapshot_is_a_copy(self):
        table = HintTable()
        table.record_request(KEY_A)
        snap = table.snapshot()
        table.record_request(KEY_B)
        assert KEY_B not in snap

    def test_clear(self):
        table = HintTable()
        table.record_request(KEY_A)
        table.clear()
        assert len(table) == 0
        assert table.get(KEY_A) is None

    def test_priorities_mapping(self):
        table = HintTable()
        table.record_request(KEY_A)
        table.record_request(KEY_B)
        table.record_read_rereference(KEY_A, distance=2)
        priorities = table.priorities()
        assert priorities[KEY_A] > 0.0
        assert priorities[KEY_B] == 0.0
