"""Shared machinery for the golden experiment snapshots.

Every experiment in :mod:`repro.experiments.registry` is pinned by a tiny-N
golden fixture: the exact rows its runner reports under
:data:`GOLDEN_SETTINGS`, stored as JSON under ``tests/experiments/golden/``.
The test suite (``test_golden.py``) recomputes the rows and compares them
byte-for-byte after a JSON round trip, so *any* engine/statistics refactor
that changes reported numbers fails loudly instead of silently shifting the
science.

When a change is *supposed* to move the numbers (a bug fix, a new column),
regenerate the fixtures and review the diff like any other code change::

    PYTHONPATH=src python tools/regen_golden.py

(regenerate a subset with ``... regen_golden.py fig6 adaptivity``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.cli import render_result
from repro.experiments.common import ExperimentSettings
from repro.experiments.registry import get_experiment

__all__ = ["GOLDEN_DIR", "GOLDEN_SETTINGS", "compute_rows", "fixture_path"]

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small enough that the whole registry replays in seconds, large enough
#: that every experiment produces non-degenerate rows.  ``target_requests``
#: and ``seed`` deliberately match the experiment end-to-end tests' TINY
#: settings, so one pytest session generates each standard trace once (the
#: DB2_C540 warm-up alone costs ~a minute) and every consumer shares it via
#: the session trace cache.  Changing anything here invalidates every
#: fixture — regenerate and review the diff.
GOLDEN_SETTINGS = ExperimentSettings(
    target_requests=4_000,
    seed=5,
    jobs=1,
    shard_counts=(1, 2),
)


def fixture_path(experiment_id: str) -> Path:
    return GOLDEN_DIR / f"{experiment_id}.json"


def compute_rows(experiment_id: str) -> list:
    """The experiment's reported rows under the golden settings.

    Uses the same rendering path as the CLI (:func:`render_result`), then
    normalizes through a JSON round trip so fixture comparison is exact
    (tuples become lists, floats keep their repr).
    """
    experiment = get_experiment(experiment_id)
    if experiment_id == "fig2":
        result = experiment.runner()
    else:
        result = experiment.runner(settings=GOLDEN_SETTINGS)
    _, rows = render_result(experiment_id, result)
    return json.loads(json.dumps(rows))
