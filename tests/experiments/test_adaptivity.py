"""Tests for the adaptivity experiment (phased workloads + recovery times)."""

from __future__ import annotations

import pytest

from repro.experiments.adaptivity import (
    ADAPTIVITY_POLICIES,
    recovery_summary,
    run_adaptivity_experiment,
)
from repro.experiments.common import ExperimentSettings
from repro.simulation.metrics import RollingMetrics, RollingWindow
from repro.workloads.phased import PhasePlan, Phase, PhaseClient, build_phase_plan

TINY = ExperimentSettings(target_requests=12_000, seed=5, phase_plan="churn")


@pytest.fixture(scope="module")
def churn_rows():
    return run_adaptivity_experiment(
        settings=TINY, rolling_window=500, cache_size=1_200
    )


class TestRecoverySummary:
    def _series(self, ratios, window=10):
        windows = tuple(
            RollingWindow(i * window, window, window, int(r * window), 0, 0, 0)
            for i, r in enumerate(ratios)
        )
        return RollingMetrics(window=window, windows=windows)

    def _plan(self, sizes):
        client = PhaseClient("DB2_C60", 1)
        phases = tuple(
            Phase(f"p{i}", size, (client,)) for i, size in enumerate(sizes)
        )
        return PhasePlan("test", phases)

    def test_regain_and_settle_counted_from_the_shift(self):
        # Pre-shift level 0.5; post dips to 0.1 and climbs back by window 3.
        rolling = self._series([0.4, 0.5, 0.1, 0.3, 0.5, 0.5])
        (row,) = recovery_summary(rolling, self._plan([20, 40]), tolerance=0.02)
        assert row["pre_shift_hit_ratio"] == 0.5
        assert row["dip_hit_ratio"] == 0.1
        assert row["regain_windows"] == 3
        assert row["settle_windows"] == 3
        assert row["shift_at"] == 20

    def test_never_regaining_reports_none(self):
        rolling = self._series([0.8, 0.8, 0.1, 0.1, 0.1, 0.1])
        (row,) = recovery_summary(rolling, self._plan([20, 40]), tolerance=0.02)
        assert row["regain_windows"] is None
        assert row["settle_windows"] == 1  # already at its (low) steady state

    def test_one_row_per_boundary(self):
        rolling = self._series([0.5] * 9)
        rows = recovery_summary(rolling, self._plan([30, 30, 30]))
        assert [row["shift_at"] for row in rows] == [30, 60]

    def test_boundary_straddling_windows_excluded_from_both_phases(self):
        # Boundaries at 25 and 55 with window 10: windows [20,30) and
        # [50,60) straddle a boundary and must count for neither phase.
        rolling = self._series([0.8, 0.8, 0.1, 0.9, 0.9, 0.2, 0.3, 0.3])
        plan = self._plan([25, 30, 25])
        first, second = recovery_summary(rolling, plan, tolerance=0.02)
        # pre for shift@25: last window fully before 25 is [10,20) -> 0.8;
        # post windows fully inside [25,55): [30,40) and [40,50).
        assert first["pre_shift_hit_ratio"] == 0.8
        assert first["dip_hit_ratio"] == 0.9  # the straddling 0.1 is excluded
        assert first["regain_windows"] == 1
        # shift@55: pre is [40,50) -> 0.9; post windows fully inside
        # [55,80): [60,70) and [70,80) -> steady from 0.3s, 0.2 excluded.
        assert second["pre_shift_hit_ratio"] == 0.9
        assert second["post_steady_hit_ratio"] == pytest.approx(0.3)


class TestAdaptivityExperiment:
    def test_row_structure(self, churn_rows):
        window_rows = [r for r in churn_rows if r["row"] == "window"]
        recovery_rows = [r for r in churn_rows if r["row"] == "recovery"]
        assert {r["policy"] for r in window_rows} == set(ADAPTIVITY_POLICIES)
        assert {r["policy"] for r in recovery_rows} == set(ADAPTIVITY_POLICIES)
        per_policy = len(window_rows) // len(ADAPTIVITY_POLICIES)
        assert per_policy == 12_000 // 500
        assert {r["phase"] for r in window_rows} == {"original", "restarted"}
        assert all(r["shift"] == "original->restarted" for r in recovery_rows)

    def test_every_policy_dips_at_the_churn_boundary(self, churn_rows):
        for row in (r for r in churn_rows if r["row"] == "recovery"):
            assert row["dip_hit_ratio"] < row["pre_shift_hit_ratio"]

    def test_clic_recovers_within_bounded_windows(self, churn_rows):
        """The paper's adaptation story: CLIC re-learns within its windows."""
        (clic,) = [
            r for r in churn_rows if r["row"] == "recovery" and r["policy"] == "CLIC"
        ]
        post_windows = (12_000 // 2) // 500
        assert clic["regain_windows"] is not None
        assert clic["regain_windows"] <= post_windows
        assert clic["settle_windows"] is not None

    def test_clic_steady_state_beats_the_baselines(self, churn_rows):
        recovery = {
            r["policy"]: r for r in churn_rows if r["row"] == "recovery"
        }
        clic_steady = recovery["CLIC"]["post_steady_hit_ratio"]
        for name in ("ARC", "LRU", "TQ"):
            assert clic_steady > recovery[name]["post_steady_hit_ratio"]

    def test_plan_argument_forms_agree(self):
        by_name = run_adaptivity_experiment(
            plan="churn", settings=TINY, rolling_window=1_000, cache_size=1_200
        )
        by_plan = run_adaptivity_experiment(
            plan=build_phase_plan("churn", TINY.target_requests, seed=TINY.seed),
            settings=TINY,
            rolling_window=1_000,
            cache_size=1_200,
        )
        by_settings = run_adaptivity_experiment(
            settings=TINY, rolling_window=1_000, cache_size=1_200
        )
        assert by_name == by_plan == by_settings

    def test_registry_and_cli_wiring(self):
        from repro.experiments.cli import build_parser
        from repro.experiments.registry import get_experiment

        assert get_experiment("adaptivity").runner is run_adaptivity_experiment
        args = build_parser().parse_args(["adaptivity", "--phase-plan", "tenant"])
        assert args.phase_plan == "tenant"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adaptivity", "--phase-plan", "nope"])
