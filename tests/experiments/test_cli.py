"""Tests for the experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main, render_result
from repro.simulation.metrics import SweepResult


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiments == ["fig5"]
        assert args.requests == 60_000
        assert args.csv_dir is None

    def test_list_flag(self):
        args = build_parser().parse_args(["--list"])
        assert args.list is True

    def test_shards_flag_parses_counts(self):
        args = build_parser().parse_args(["cluster", "--shards", "1,2,4"])
        assert args.shards == (1, 2, 4)

    def test_shards_flag_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--shards", "two"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--shards", "0,2"])

    def test_experiment_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["--experiment", "latency", "--experiment", "fig5"]
        )
        assert args.experiment_flags == ["latency", "fig5"]

    def test_device_flag_accepts_known_profiles(self):
        args = build_parser().parse_args(["latency", "--device", "hdd"])
        assert args.device == "hdd"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["latency", "--device", "floppy"])

    def test_cost_model_flag_accepts_write_variants(self):
        args = build_parser().parse_args(["latency", "--cost-model", "write-back"])
        assert args.cost_model == "write-back"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["latency", "--cost-model", "write-around"])

    def test_offered_load_flag_parses_fractions(self):
        args = build_parser().parse_args(["load", "--offered-load", "0.5,0.9,1.2"])
        assert args.offered_loads == (0.5, 0.9, 1.2)

    def test_offered_load_flag_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--offered-load", "half"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--offered-load", "0.5,-1"])

    def test_arrival_flag_accepts_known_kinds(self):
        args = build_parser().parse_args(["load", "--arrival", "bursty"])
        assert args.arrival == "bursty"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--arrival", "sawtooth"])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig2", "fig6", "fig11", "abl-window"):
            assert experiment_id in output

    def test_no_experiments_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_runs_fig2_without_trace_generation(self, capsys):
        assert main(["fig2"]) == 0
        output = capsys.readouterr().out
        assert "pool_id" in output and "fix_count" in output

    def test_experiment_flag_runs_latency_end_to_end(self, tmp_path, capsys):
        assert (
            main(
                [
                    "--experiment", "latency",
                    "--device", "ssd",
                    "--requests", "1500",
                    "--seed", "3",
                    "--csv-dir", str(tmp_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "mean_read_latency_us" in output
        assert "p99_read_latency_us" in output
        # Sharded rows carry the queueing column; the table header must show
        # it even though the first (unified) row lacks it.
        assert "hottest_shard_penalty" in output
        csv_text = (tmp_path / "latency.csv").read_text()
        assert "mean_read_latency_us" in csv_text
        assert "hottest_shard_penalty" in csv_text

    def test_load_experiment_end_to_end(self, tmp_path, capsys):
        assert (
            main(
                [
                    "--experiment", "load",
                    "--requests", "1500",
                    "--seed", "3",
                    "--offered-load", "0.5,1.2",
                    "--arrival", "poisson",
                    "--csv-dir", str(tmp_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "offered_load" in output
        assert "p99_queue_delay_us" in output
        assert "utilization" in output
        csv_text = (tmp_path / "load.csv").read_text()
        assert "mean_queue_delay_us" in csv_text

    def test_runs_small_experiment_and_writes_csv(self, tmp_path, capsys):
        assert main(["fig5", "--requests", "1500", "--seed", "3", "--csv-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "DB2_C60" in output
        csv_file = tmp_path / "fig5.csv"
        assert csv_file.exists()
        assert "DB2_C60" in csv_file.read_text()


class TestRenderResult:
    def test_renders_sweep_result(self):
        from repro.simulation.metrics import SimulationResult
        from repro.cache.base import CacheStats

        sweep = SweepResult(parameter="x")
        sweep.add("LRU", 1.0, SimulationResult("LRU", 10, CacheStats(read_requests=2, read_hits=1)))
        text, rows = render_result("figX", sweep)
        assert "LRU" in text
        assert rows[0]["series"] == "LRU"

    def test_renders_row_list(self):
        text, rows = render_result("figX", [{"a": 1}])
        assert "a" in text
        assert rows == [{"a": 1}]

    def test_renders_dict_of_sweeps(self):
        from repro.simulation.metrics import SimulationResult
        from repro.cache.base import CacheStats

        sweep = SweepResult(parameter="cache_size")
        sweep.add("CLIC", 5.0, SimulationResult("CLIC", 5, CacheStats(read_requests=1)))
        text, rows = render_result("figX", {"TRACE": sweep})
        assert "[TRACE]" in text
        assert rows[0]["trace"] == "TRACE"
