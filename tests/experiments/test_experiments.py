"""End-to-end tests for the per-figure experiment runners (scaled way down)."""

from __future__ import annotations

import pytest

from repro.experiments.cluster import run_cluster_experiment
from repro.experiments.common import (
    ExperimentSettings,
    clear_trace_cache,
    clic_kwargs,
    generate_trace,
)
from repro.experiments.hint_priorities import run_hint_priority_scatter
from repro.experiments.latency import run_latency_experiment
from repro.experiments.load import run_load_experiment
from repro.experiments.multiclient import run_multiclient_experiment
from repro.experiments.noise import run_noise_experiment
from repro.experiments.policies import run_policy_comparison
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.schemas_table import run_hint_schema_table
from repro.experiments.topk import run_topk_experiment
from repro.experiments.traces_table import run_trace_table
from repro.experiments.ablations import run_metadata_charge_ablation, run_window_ablation


#: Tiny settings so the full experiment pipeline runs in seconds under pytest.
TINY = ExperimentSettings(target_requests=4_000, seed=5)


@pytest.fixture(autouse=True, scope="module")
def _clear_cache_afterwards():
    yield
    clear_trace_cache()


class TestCommon:
    def test_trace_cache_returns_same_object(self):
        a = generate_trace("DB2_C60", TINY)
        b = generate_trace("DB2_C60", TINY)
        assert a is b

    def test_clic_config_scales_window(self):
        settings = ExperimentSettings(target_requests=300_000)
        assert settings.clic_config().window_size == 10_000

    def test_clic_config_top_k_none_overrides_settings(self):
        """Regression: top_k=None must mean "exact hint table", not "unset"."""
        settings = ExperimentSettings(top_k=50)
        assert settings.clic_config().top_k == 50
        assert settings.clic_config(top_k=None).top_k is None
        assert settings.clic_config(top_k=7).top_k == 7
        assert clic_kwargs(settings)["config"].top_k == 50
        assert clic_kwargs(settings, top_k=None)["config"].top_k is None

    def test_clic_config_window_size_taken_verbatim(self):
        """Regression: an explicit window_size is never replaced by the default."""
        settings = ExperimentSettings(target_requests=300_000)
        assert settings.clic_config(window_size=123).window_size == 123
        with pytest.raises(ValueError):
            # Explicit invalid values now surface instead of being silently
            # swapped for the default by truthiness.
            settings.clic_config(window_size=0)


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        ids = set(list_experiments())
        assert {"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} <= ids

    def test_get_experiment_known_and_unknown(self):
        assert get_experiment("fig6").paper_artifact == "Figure 6"
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_experiments_have_runners_and_descriptions(self):
        for experiment in EXPERIMENTS.values():
            assert callable(experiment.runner)
            assert experiment.description


class TestFigure2And5:
    def test_hint_schema_table_covers_both_dbms(self):
        rows = run_hint_schema_table()
        dbms = {row["dbms"] for row in rows}
        assert dbms == {"DB2", "MySQL"}
        assert len(rows) == 9                      # 5 DB2 + 4 MySQL hint types

    def test_trace_table_reports_requested_traces(self):
        rows = run_trace_table(["DB2_C60"], TINY)
        assert len(rows) == 1
        row = rows[0]
        assert row["trace"] == "DB2_C60"
        assert row["requests"] == TINY.target_requests
        assert row["distinct_pages"] > 0
        assert row["distinct_hint_sets"] > 0


class TestFigure3:
    def test_scatter_rows_have_positive_priorities(self):
        rows = run_hint_priority_scatter("DB2_C60", TINY)
        assert rows
        assert all(row["priority"] > 0 for row in rows)
        assert all("hint_values" in row for row in rows)


class TestFigures6to8:
    def test_policy_comparison_produces_full_grid(self):
        results = run_policy_comparison(["DB2_C60"], TINY, cache_sizes=[600, 1200])
        sweep = results["DB2_C60"]
        assert set(sweep.labels()) == set(TINY.policies)
        assert sweep.xs("CLIC") == [600, 1200]
        for label in sweep.labels():
            for ratio in sweep.hit_ratios(label):
                assert 0.0 <= ratio <= 1.0

    def test_opt_upper_bounds_online_policies(self):
        results = run_policy_comparison(["DB2_C60"], TINY, cache_sizes=[1200])
        sweep = results["DB2_C60"]
        opt = sweep.hit_ratios("OPT")[0]
        for label in ("LRU", "ARC", "TQ", "CLIC"):
            assert opt >= sweep.hit_ratios(label)[0] - 1e-9


class TestFigure9:
    def test_topk_sweep_has_one_series_per_trace(self):
        sweep = run_topk_experiment(
            trace_names=("DB2_C60",), cache_size=600, k_values=(2, 10, None), settings=TINY
        )
        assert sweep.labels() == ["DB2_C60"]
        assert len(sweep.series["DB2_C60"]) == 3

    def test_large_k_at_least_as_good_as_k_one(self):
        sweep = run_topk_experiment(
            trace_names=("DB2_C60",), cache_size=600, k_values=(1, 50), settings=TINY
        )
        points = sweep.series["DB2_C60"]
        assert points[1].read_hit_ratio >= points[0].read_hit_ratio - 0.05


class TestFigure10:
    def test_noise_sweep_shape(self):
        sweep = run_noise_experiment(
            trace_names=("DB2_C60",), noise_levels=(0, 2), cache_size=600, top_k=20, settings=TINY
        )
        assert sweep.xs("DB2_C60") == [0.0, 2.0]

    def test_noise_never_helps_much(self):
        sweep = run_noise_experiment(
            trace_names=("DB2_C60",), noise_levels=(0, 3), cache_size=600, top_k=20, settings=TINY
        )
        clean, noisy = sweep.hit_ratios("DB2_C60")
        assert noisy <= clean + 0.05


class TestFigure11:
    def test_multiclient_result_structure(self):
        result = run_multiclient_experiment(
            trace_names=("DB2_C60", "DB2_C300"), shared_cache_size=1200, settings=TINY
        )
        assert set(result.shared_per_client) == {"DB2_C60", "DB2_C300"}
        assert set(result.private_per_client) == {"DB2_C60", "DB2_C300"}
        assert sum(result.private_cache_sizes) == 1200
        rows = result.as_rows()
        assert rows[-1]["trace"] == "overall"
        assert 0.0 <= result.shared_overall <= 1.0


class TestClusterExperiment:
    def test_cluster_rows_cover_grid_and_baseline(self):
        rows = run_cluster_experiment(
            trace_names=("DB2_C60",),
            multi_trace_names=("DB2_C60", "DB2_C300"),
            cache_size=600,
            policies=("LRU", "CLIC"),
            settings=TINY,
            shard_counts=(1, 2),
        )
        # 2 workloads x 2 shard counts x 2 policies.
        assert len(rows) == 8
        workloads = {row["workload"] for row in rows}
        assert workloads == {"DB2_C60", "interleaved"}
        assert {row["router"] for row in rows} == {"hash", "client"}
        for row in rows:
            assert 0.0 <= row["read_hit_ratio"] <= 1.0
            assert row["load_imbalance"] >= 1.0
            assert row["min_shard_hit_ratio"] <= row["read_hit_ratio"] + 1e-9
            assert row["max_shard_hit_ratio"] >= row["read_hit_ratio"] - 1e-9

    def test_single_shard_rows_match_unsharded_policy(self):
        """The shards=1 rows are the unified baseline, bit-identical."""
        from repro.experiments.policies import run_policy_comparison

        rows = run_cluster_experiment(
            trace_names=("DB2_C60",),
            multi_trace_names=(),
            cache_size=600,
            policies=("LRU",),
            settings=TINY,
            shard_counts=(1,),
        )
        unified = run_policy_comparison(["DB2_C60"], TINY, cache_sizes=[600])
        expected = unified["DB2_C60"].series["LRU"][0].read_hit_ratio
        assert rows[0]["read_hit_ratio"] == expected

    def test_shard_counts_default_from_settings(self):
        settings = ExperimentSettings(
            target_requests=2_000, seed=5, shard_counts=(1, 3)
        )
        rows = run_cluster_experiment(
            trace_names=("DB2_C60",),
            multi_trace_names=(),
            cache_size=300,
            policies=("LRU",),
            settings=settings,
        )
        assert [row["shards"] for row in rows] == [1, 3]


class TestLatencyExperiment:
    def test_rows_cover_devices_configurations_and_policies(self):
        rows = run_latency_experiment(
            trace_names=("DB2_C60",),
            cache_size=600,
            policies=("LRU", "CLIC"),
            settings=TINY,
            devices=("ssd", "nvme"),
            cluster_shards=2,
        )
        # 2 devices x 2 configurations x 2 policies.
        assert len(rows) == 8
        assert {row["device"] for row in rows} == {"ssd", "nvme"}
        assert {row["configuration"] for row in rows} == {"unified", "2 shards"}
        for row in rows:
            assert row["mean_read_latency_us"] > 0.0
            assert row["p99_read_latency_us"] >= row["p50_read_latency_us"]
            assert row["modeled_throughput_rps"] > 0.0

    def test_sharded_rows_carry_queueing_columns_unified_rows_do_not(self):
        rows = run_latency_experiment(
            trace_names=("DB2_C60",),
            cache_size=600,
            policies=("LRU",),
            settings=TINY,
            devices=("ssd",),
            cluster_shards=2,
        )
        by_configuration = {row["configuration"]: row for row in rows}
        assert "hottest_shard_penalty" not in by_configuration["unified"]
        assert by_configuration["2 shards"]["hottest_shard_penalty"] >= 1.0
        assert by_configuration["2 shards"]["cluster_throughput_rps"] > 0.0

    def test_faster_device_means_lower_latency_same_hit_ratio(self):
        settings = ExperimentSettings(target_requests=4_000, seed=5)
        rows = run_latency_experiment(
            trace_names=("DB2_C60",),
            cache_size=600,
            policies=("LRU",),
            settings=settings,
            devices=("hdd", "nvme"),
        )
        unified = [row for row in rows if row["configuration"] == "unified"]
        by_device = {row["device"]: row for row in unified}
        assert by_device["hdd"]["read_hit_ratio"] == by_device["nvme"]["read_hit_ratio"]
        assert (
            by_device["hdd"]["mean_read_latency_us"]
            > by_device["nvme"]["mean_read_latency_us"]
        )

    def test_cluster_shards_one_collapses_to_unified_only(self):
        rows = run_latency_experiment(
            trace_names=("DB2_C60",),
            cache_size=300,
            policies=("LRU",),
            settings=TINY,
            devices=("ssd",),
            cluster_shards=1,
        )
        assert [row["configuration"] for row in rows] == ["unified"]

    def test_cluster_shards_zero_rejected(self):
        with pytest.raises(ValueError, match="cluster_shards"):
            run_latency_experiment(settings=TINY, cluster_shards=0)

    def test_device_defaults_from_settings(self):
        settings = ExperimentSettings(target_requests=2_000, seed=5, device="nvme")
        rows = run_latency_experiment(
            trace_names=("DB2_C60",),
            cache_size=300,
            policies=("LRU",),
            settings=settings,
        )
        assert {row["device"] for row in rows} == {"nvme"}


class TestLoadExperiment:
    def test_rows_cover_loads_configurations_and_policies(self):
        settings = ExperimentSettings(
            target_requests=4_000, seed=5, offered_loads=(0.5, 1.2)
        )
        rows = run_load_experiment(
            trace_names=("DB2_C60",),
            cache_size=600,
            policies=("LRU", "CLIC"),
            settings=settings,
            cluster_shards=2,
        )
        # 2 loads x 2 configurations x 2 policies.
        assert len(rows) == 8
        assert {row["offered_load"] for row in rows} == {0.5, 1.2}
        assert {row["configuration"] for row in rows} == {"unified", "2 shards"}
        assert {row["arrival"] for row in rows} == {"poisson"}
        for row in rows:
            assert row["mean_read_latency_us"] > 0.0
            assert 0.0 < row["utilization"] <= 1.0
            assert row["p99_sojourn_us"] >= row["p50_sojourn_us"]
            assert row["arrival_rate_rps"] > 0.0

    def test_saturation_knee_is_monotone_in_offered_load(self):
        """The tentpole's headline property: for every configuration and
        policy, queueing delay and utilization are nondecreasing in the
        offered load (pathwise coupling via ``scaled``), with overload
        clearly worse than light load."""
        settings = ExperimentSettings(
            target_requests=4_000, seed=5, offered_loads=(0.25, 0.9, 1.5)
        )
        rows = run_load_experiment(
            trace_names=("DB2_C60",),
            cache_size=600,
            policies=("LRU",),
            settings=settings,
            cluster_shards=2,
        )
        series: dict[str, list] = {}
        for row in rows:
            series.setdefault(row["configuration"], []).append(row)
        for configuration, points in series.items():
            points.sort(key=lambda row: row["offered_load"])
            delays = [row["mean_queue_delay_us"] for row in points]
            utils = [row["utilization"] for row in points]
            assert delays == sorted(delays), configuration
            assert utils == sorted(utils), configuration
            assert delays[-1] > 10.0 * max(delays[0], 1e-9), configuration

    def test_sharding_defers_the_knee(self):
        """At the same overload, the 2-shard fleet (twice the servers)
        queues far less than the unified server."""
        settings = ExperimentSettings(
            target_requests=4_000, seed=5, offered_loads=(1.2,)
        )
        rows = run_load_experiment(
            trace_names=("DB2_C60",),
            cache_size=600,
            policies=("LRU",),
            settings=settings,
            cluster_shards=2,
        )
        by_configuration = {row["configuration"]: row for row in rows}
        assert (
            by_configuration["2 shards"]["mean_queue_delay_us"]
            < by_configuration["unified"]["mean_queue_delay_us"]
        )
        assert (
            by_configuration["2 shards"]["utilization"]
            < by_configuration["unified"]["utilization"]
        )

    def test_arrival_kind_comes_from_settings(self):
        settings = ExperimentSettings(
            target_requests=2_000, seed=5, offered_loads=(0.5,), arrival="bursty"
        )
        rows = run_load_experiment(
            trace_names=("DB2_C60",),
            cache_size=300,
            policies=("LRU",),
            settings=settings,
            cluster_shards=1,
        )
        assert [row["configuration"] for row in rows] == ["unified"]
        assert rows[0]["arrival"] == "bursty"

    def test_validation(self):
        with pytest.raises(ValueError, match="cluster_shards"):
            run_load_experiment(settings=TINY, cluster_shards=0)
        with pytest.raises(ValueError, match="offered_loads"):
            run_load_experiment(
                settings=ExperimentSettings(
                    target_requests=2_000, seed=5, offered_loads=()
                )
            )
        with pytest.raises(ValueError, match="offered loads"):
            run_load_experiment(
                settings=ExperimentSettings(
                    target_requests=2_000, seed=5, offered_loads=(0.5, -1.0)
                )
            )


class TestAblations:
    def test_window_ablation_runs(self):
        sweep = run_window_ablation("DB2_C60", cache_size=600, window_sizes=(1_000, 2_000), settings=TINY)
        assert sweep.xs("DB2_C60") == [1_000.0, 2_000.0]

    def test_metadata_charge_costs_little(self):
        sweep = run_metadata_charge_ablation("DB2_C60", cache_size=600, settings=TINY)
        uncharged, charged = sweep.hit_ratios("DB2_C60")
        # Charging ~1% of the cache should cost at most a few points of hit ratio.
        assert charged >= uncharged - 0.1
