"""Golden snapshot tests: every registered experiment's rows are pinned.

Each experiment's tiny-N output (see ``goldens.GOLDEN_SETTINGS``) is checked
in under ``tests/experiments/golden/``; these tests recompute the rows and
demand exact equality.  A failure means a change moved reported numbers —
if that was intended, regenerate with::

    PYTHONPATH=src python tools/regen_golden.py

and review the fixture diff.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.registry import EXPERIMENTS

from tests.experiments.goldens import compute_rows, fixture_path


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_rows_match_golden_fixture(experiment_id):
    path = fixture_path(experiment_id)
    assert path.exists(), (
        f"no golden fixture for experiment {experiment_id!r}; generate it with "
        "`PYTHONPATH=src python tools/regen_golden.py` and commit the file"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    actual = compute_rows(experiment_id)
    assert actual == expected, (
        f"experiment {experiment_id!r} no longer reproduces its golden rows; "
        "if the change is intentional, regenerate with "
        "`PYTHONPATH=src python tools/regen_golden.py` and review the diff"
    )


def test_every_fixture_belongs_to_a_registered_experiment():
    """Stale fixtures (renamed/removed experiments) must not linger."""
    from tests.experiments.goldens import GOLDEN_DIR

    fixture_ids = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert fixture_ids == set(EXPERIMENTS)
