"""Tests for the sharded-cluster layer: routers, ShardedCache, determinism."""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheStats
from repro.cache.registry import available_policies, create_policy
from repro.core.hints import make_hint_set
from repro.simulation.cluster import (
    ClientAffinityRouter,
    HashRouter,
    PageRangeRouter,
    ShardedCache,
    make_router,
)
from repro.simulation.engine import MultiPolicySimulator, PolicySpec, SweepCell
from repro.simulation.multiclient import interleave_round_robin, partition_capacity
from repro.simulation.request import IORequest, RequestKind
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes


def _trace(rng: random.Random, clients=("alpha",), n=3000, pages=800):
    requests = []
    for i in range(n):
        client = clients[i % len(clients)]
        requests.append(
            IORequest(
                page=rng.randrange(pages),
                kind=RequestKind.READ if rng.random() < 0.8 else RequestKind.WRITE,
                hints=make_hint_set(client, object_id=rng.randrange(6)),
            )
        )
    return requests


def _request(page: int, client: str = "c") -> IORequest:
    return IORequest(page=page, kind=RequestKind.READ, hints=make_hint_set(client))


class TestRouters:
    def test_hash_router_is_deterministic_and_in_range(self):
        router = HashRouter(5)
        for page in range(1000):
            shard = router.route(_request(page))
            assert 0 <= shard < 5
            assert shard == HashRouter(5).route(_request(page))

    def test_hash_router_spreads_strided_pages(self):
        """A strided page pattern must not alias onto a single shard."""
        router = HashRouter(4)
        shards = {router.route(_request(page)) for page in range(0, 4000, 4)}
        assert shards == {0, 1, 2, 3}

    def test_range_router_is_contiguous_and_clamps(self):
        router = PageRangeRouter(4, span=400)
        boundaries = [router.route(_request(page)) for page in range(400)]
        assert boundaries == sorted(boundaries)          # contiguous ranges
        assert set(boundaries) == {0, 1, 2, 3}
        assert router.route(_request(10_000)) == 3       # clamps high
        assert router.route(_request(-5)) == 0           # clamps low

    def test_client_router_assigns_by_first_appearance(self):
        router = ClientAffinityRouter(3)
        assert router.route(_request(1, "a")) == 0
        assert router.route(_request(2, "b")) == 1
        assert router.route(_request(3, "c")) == 2
        assert router.route(_request(4, "d")) == 0       # wraps round-robin
        assert router.route(_request(9, "b")) == 1       # sticky per client

    def test_make_router_names_and_errors(self):
        assert isinstance(make_router("hash", 2), HashRouter)
        assert isinstance(make_router("client", 2), ClientAffinityRouter)
        assert isinstance(make_router("range", 2, page_span=100), PageRangeRouter)
        with pytest.raises(ValueError, match="page_span"):
            make_router("range", 2)
        with pytest.raises(ValueError, match="unknown router"):
            make_router("mystery", 2)
        ready = HashRouter(3)
        assert make_router(ready, 3) is ready
        with pytest.raises(ValueError, match="shards"):
            make_router(ready, 4)

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            HashRouter(0)
        with pytest.raises(TypeError):
            HashRouter(2.5)


class TestShardedCacheBasics:
    def test_capacity_is_partitioned_exactly(self):
        cluster = ShardedCache(capacity=10, policy="LRU", shards=3)
        assert cluster.capacity == 10
        assert [shard.capacity for shard in cluster.shards] == partition_capacity(10, 3)

    def test_capacity_invariant_and_disjoint_shards(self, rng):
        cluster = ShardedCache(capacity=30, policy="LRU", shards=4)
        for seq, request in enumerate(_trace(rng, n=2000, pages=300)):
            cluster.access(request, seq)
            assert len(cluster) <= cluster.capacity
        # Each cached page lives only in the shard that owns it.
        for index, shard in enumerate(cluster.shards):
            for page in shard.cached_pages():
                assert cluster.router.route(_request(page)) == index
        assert sorted(cluster.cached_pages()) == sorted(
            page for shard in cluster.shards for page in shard.cached_pages()
        )

    def test_aggregate_stats_equal_sum_of_shard_stats(self, rng):
        cluster = ShardedCache(capacity=40, policy="ARC", shards=3)
        result = CacheSimulator(cluster).run(_trace(rng, n=2500))
        merged = CacheStats()
        for stats in result.per_shard:
            merged = merged.merge(stats)
        assert result.stats == merged
        assert merged.requests == 2500

    def test_reset_clears_every_shard(self, rng):
        cluster = ShardedCache(capacity=20, policy="LRU", shards=2)
        CacheSimulator(cluster).run(_trace(rng, n=500))
        assert len(cluster) > 0
        cluster.reset()
        assert len(cluster) == 0
        assert all(len(shard) == 0 for shard in cluster.shards)

    def test_reset_also_clears_router_state(self, rng):
        """A reset cluster must route exactly like a freshly built one."""
        cluster = ShardedCache(capacity=20, policy="LRU", shards=2, router="client")
        CacheSimulator(cluster).run([_request(1, "b"), _request(2, "c")])
        cluster.reset()
        stream = _trace(rng, clients=("a", "b"), n=600)
        reset_result = CacheSimulator(cluster).run(stream)
        fresh = ShardedCache(capacity=20, policy="LRU", shards=2, router="client")
        fresh_result = CacheSimulator(fresh).run(stream)
        assert reset_result.per_shard == fresh_result.per_shard
        assert reset_result.stats == fresh_result.stats

    def test_contains_checks_all_shards(self, rng):
        cluster = ShardedCache(capacity=50, policy="LRU", shards=4)
        requests = _trace(rng, n=1000, pages=100)
        CacheSimulator(cluster).run(requests)
        for page in cluster.cached_pages():
            assert cluster.contains(page)

    def test_registry_builds_and_specs_pickle(self):
        cluster = create_policy(
            "SHARDED", capacity=12, policy="LRU", shards=3, router="hash"
        )
        assert isinstance(cluster, ShardedCache)
        spec = PolicySpec(
            label="LRUx3",
            name="SHARDED",
            capacity=12,
            kwargs={"policy": "LRU", "shards": 3, "router": "hash"},
        )
        rebuilt = pickle.loads(pickle.dumps(spec)).build()
        assert isinstance(rebuilt, ShardedCache)
        assert rebuilt.shard_count == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShardedCache(capacity=10, policy="LRU", shards=0)
        with pytest.raises(ValueError):
            ShardedCache(capacity=2, policy="LRU", shards=5)  # < 1 page per shard


class TestSingleShardEquivalence:
    """shards=1 must be bit-identical to the wrapped policy."""

    @pytest.mark.parametrize("router", ["hash", "client"])
    def test_every_registered_policy(self, rng, router):
        requests = _trace(rng, clients=("alpha", "beta"), n=2500)
        for name in available_policies():
            if name == "SHARDED":
                continue
            plain = CacheSimulator(create_policy(name, capacity=60)).run(requests)
            sharded = CacheSimulator(
                ShardedCache(capacity=60, policy=name, shards=1, router=router)
            ).run(requests)
            assert sharded.stats == plain.stats, name
            assert sharded.per_client == plain.per_client, name

    def test_engine_path_matches_too(self, rng):
        requests = _trace(rng, n=2000)
        plain, sharded = MultiPolicySimulator(
            [
                create_policy("OPT", capacity=50),
                ShardedCache(capacity=50, policy="OPT", shards=1),
            ]
        ).run(requests)
        assert sharded.stats == plain.stats
        assert sharded.per_client == plain.per_client

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        pages=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=300),
        capacity=st.integers(min_value=1, max_value=20),
        policy=st.sampled_from(["LRU", "ARC", "TQ", "OPT"]),
    )
    def test_property_single_shard_identity(self, pages, capacity, policy):
        """Property: on any stream, ShardedCache(shards=1) == the bare policy."""
        stream = [
            IORequest(
                page=page,
                kind=RequestKind.READ if page % 3 else RequestKind.WRITE,
            )
            for page in pages
        ]
        plain = CacheSimulator(create_policy(policy, capacity=capacity)).run(stream)
        sharded = CacheSimulator(
            ShardedCache(capacity=capacity, policy=policy, shards=1)
        ).run(stream)
        assert sharded.stats == plain.stats
        assert sharded.per_client == plain.per_client


class TestClusterBehaviour:
    def test_client_affinity_equals_static_partitioning(self, rng):
        """S = number of clients rebuilds Figure 11's private caches exactly."""
        trace_a = _trace(rng, clients=("a",), n=1200, pages=300)
        trace_b = _trace(rng, clients=("b",), n=1200, pages=300)
        interleaved = interleave_round_robin([trace_a, trace_b])
        capacity = 41                                   # odd: uneven partition
        cluster = ShardedCache(capacity=capacity, policy="LRU", shards=2, router="client")
        result = CacheSimulator(cluster).run(interleaved)

        sizes = partition_capacity(capacity, 2)
        by_client: dict[str, list[IORequest]] = {}
        for request in interleaved:
            by_client.setdefault(request.client_id, []).append(request)
        clients = list(by_client)                       # first-appearance order
        for index, client in enumerate(clients):
            private = CacheSimulator(create_policy("LRU", capacity=sizes[index]))
            expected = private.run(by_client[client])
            assert result.per_shard[index] == expected.stats

    def test_sharded_opt_stays_below_unified_opt(self, rng):
        requests = _trace(rng, n=3000)
        unified_policy = create_policy("OPT", capacity=60)
        cluster = ShardedCache(capacity=60, policy="OPT", shards=4)
        unified, sharded = MultiPolicySimulator([unified_policy, cluster]).run(requests)
        assert sharded.read_hit_ratio <= unified.read_hit_ratio + 1e-9
        # The engine builds ONE future-read index for the whole pass: the
        # unified OPT and every OPT shard adopt the same object.
        for shard in cluster.shards:
            assert shard._read_positions is unified_policy._read_positions

    def test_prepare_shares_one_index_across_opt_shards(self, rng):
        """The CacheSimulator path must not index the stream once per shard."""
        cluster = ShardedCache(capacity=40, policy="OPT", shards=3)
        CacheSimulator(cluster).run(_trace(rng, n=1000))
        first, *rest = [shard._read_positions for shard in cluster.shards]
        for positions in rest:
            assert positions is first

    def test_per_shard_results_surface_in_both_replay_paths(self, rng):
        requests = _trace(rng, n=1500)
        build = lambda: ShardedCache(capacity=40, policy="LRU", shards=4)
        via_simulator = CacheSimulator(build()).run(requests)
        (via_engine,) = MultiPolicySimulator([build()]).run(requests)
        assert via_simulator.per_shard == via_engine.per_shard
        assert via_simulator.shard_count == 4
        assert sum(via_simulator.shard_request_counts) == 1500
        assert via_simulator.load_imbalance >= 1.0
        # An unsharded policy reports no shards.
        plain = CacheSimulator(create_policy("LRU", capacity=40)).run(requests)
        assert plain.per_shard == ()
        assert plain.load_imbalance == 1.0

    def test_cluster_sweep_jobs_do_not_change_results(self, rng):
        requests = _trace(rng, clients=("a", "b"), n=2000)
        kwargs = {"SHARDED": {"policy": "LRU", "shards": 3}}
        serial = sweep_cache_sizes(
            requests, cache_sizes=[24, 48], policies=["SHARDED"],
            policy_kwargs=kwargs, jobs=1,
        )
        parallel = sweep_cache_sizes(
            requests, cache_sizes=[24, 48], policies=["SHARDED"],
            policy_kwargs=kwargs, jobs=4,
        )
        assert serial.labels() == parallel.labels()
        for p_serial, p_parallel in zip(
            serial.series["SHARDED"], parallel.series["SHARDED"]
        ):
            assert p_serial.result.stats == p_parallel.result.stats
            assert p_serial.result.per_shard == p_parallel.result.per_shard
            assert p_serial.result.per_client == p_parallel.result.per_client
