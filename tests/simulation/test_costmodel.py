"""Tests for the service-time cost model and its engine integration."""

from __future__ import annotations

import pickle

import pytest

from repro.cache.base import CacheStats
from repro.cache.lru import LRUPolicy
from repro.simulation.cluster import ShardedCache
from repro.simulation.costmodel import (
    DEVICE_PROFILES,
    HISTOGRAM_BUCKET_BOUNDS_US,
    CostModel,
    DeviceProfile,
    LatencyStats,
    make_device_profile,
)
from repro.simulation.engine import MultiPolicySimulator, ParallelSweepRunner, PolicySpec, SweepCell
from repro.simulation.simulator import CacheSimulator, simulate

from tests.conftest import rd, wr


def small_trace(pages: int = 40, repeats: int = 6) -> list:
    """A read/write mix with re-references, so every pricing class occurs."""
    requests = []
    for _ in range(repeats):
        for page in range(pages):
            requests.append(rd(page))
        for page in range(0, pages, 3):
            requests.append(wr(page))
    return requests


class TestDeviceProfiles:
    def test_stock_profiles_are_ordered_by_speed(self):
        hdd, ssd, nvme = (
            DEVICE_PROFILES[name].nominal_read_miss_us for name in ("hdd", "ssd", "nvme")
        )
        assert hdd > ssd > nvme

    def test_only_hdd_is_position_dependent(self):
        assert DEVICE_PROFILES["hdd"].position_dependent
        assert not DEVICE_PROFILES["ssd"].position_dependent
        assert not DEVICE_PROFILES["nvme"].position_dependent

    def test_seek_cost_grows_with_distance_and_saturates(self):
        profile = DEVICE_PROFILES["hdd"]
        near = profile.seek_cost_us(10)
        far = profile.seek_cost_us(profile.seek_span // 2)
        full = profile.seek_cost_us(profile.seek_span)
        beyond = profile.seek_cost_us(profile.seek_span * 10)
        assert 0.0 < near < far < full == beyond == profile.seek_us
        assert profile.seek_cost_us(0) == 0.0

    def test_make_device_profile_overrides_build_custom(self):
        custom = make_device_profile("ssd", read_base_us=40.0)
        assert custom.name == "custom"
        assert custom.read_base_us == 40.0
        assert custom.read_transfer_us == DEVICE_PROFILES["ssd"].read_transfer_us
        # A ready-made profile passes through untouched.
        assert make_device_profile(custom) is custom

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            make_device_profile("floppy")

    def test_negative_timings_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", cache_hit_us=-1.0, read_base_us=1.0,
                          read_transfer_us=1.0, write_us=1.0)

    def test_unknown_write_policy_rejected(self):
        with pytest.raises(ValueError, match="write policy"):
            CostModel("ssd", write_policy="write-around")


class TestLatencyStats:
    def test_percentiles_come_from_fixed_buckets(self):
        stats = LatencyStats()
        stats.record_read(5.0, count=99)
        stats.record_read(5000.0, count=1)
        assert stats.read_count == 100
        # p50 falls in the 5us class, p99 still within the cheap class,
        # p100 in the expensive one; bounds are bucket upper bounds.
        assert stats.p50_read_us >= 5.0
        assert stats.p50_read_us == stats.read_percentile(0.99)
        assert stats.read_percentile(1.0) >= 5000.0

    def test_percentile_validates_quantile(self):
        with pytest.raises(ValueError):
            LatencyStats().read_percentile(1.5)

    def test_empty_stats_report_zero(self):
        stats = LatencyStats()
        assert stats.mean_read_us == 0.0
        assert stats.p99_read_us == 0.0
        assert stats.throughput_rps == 0.0

    def test_merge_is_bucketwise_addition(self):
        a, b = LatencyStats(), LatencyStats()
        a.record_read(5.0, count=10)
        a.record_write(90.0, count=2)
        b.record_read(5000.0, count=3)
        merged = a.merge(b)
        assert merged.read_count == 13
        assert merged.write_count == 2
        assert merged.total_read_us == pytest.approx(50.0 + 15000.0)
        assert sum(merged.read_histogram) == 13
        assert len(merged.read_histogram) == len(HISTOGRAM_BUCKET_BOUNDS_US)

    def test_throughput_is_requests_over_busy_time(self):
        stats = LatencyStats()
        stats.record_read(1000.0, count=500)  # 0.5 s busy
        stats.record_write(1000.0, count=500)  # 0.5 s busy
        assert stats.throughput_rps == pytest.approx(1000.0)

    def test_zero_latency_reads_report_exactly_zero_percentiles(self):
        """Regression: the histogram's leading bucket is the exact-zero
        class.  Before it existed, a 0.0us recording landed in the first
        geometric bucket and every percentile reported its positive upper
        bound — 'no latency' showed up as 0.5us."""
        stats = LatencyStats()
        stats.record_read(0.0, count=50)
        assert HISTOGRAM_BUCKET_BOUNDS_US[0] == 0.0
        assert stats.read_histogram[0] == 50
        assert stats.p50_read_us == 0.0
        assert stats.p99_read_us == 0.0
        assert stats.read_percentile(1.0) == 0.0
        # Any positive latency still lands in a positive-bound bucket.
        stats.record_read(0.001, count=1)
        assert stats.read_percentile(1.0) > 0.0

    def test_empty_report_columns_are_all_zero(self):
        columns = LatencyStats().report_columns()
        assert set(columns) == {
            "mean_read_latency_us",
            "p50_read_latency_us",
            "p99_read_latency_us",
            "modeled_throughput_rps",
        }
        assert all(value == 0.0 for value in columns.values())

    def test_merge_rejects_mismatched_histogram_lengths(self):
        """Regression: merging stats built against different bucketisations
        used to silently zip-truncate, losing tail counts."""
        a, b = LatencyStats(), LatencyStats()
        b.read_histogram = b.read_histogram + [0]
        with pytest.raises(ValueError, match="histogram"):
            a.merge(b)


class TestPricing:
    def test_write_back_absorbs_writes_at_cache_speed(self):
        through = CostModel("ssd", write_policy="write-through")
        back = CostModel("ssd", write_policy="write-back")
        stats = CacheStats(read_requests=10, read_hits=5, write_requests=10, write_hits=2)
        assert through.latency_from_stats(stats).total_write_us == pytest.approx(
            10 * DEVICE_PROFILES["ssd"].write_us
        )
        assert back.latency_from_stats(stats).total_write_us == pytest.approx(
            10 * DEVICE_PROFILES["ssd"].cache_hit_us
        )
        # Read pricing is independent of the write variant.
        assert (
            through.latency_from_stats(stats).total_read_us
            == back.latency_from_stats(stats).total_read_us
        )

    def test_higher_hit_ratio_means_lower_mean_latency(self):
        model = CostModel("ssd")
        cold = model.latency_from_stats(CacheStats(read_requests=100, read_hits=10))
        warm = model.latency_from_stats(CacheStats(read_requests=100, read_hits=90))
        assert warm.mean_read_us < cold.mean_read_us

    def test_cost_model_is_picklable(self):
        model = CostModel("hdd", write_policy="write-back", page_span=10_000)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.profile == model.profile
        assert clone.write_policy == model.write_policy


class TestAccumulator:
    def test_matches_analytic_derivation_for_position_independent_devices(self):
        # For SSD/NVMe every pricing class has one constant cost, so the
        # per-request accumulator must equal pricing the final counts.
        for device in ("ssd", "nvme"):
            model = CostModel(device)
            accumulator = model.accumulator()
            policy = LRUPolicy(capacity=10)
            stats = CacheStats()
            for seq, request in enumerate(small_trace()):
                outcome = policy.access(request, seq)
                accumulator.charge(request, outcome.hit)
                stats.record_outcome(request, outcome)
            latency = accumulator.finalize()
            assert latency.as_dict() == model.latency_from_stats(stats).as_dict()

    def test_price_matches_charge_for_every_pricing_class(self):
        """``price`` returns exactly what ``charge`` accumulates — same
        rules, same seek-head walk — totalled over a mixed stream on a
        seek device (the hardest case: stateful head)."""
        from repro.simulation.request import read_request, write_request

        model = CostModel("hdd", page_span=256)
        requests = [
            (read_request(page=(seq * 37) % 200), seq % 3 == 0)
            for seq in range(40)
        ] + [(write_request(page=seq * 11 % 200), False) for seq in range(10)]
        pricer, recorder = model.accumulator(), model.accumulator()
        priced_total = 0.0
        for request, hit in requests:
            priced_total += pricer.price(request, hit)
            recorder.charge(request, hit)
        assert priced_total == pytest.approx(recorder.finalize().total_us)

    def test_price_does_not_accumulate(self):
        from repro.simulation.request import read_request

        accumulator = CostModel("ssd").accumulator()
        assert accumulator.price(read_request(page=3), hit=False) == pytest.approx(90.0)
        assert accumulator.price(read_request(page=3), hit=True) == pytest.approx(5.0)
        stats = accumulator.finalize()
        assert stats.request_count == 0
        assert stats.total_us == 0.0

    def test_hdd_seeks_depend_on_access_pattern(self):
        model = CostModel("hdd", page_span=10_000)
        # Same class counts, different head travel: all-misses sequential
        # vs. all-misses alternating between the ends of the span.
        sequential = [rd(page) for page in range(200)]
        jumping = [rd(0 if index % 2 else 9_999) for index in range(200)]

        def total_read_us(requests):
            accumulator = model.accumulator()
            policy = LRUPolicy(capacity=1)
            for seq, request in enumerate(requests):
                accumulator.charge(request, policy.access(request, seq))
            return accumulator.finalize().total_read_us

        assert total_read_us(jumping) > total_read_us(sequential)


class TestEngineIntegration:
    def test_cost_model_off_leaves_results_unpriced(self):
        results = MultiPolicySimulator([LRUPolicy(capacity=10)]).run(small_trace())
        assert results[0].latency is None
        assert results[0].shard_latency == ()
        assert results[0].mean_read_latency_us == 0.0
        assert results[0].hottest_shard_penalty == 1.0

    def test_engine_and_simulator_price_identically(self):
        trace = small_trace()
        model = CostModel("hdd", page_span=1_000)
        engine_result = MultiPolicySimulator(
            [LRUPolicy(capacity=10)], cost_model=model
        ).run(trace)[0]
        sim_result = CacheSimulator(LRUPolicy(capacity=10), cost_model=model).run(trace)
        assert engine_result.latency.as_dict() == sim_result.latency.as_dict()

    def test_priced_result_surfaces_in_as_dict(self):
        model = CostModel("ssd")
        result = simulate(LRUPolicy(capacity=10), small_trace(), cost_model=model)
        row = result.as_dict()
        assert row["mean_read_latency_us"] == result.latency.mean_read_us
        assert row["p99_read_latency_us"] == result.latency.p99_read_us
        assert row["modeled_throughput_rps"] == result.latency.throughput_rps

    def test_multi_client_replay_is_priced_too(self):
        from repro.core.hints import make_hint_set

        hints_a = make_hint_set("client-a", object_id="x")
        hints_b = make_hint_set("client-b", object_id="y")
        trace = []
        for index in range(2_000):
            hints = hints_a if index % 2 else hints_b
            trace.append(rd(index % 50, hints))
        model = CostModel("ssd")
        result = MultiPolicySimulator([LRUPolicy(capacity=10)], cost_model=model).run(trace)[0]
        assert set(result.per_client) == {"client-a", "client-b"}
        assert result.latency.read_count == 2_000
        assert result.latency.as_dict() == model.latency_from_stats(result.stats).as_dict()

    def test_sharded_results_carry_per_shard_latency(self):
        model = CostModel("ssd")
        cluster = ShardedCache(capacity=12, policy="LRU", shards=4)
        result = simulate(cluster, small_trace(), cost_model=model)
        assert len(result.shard_latency) == 4
        merged = result.shard_latency[0]
        for shard in result.shard_latency[1:]:
            merged = merged.merge(shard)
        # Per-shard breakdowns compose back into the aggregate for
        # position-independent devices.
        assert merged.as_dict() == result.latency.as_dict()
        assert result.hottest_shard_penalty >= 1.0
        assert result.cluster_throughput_rps > 0.0
        row = result.as_dict()
        assert row["hottest_shard_penalty"] == result.hottest_shard_penalty
        # cluster_latency is exactly the merged per-shard view.
        assert result.cluster_latency.as_dict() == merged.as_dict()

    def test_seek_device_cluster_tracks_one_head_per_shard(self):
        # A cluster on a seek device is priced with one independent head
        # per shard (exact per-request seek walk, same method as the
        # unified rows it is compared against): the aggregate is exactly
        # the merged per-shard view, and the exact per-shard walk differs
        # from the position-free nominal-seek approximation.
        model = CostModel("hdd", page_span=1_000)
        cluster = ShardedCache(capacity=12, policy="LRU", shards=4)
        result = simulate(cluster, small_trace(), cost_model=model)
        assert result.cluster_latency.as_dict() == result.latency.as_dict()
        analytic = model.shard_latencies(result.per_shard)
        assert [shard.read_count for shard in result.shard_latency] == [
            shard.read_count for shard in analytic
        ]
        assert [shard.total_read_us for shard in result.shard_latency] != [
            shard.total_read_us for shard in analytic
        ]

    def test_single_shard_seek_cluster_prices_identically_to_wrapped_policy(self):
        # The cluster layer's shards=1 bit-identity must extend to pricing:
        # a one-shard HDD cluster reports exactly the wrapped policy's
        # seek-aware latency on every surface (not the analytic stand-in).
        model = CostModel("hdd", page_span=1_000)
        trace = small_trace()
        unified = simulate(LRUPolicy(capacity=10), trace, cost_model=model)
        cluster = simulate(
            ShardedCache(capacity=10, policy="LRU", shards=1), trace, cost_model=model
        )
        assert cluster.latency.as_dict() == unified.latency.as_dict()
        assert cluster.mean_read_latency_us == unified.mean_read_latency_us
        assert (
            cluster.as_dict()["mean_read_latency_us"]
            == unified.as_dict()["mean_read_latency_us"]
        )

    def test_sharded_seek_device_reports_cluster_view_on_every_surface(self):
        # as_dict(), the latency properties and sweep rows must all report
        # the independent-devices cluster view.
        model = CostModel("hdd", page_span=1_000)
        cluster = ShardedCache(capacity=12, policy="LRU", shards=4)
        result = simulate(cluster, small_trace(), cost_model=model)
        expected = result.cluster_latency.mean_read_us
        assert result.mean_read_latency_us == expected
        assert result.as_dict()["mean_read_latency_us"] == expected

    def test_cluster_latency_is_none_when_unsharded_or_unpriced(self):
        priced = simulate(LRUPolicy(capacity=10), small_trace(), cost_model=CostModel("ssd"))
        unpriced = simulate(ShardedCache(capacity=12, policy="LRU", shards=4), small_trace())
        assert priced.cluster_latency is None
        assert unpriced.cluster_latency is None

    def test_sweep_rows_gain_latency_columns_only_when_priced(self):
        trace = small_trace()
        cells = [
            SweepCell(x=10.0, specs=(PolicySpec(label="LRU", name="LRU", capacity=10),))
        ]
        plain = ParallelSweepRunner(trace).run(cells, parameter="cache_size")
        priced = ParallelSweepRunner(trace, cost_model=CostModel("ssd")).run(
            cells, parameter="cache_size"
        )
        assert "mean_read_latency_us" not in plain.as_rows()[0]
        priced_row = priced.as_rows()[0]
        assert priced_row["mean_read_latency_us"] > 0.0
        assert priced.mean_read_latencies("LRU") == [priced_row["mean_read_latency_us"]]

    def test_parallel_sweep_prices_identically_to_serial(self):
        trace = small_trace()
        cells = [
            SweepCell(
                x=float(capacity),
                specs=(PolicySpec(label="LRU", name="LRU", capacity=capacity),),
            )
            for capacity in (5, 10, 20, 40)
        ]
        model = CostModel("hdd", page_span=1_000)
        serial = ParallelSweepRunner(trace, jobs=1, cost_model=model).run(
            cells, parameter="cache_size"
        )
        parallel = ParallelSweepRunner(trace, jobs=2, cost_model=model).run(
            cells, parameter="cache_size"
        )
        for label in serial.labels():
            for a, b in zip(serial.series[label], parallel.series[label]):
                assert a.x == b.x
                assert a.result.latency.as_dict() == b.result.latency.as_dict()
