"""Tests for the shared-replay multi-policy engine and the parallel runner."""

from __future__ import annotations

import random

import pytest

from repro.cache.registry import available_policies, create_policy
from repro.core.config import CLICConfig
from repro.simulation.engine import (
    MultiPolicySimulator,
    ParallelSweepRunner,
    PolicySpec,
    SweepCell,
)
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes

from repro.core.hints import make_hint_set
from repro.simulation.request import IORequest, RequestKind


def _mixed_trace(rng: random.Random, clients=("alpha",), n=4000):
    """Reads and writes over hot/cold pages, optionally from several clients."""
    requests = []
    hints_by_client = {
        c: (make_hint_set(c, object_id="hot"), make_hint_set(c, object_id="cold"))
        for c in clients
    }
    for i in range(n):
        client = clients[i % len(clients)]
        hot, cold = hints_by_client[client]
        if rng.random() < 0.6:
            page, hints = rng.randrange(60), hot
        else:
            page, hints = 60 + rng.randrange(1200), cold
        kind = RequestKind.READ if rng.random() < 0.8 else RequestKind.WRITE
        requests.append(IORequest(page=page, kind=kind, hints=hints))
    return requests


def _build_all_policies(capacity: int):
    return [create_policy(name, capacity=capacity) for name in available_policies()]


class TestMultiPolicySimulator:
    @pytest.mark.parametrize("clients", [("alpha",), ("alpha", "beta", "gamma")])
    def test_identical_to_independent_runs_for_every_policy(self, rng, clients):
        """The defining property: one shared pass == N independent simulations."""
        requests = _mixed_trace(rng, clients=clients)
        names = list(available_policies())

        independent = {}
        for name in names:
            policy = create_policy(name, capacity=80)
            independent[name] = CacheSimulator(policy).run(requests)

        shared = MultiPolicySimulator(_build_all_policies(80)).run(requests)

        for name, result in zip(names, shared):
            expected = independent[name]
            assert result.policy_name == expected.policy_name
            assert result.capacity == expected.capacity
            assert result.stats == expected.stats, name
            assert result.per_client == expected.per_client, name

    def test_same_policy_at_many_capacities_shares_one_pass(self, rng):
        """OPT instances share one future-read index without diverging."""
        requests = _mixed_trace(rng)
        capacities = [20, 40, 80, 160]
        independent = [
            CacheSimulator(create_policy("OPT", capacity=c)).run(requests)
            for c in capacities
        ]
        shared = MultiPolicySimulator(
            [create_policy("OPT", capacity=c) for c in capacities]
        ).run(requests)
        for expected, result in zip(independent, shared):
            assert result.stats == expected.stats
            assert result.per_client == expected.per_client

    def test_start_seq_matches_single_policy_simulator(self, rng):
        requests = _mixed_trace(rng, n=1500)
        expected = CacheSimulator(create_policy("OPT", capacity=50)).run(
            requests, start_seq=777
        )
        (result,) = MultiPolicySimulator([create_policy("OPT", capacity=50)]).run(
            requests, start_seq=777
        )
        assert result.stats == expected.stats

    def test_track_per_client_disabled(self, rng):
        requests = _mixed_trace(rng, clients=("alpha", "beta"), n=1000)
        results = MultiPolicySimulator(
            [create_policy("LRU", capacity=50)], track_per_client=False
        ).run(requests)
        assert results[0].per_client == {}
        assert results[0].stats.requests == 1000

    def test_empty_policy_list(self, rng):
        assert MultiPolicySimulator([]).run(_mixed_trace(rng, n=10)) == []

    @pytest.mark.parametrize("boundary_offset", [0, 1])
    def test_second_client_appearing_at_chunk_boundary(self, rng, boundary_offset):
        """The per-client fast path must hand over correctly at chunk edges.

        The replay loop runs a single-client fast path until a second client
        appears, which it detects chunk-by-chunk.  Build a stream whose
        second client first appears exactly at the CHUNK_SIZE boundary (and,
        for contrast, one request after it): the totals accumulated by the
        fast path must be re-attributed to the first client and per-client
        stats must match the per-request slow path of CacheSimulator.
        """
        chunk = MultiPolicySimulator.CHUNK_SIZE
        alpha = _mixed_trace(rng, clients=("alpha",), n=chunk + boundary_offset)
        beta = _mixed_trace(rng, clients=("beta",), n=700)
        requests = alpha + beta

        names = ["LRU", "OPT", "CLIC"]
        shared = MultiPolicySimulator(
            [create_policy(name, capacity=80) for name in names]
        ).run(requests)
        for name, result in zip(names, shared):
            expected = CacheSimulator(create_policy(name, capacity=80)).run(requests)
            assert result.stats == expected.stats, name
            assert set(result.per_client) == {"alpha", "beta"}
            assert result.per_client == expected.per_client, name

    def test_accepts_iterator_streams(self, rng):
        requests = _mixed_trace(rng, n=1000)
        expected = CacheSimulator(create_policy("LRU", capacity=50)).run(requests)
        (result,) = MultiPolicySimulator([create_policy("LRU", capacity=50)]).run(
            iter(requests)
        )
        assert result.stats == expected.stats


class TestParallelSweepRunner:
    def test_jobs_do_not_change_results(self, rng):
        """jobs=1 and jobs=4 sweeps must be identical, point for point."""
        requests = _mixed_trace(rng, n=2000)
        serial = sweep_cache_sizes(
            requests, cache_sizes=[25, 50], policies=["LRU", "OPT", "CLIC"], jobs=1
        )
        parallel = sweep_cache_sizes(
            requests, cache_sizes=[25, 50], policies=["LRU", "OPT", "CLIC"], jobs=4
        )
        assert serial.labels() == parallel.labels()
        for label in serial.labels():
            assert serial.xs(label) == parallel.xs(label)
            for p_serial, p_parallel in zip(serial.series[label], parallel.series[label]):
                assert p_serial.result.stats == p_parallel.result.stats
                assert p_serial.result.per_client == p_parallel.result.per_client

    def test_cells_may_carry_their_own_streams(self, rng):
        stream_a = _mixed_trace(rng, n=800)
        stream_b = _mixed_trace(rng, n=800)
        spec = PolicySpec(label="LRU", name="LRU", capacity=40)
        cells = [
            SweepCell(x=0.0, specs=(spec,), requests=stream_a),
            SweepCell(x=1.0, specs=(spec,), requests=stream_b),
        ]
        sweep = ParallelSweepRunner(jobs=1).run(cells, parameter="stream")
        expected_a = CacheSimulator(create_policy("LRU", capacity=40)).run(stream_a)
        expected_b = CacheSimulator(create_policy("LRU", capacity=40)).run(stream_b)
        points = sweep.series["LRU"]
        assert points[0].result.stats == expected_a.stats
        assert points[1].result.stats == expected_b.stats

    def test_missing_stream_is_an_error(self):
        spec = PolicySpec(label="LRU", name="LRU", capacity=4)
        with pytest.raises(ValueError):
            ParallelSweepRunner(jobs=1).run(
                [SweepCell(x=0.0, specs=(spec,))], parameter="x"
            )

    def test_unpicklable_factory_falls_back_to_serial(self, rng):
        requests = _mixed_trace(rng, n=500)
        spec = PolicySpec(
            label="LRU", factory=lambda: create_policy("LRU", capacity=30)
        )
        runner = ParallelSweepRunner(requests, jobs=4)
        cells = [SweepCell(x=0.0, specs=(spec,)), SweepCell(x=1.0, specs=(spec,))]
        with pytest.warns(RuntimeWarning, match="serial"):
            sweep = runner.run(cells, parameter="x")
        expected = CacheSimulator(create_policy("LRU", capacity=30)).run(requests)
        assert sweep.series["LRU"][0].result.stats == expected.stats

    def test_unpicklable_stream_falls_back_to_serial(self, rng):
        """A stream the pool cannot pickle degrades to serial, not a crash."""
        requests = _mixed_trace(rng, n=400)
        poisoned = requests + [
            IORequest(
                page=1,
                kind=RequestKind.READ,
                hints=make_hint_set("c", f=lambda: None),  # unpicklable value
            )
        ]
        spec = PolicySpec(label="LRU", name="LRU", capacity=30)
        cells = [
            SweepCell(x=0.0, specs=(spec,), requests=poisoned),
            SweepCell(x=1.0, specs=(spec,), requests=poisoned),
        ]
        with pytest.warns(RuntimeWarning, match="serial"):
            sweep = ParallelSweepRunner(jobs=2).run(cells, parameter="x")
        assert len(sweep.series["LRU"]) == 2

    def test_clic_config_cells_survive_pickling(self, rng):
        """CLIC cells (config kwargs) run under worker processes."""
        requests = _mixed_trace(rng, n=600)
        config = CLICConfig(window_size=300, charge_metadata=False)
        spec = PolicySpec(
            label="CLIC", name="CLIC", capacity=30, kwargs={"config": config}
        )
        sweep = ParallelSweepRunner(requests, jobs=2).run(
            [SweepCell(x=0.0, specs=(spec,)), SweepCell(x=1.0, specs=(spec,))],
            parameter="x",
        )
        assert len(sweep.series["CLIC"]) == 2
        assert sweep.series["CLIC"][0].result.stats == sweep.series["CLIC"][1].result.stats


class TestPolicySpec:
    def test_requires_factory_or_name(self):
        with pytest.raises(ValueError):
            PolicySpec(label="broken").build()

    def test_builds_from_registry(self):
        policy = PolicySpec(label="LRU", name="LRU", capacity=7).build()
        assert policy.capacity == 7


class TestEnsureStreams:
    """Pre-materialization dedup: equal lazy sources are ensured once."""

    class CountingSpec:
        """A hashable stand-in for TraceSpec: equal keys share one ensure()."""

        calls: dict[str, int] = {}

        def __init__(self, key: str):
            self.key = key

        def __eq__(self, other):
            return isinstance(other, type(self)) and self.key == other.key

        def __hash__(self):
            return hash(self.key)

        def iter_requests(self):  # pragma: no cover - never replayed here
            return iter(())

        def ensure(self):
            type(self).calls[self.key] = type(self).calls.get(self.key, 0) + 1

    def setup_method(self):
        self.CountingSpec.calls = {}

    def test_equal_specs_are_ensured_once(self):
        from repro.simulation.engine import _ensure_streams

        specs = [self.CountingSpec("a") for _ in range(5)]
        specs += [self.CountingSpec("b"), None, None]
        _ensure_streams(specs)
        assert self.CountingSpec.calls == {"a": 1, "b": 1}

    def test_unhashable_streams_dedup_by_identity(self):
        from repro.simulation.engine import _ensure_streams

        class UnhashableSpec(self.CountingSpec):
            __hash__ = None

        first, second = UnhashableSpec("u1"), UnhashableSpec("u2")
        _ensure_streams([first, first, second])
        assert self.CountingSpec.calls == {"u1": 1, "u2": 1}

    def test_plain_request_lists_are_skipped(self):
        from repro.simulation.engine import _ensure_streams

        _ensure_streams([[], None])  # nothing with ensure(): no error, no calls
        assert self.CountingSpec.calls == {}
