"""Tests for the result containers: per-shard views and sweep rendering."""

from __future__ import annotations

from repro.cache.base import CacheStats
from repro.simulation.metrics import SimulationResult, SweepResult


def _result(hit_ratio_hits: int = 1, reads: int = 2, **kwargs) -> SimulationResult:
    return SimulationResult(
        policy_name="LRU",
        capacity=10,
        stats=CacheStats(read_requests=reads, read_hits=hit_ratio_hits),
        **kwargs,
    )


class TestPerShardViews:
    def test_unsharded_result_reports_no_shards(self):
        result = _result()
        assert result.per_shard == ()
        assert result.shard_count == 0
        assert result.load_imbalance == 1.0
        assert "load_imbalance" not in result.as_dict()

    def test_shard_ratios_and_counts(self):
        result = _result(
            per_shard=(
                CacheStats(read_requests=10, read_hits=5),
                CacheStats(read_requests=30, read_hits=6, write_requests=10),
            )
        )
        assert result.shard_count == 2
        assert result.shard_read_hit_ratios == [0.5, 0.2]
        assert result.shard_request_counts == [10, 40]
        # max/mean = 40 / 25
        assert result.load_imbalance == 40 * 2 / 50
        row = result.as_dict()
        assert row["shards"] == 2
        assert row["load_imbalance"] == result.load_imbalance

    def test_idle_shards_raise_imbalance(self):
        result = _result(
            per_shard=(
                CacheStats(read_requests=20),
                CacheStats(read_requests=20),
                CacheStats(),
                CacheStats(),
            )
        )
        assert result.load_imbalance == 2.0

    def test_empty_cluster_is_balanced_by_convention(self):
        result = _result(per_shard=(CacheStats(), CacheStats()))
        assert result.load_imbalance == 1.0


class TestSweepResultRendering:
    def test_to_table_without_duplicates_unchanged(self):
        sweep = SweepResult(parameter="x")
        sweep.add("A", 1.0, _result(1, 2))       # 50%
        sweep.add("A", 2.0, _result(1, 4))       # 25%
        sweep.add("B", 1.0, _result(3, 4))       # 75%
        table = sweep.to_table()
        lines = table.splitlines()
        assert lines[0].split() == ["x", "A", "B"]
        assert lines[2].split() == ["1", "50.00%", "75.00%"]
        assert lines[3].split() == ["2", "25.00%", "-"]

    def test_to_table_renders_every_duplicate_point(self):
        """Duplicate (series, x) points render one row each, like as_rows()."""
        sweep = SweepResult(parameter="x")
        sweep.add("A", 1.0, _result(1, 2))       # 50%
        sweep.add("A", 1.0, _result(1, 4))       # 25% duplicate x
        sweep.add("B", 1.0, _result(3, 4))       # 75%
        table = sweep.to_table()
        assert "50.00%" in table and "25.00%" in table
        value_cells = [
            cell
            for line in table.splitlines()[2:]
            for cell in line.split()[1:]
            if cell != "-"
        ]
        assert len(value_cells) == len(sweep.as_rows())

    def test_duplicates_keep_insertion_order(self):
        sweep = SweepResult(parameter="x")
        sweep.add("A", 1.0, _result(1, 2))       # 50% first
        sweep.add("A", 1.0, _result(1, 4))       # 25% second
        rows = sweep.to_table().splitlines()[2:]
        assert rows[0].split()[1] == "50.00%"
        assert rows[1].split()[1] == "25.00%"
