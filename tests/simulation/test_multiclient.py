"""Tests for multi-client interleaving and capacity partitioning (Section 6.4)."""

from __future__ import annotations

import pytest

from repro.simulation.multiclient import (
    interleave_round_robin,
    partition_capacity,
    remap_pages,
)
from repro.simulation.request import RequestKind

from tests.conftest import hint, rd


def client_trace(client_id: str, pages: list[int]):
    hs = hint(client_id, table="t")
    return [rd(page, hs) for page in pages]


class TestInterleaving:
    def test_round_robin_order(self):
        a = client_trace("a", [1, 2])
        b = client_trace("b", [7, 8])
        combined = interleave_round_robin([a, b], page_stride=1000)
        clients = [request.client_id for request in combined]
        assert clients == ["a", "b", "a", "b"]

    def test_truncation_to_shortest_trace(self):
        a = client_trace("a", [1, 2, 3, 4, 5])
        b = client_trace("b", [7])
        combined = interleave_round_robin([a, b])
        # One request per client per round, one round only.
        assert len(combined) == 2

    def test_no_truncation_keeps_all_requests(self):
        a = client_trace("a", [1, 2, 3])
        b = client_trace("b", [7])
        combined = interleave_round_robin([a, b], truncate=False)
        assert len(combined) == 4

    def test_page_ids_are_disjoint_across_clients(self):
        a = client_trace("a", [1, 2, 3])
        b = client_trace("b", [1, 2, 3])     # same raw page ids
        combined = interleave_round_robin([a, b])
        pages_a = {r.page for r in combined if r.client_id == "a"}
        pages_b = {r.page for r in combined if r.client_id == "b"}
        assert pages_a.isdisjoint(pages_b)

    def test_explicit_stride_respected(self):
        a = client_trace("a", [1])
        b = client_trace("b", [1])
        combined = interleave_round_robin([a, b], page_stride=10_000)
        assert {r.page for r in combined} == {1, 10_001}

    def test_hints_and_kind_preserved(self):
        hs = hint("a", table="stock")
        trace = [rd(1, hs)]
        combined = interleave_round_robin([trace, client_trace("b", [5])])
        assert combined[0].hints == hs
        assert combined[0].kind is RequestKind.READ

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            interleave_round_robin([client_trace("a", [1]), []])

    def test_no_traces_returns_empty(self):
        assert interleave_round_robin([]) == []


class TestRemapPages:
    def test_offset_applied(self):
        trace = client_trace("a", [1, 2])
        remapped = remap_pages(trace, offset=500)
        assert [r.page for r in remapped] == [501, 502]

    def test_original_untouched(self):
        trace = client_trace("a", [1])
        remap_pages(trace, offset=10)
        assert trace[0].page == 1


class TestPartitionCapacity:
    def test_even_split(self):
        assert partition_capacity(180, 3) == [60, 60, 60]

    def test_remainder_distributed(self):
        assert partition_capacity(10, 3) == [4, 3, 3]

    def test_sum_preserved(self):
        parts = partition_capacity(101, 4)
        assert sum(parts) == 101

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_capacity(10, 0)
        with pytest.raises(ValueError):
            partition_capacity(2, 3)
