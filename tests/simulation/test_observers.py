"""Tests for the composable replay observers (the accounting layer)."""

from __future__ import annotations

import random

import pytest

from repro.cache.base import CacheStats
from repro.cache.lru import LRUPolicy
from repro.simulation.cluster import ShardedCache
from repro.simulation.costmodel import CostModel
from repro.simulation.engine import MultiPolicySimulator
from repro.simulation.observers import (
    CostObserver,
    ReplayObserver,
    RollingObserver,
    ShardStatsObserver,
    StatsObserver,
    shard_observer_for,
)
from repro.simulation.simulator import CacheSimulator, simulate

from tests.conftest import rd, wr


def _trace(n=2000, pages=120, seed=3):
    rng = random.Random(seed)
    return [
        rd(rng.randrange(pages)) if rng.random() < 0.7 else wr(rng.randrange(pages))
        for _ in range(n)
    ]


def _drive(observer: ReplayObserver, policy, stream, start_seq=0, chunk=256):
    """Feed *observer* the outcome stream of *policy*, chunk-batched."""
    for base in range(0, len(stream), chunk):
        part = stream[base : base + chunk]
        outcomes = [
            policy.access(request, start_seq + base + i)
            for i, request in enumerate(part)
        ]
        observer.on_chunk(part, start_seq + base, outcomes)
        observer.on_chunk_end(start_seq + base + len(part))


class TestStatsObserver:
    def test_reconstructs_cache_stats(self):
        stream = _trace()
        policy = LRUPolicy(40)
        observer = StatsObserver()
        _drive(observer, policy, stream)
        expected = simulate(LRUPolicy(40), stream).stats
        assert observer.finalize() == expected

    def test_on_outcome_and_on_chunk_agree(self):
        stream = _trace(n=500)
        a, b = StatsObserver(), StatsObserver()
        pa, pb = LRUPolicy(30), LRUPolicy(30)
        _drive(a, pa, stream)
        for seq, request in enumerate(stream):
            b.on_outcome(request, seq, pb.access(request, seq))
        assert a.finalize() == b.finalize()

    def test_merge_sums_segments(self):
        stream = _trace()
        cut = len(stream) // 3
        policy = LRUPolicy(40)
        first, second = StatsObserver(), StatsObserver()
        _drive(first, policy, stream[:cut])
        _drive(second, policy, stream[cut:], start_seq=cut)
        first.merge(second)
        whole = StatsObserver()
        _drive(whole, LRUPolicy(40), stream)
        assert first.finalize() == whole.finalize()


class TestRollingObserver:
    def test_matches_engine_rolling(self):
        stream = _trace()
        observer = RollingObserver(window=128, start_seq=0)
        _drive(observer, LRUPolicy(40), stream, chunk=128)
        expected = simulate(LRUPolicy(40), stream, rolling_window=128).rolling
        assert observer.finalize() == expected

    def test_unaligned_chunks_self_correct(self):
        # Without engine alignment, per-request driving must still close
        # windows at every boundary crossing.
        stream = _trace(n=700)
        policy = LRUPolicy(40)
        observer = RollingObserver(window=100, start_seq=0)
        for seq, request in enumerate(stream):
            observer.on_outcome(request, seq, policy.access(request, seq))
        expected = simulate(LRUPolicy(40), stream, rolling_window=100).rolling
        assert observer.finalize() == expected

    def test_merge_rejoins_split_segments(self):
        stream = _trace()
        cut = 777  # deliberately not a window multiple
        policy = LRUPolicy(40)
        first = RollingObserver(window=128, start_seq=0)
        _drive(first, policy, stream[:cut], chunk=128)
        second = RollingObserver(window=128, start_seq=cut)
        _drive(second, policy, stream[cut:], start_seq=cut, chunk=128)
        first.merge(second)
        whole = simulate(LRUPolicy(40), stream, rolling_window=128).rolling
        assert first.finalize() == whole

    def test_finalize_is_non_destructive(self):
        observer = RollingObserver(window=64, start_seq=0)
        _drive(observer, LRUPolicy(20), _trace(n=200), chunk=64)
        assert observer.finalize() == observer.finalize()


class TestShardStatsObserver:
    def test_matches_per_shard_result(self):
        stream = _trace()
        cluster = ShardedCache(capacity=36, policy="LRU", shards=3)
        result = CacheSimulator(cluster).run(stream)
        fresh = ShardedCache(capacity=36, policy="LRU", shards=3)
        observer = shard_observer_for(fresh)
        assert isinstance(observer, ShardStatsObserver)
        _drive(observer, fresh, stream)
        assert observer.finalize() == result.per_shard

    def test_plain_policies_get_no_shard_observer(self):
        assert shard_observer_for(LRUPolicy(10)) is None

    def test_merge_is_element_wise(self):
        stream = _trace()
        cut = len(stream) // 2
        cluster = ShardedCache(capacity=36, policy="LRU", shards=3)
        first = shard_observer_for(cluster)
        second = shard_observer_for(cluster)
        _drive(first, cluster, stream[:cut])
        _drive(second, cluster, stream[cut:], start_seq=cut)
        first.merge(second)
        whole = CacheSimulator(
            ShardedCache(capacity=36, policy="LRU", shards=3)
        ).run(stream)
        assert first.finalize() == whole.per_shard


class TestCostObserver:
    def test_matches_engine_pricing(self):
        stream = _trace()
        model = CostModel("hdd", page_span=200)
        policy = LRUPolicy(40)
        observer = CostObserver(model.accumulator_for(policy))
        _drive(observer, policy, stream)
        expected = simulate(LRUPolicy(40), stream, cost_model=model).latency
        assert observer.finalize().as_dict() == expected.as_dict()

    def test_merge_is_exact_for_position_independent_devices(self):
        stream = _trace()
        cut = len(stream) // 2
        model = CostModel("ssd")
        policy = LRUPolicy(40)
        first = CostObserver(model.accumulator_for(policy))
        _drive(first, policy, stream[:cut])
        second = CostObserver(model.accumulator_for(policy))
        _drive(second, policy, stream[cut:], start_seq=cut)
        first.merge(second)
        whole = simulate(LRUPolicy(40), stream, cost_model=model).latency
        assert first.finalize().as_dict() == whole.as_dict()


class _EvictionLog(ReplayObserver):
    """Example custom observer: the full eviction event log."""

    def __init__(self):
        self.events: list[tuple[int, int]] = []  # (seq, page)

    def on_outcome(self, request, seq, outcome):
        for page in outcome.evicted:
            self.events.append((seq, page))

    def merge(self, other):
        self.events.extend(other.events)

    def finalize(self):
        return list(self.events)


class TestObserverFactories:
    def test_custom_observer_sees_every_outcome(self):
        stream = _trace()
        logs: list[_EvictionLog] = []

        def factory(policy, start_seq):
            log = _EvictionLog()
            logs.append(log)
            return log

        result = CacheSimulator(LRUPolicy(40), observer_factories=[factory]).run(stream)
        assert len(logs) == 1
        assert len(logs[0].events) == result.stats.evictions
        seqs = [seq for seq, _ in logs[0].events]
        assert seqs == sorted(seqs)

    def test_engine_builds_one_observer_per_policy(self):
        stream = _trace(n=500)
        built: list[tuple[object, int]] = []

        def factory(policy, start_seq):
            built.append((policy, start_seq))
            return _EvictionLog()

        policies = [LRUPolicy(20), LRUPolicy(40)]
        MultiPolicySimulator(policies, observer_factories=[factory]).run(stream, start_seq=7)
        assert [policy for policy, _ in built] == policies
        assert all(start == 7 for _, start in built)


class TestBoundaryAlignment:
    def test_gcd_splitting_serves_multiple_intervals(self):
        # A custom observer with a different boundary interval than rolling:
        # both must see exact boundary crossings in one run.
        stream = _trace(n=1000)
        crossings: list[int] = []

        class _Boundaries(ReplayObserver):
            boundary_interval = 60

            def on_outcome(self, request, seq, outcome):
                pass

            def on_chunk_end(self, seq_end):
                if seq_end % 60 == 0:
                    crossings.append(seq_end)

            def merge(self, other):
                pass

            def finalize(self):
                return None

        result = CacheSimulator(
            LRUPolicy(40),
            rolling_window=100,
            observer_factories=[lambda policy, start: _Boundaries()],
        ).run(stream)
        assert crossings == list(range(60, 1001, 60))
        assert [w.start for w in result.rolling.windows] == list(range(0, 1000, 100))
