"""Queueing-theory property tests for the open-loop simulation.

Two kinds of pinning:

* **closed forms** — the simulated queues must agree with textbook
  queueing theory where it applies: Little's law ``L = lambda W`` on a
  stationary Poisson stream, the M/D/1 mean wait
  ``Wq = rho s / (2 (1 - rho))``, exactly zero delay as the offered load
  vanishes, and pathwise-monotone delays in the offered load;
* **structural laws** — properties that hold for *every* stream, checked
  against independent in-test reference implementations: the Lindley
  recursion per shard (which is also what makes per-shard FCFS order
  checkable), work conservation (the drained ``N(t)`` integral equals the
  sojourn sum identically), and segment-merge/composition contracts.

Closed-form tolerances are calibrated, not guessed: the M/D/1 finite-run
bias at ``n = 40k`` requests is about -3% at ``rho = 0.3`` and ``-4%`` at
``rho = 0.6`` (it grows sharply toward saturation, which is why the test
stops at 0.6 with a 12% band).
"""

from __future__ import annotations

import math
import pickle
from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import HIT, MISS_ADMIT
from repro.cache.registry import create_policy
from repro.simulation.costmodel import HISTOGRAM_BUCKET_BOUNDS_US, CostModel
from repro.simulation.queueing import QueueingModel, QueueingObserver, QueueingStats
from repro.simulation.request import RequestKind, read_request
from repro.simulation.simulator import simulate
from repro.workloads.arrivals import PoissonArrivals

from tests.strategies import request_streams

#: SSD pricing classes under write-through (see DEVICE_PROFILES["ssd"]):
#: the independent reference prices from these constants, not the cost model.
_READ_HIT_US = 5.0
_READ_MISS_US = 90.0
_WRITE_US = 90.0


def _reference_price_ns(request, hit: bool) -> int:
    """Service time on the production integer nanosecond clock."""
    if request.kind is RequestKind.READ:
        return 5_000 if hit else 90_000
    return 90_000


def _quantize_ns(t_us: float) -> int:
    """The production arrival quantisation: microseconds -> integer ns."""
    return int(t_us * 1000.0 + 0.5)


class _NoPolicy:
    """Stand-in policy for driving a QueueingObserver directly (no router)."""


def _drive(model: QueueingModel, requests, outcomes, start_seq: int = 0):
    """Feed synthetic (request, outcome) pairs through a fresh observer."""
    observer = QueueingObserver(model, _NoPolicy(), start_seq)
    observer.on_chunk(requests, start_seq, outcomes)
    return observer


def _all_miss_reads(n: int):
    """Distinct pages: every read misses against any demand-filled cache."""
    return [read_request(page=page) for page in range(n)]


def _poisson_model(rate_rps: float, seed: int = 11, **kwargs) -> QueueingModel:
    return QueueingModel(arrivals=PoissonArrivals(rate_rps, seed=seed), **kwargs)


def _run_all_miss(n: int, rate_rps: float, **model_kwargs) -> QueueingStats:
    requests = _all_miss_reads(n)
    observer = _drive(
        _poisson_model(rate_rps, **model_kwargs), requests, [MISS_ADMIT] * n
    )
    return observer.finalize()


class TestClosedForms:
    @pytest.mark.slow
    def test_littles_law_stationary_poisson(self):
        """L = lambda W on a stationary all-miss Poisson stream.

        L is the time-average number in system (the ``N(t)`` area cut at
        the last arrival); lambda and W are measured from the same run.
        Exact only in the infinite horizon — at n=20k the edge effects are
        well under 1%.
        """
        service_s = _READ_MISS_US * 1e-6
        stats = _run_all_miss(20_000, rate_rps=0.6 / service_s)
        lam = stats.arrival_rate_rps * 1e-6  # requests per microsecond
        expected = lam * stats.mean_sojourn_us
        assert stats.mean_in_system == pytest.approx(expected, rel=0.01)

    @pytest.mark.slow
    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_md1_mean_wait_matches_closed_form(self, rho):
        """M/D/1: Wq = rho s / (2 (1 - rho)) for deterministic service.

        An all-miss read stream on SSD is exactly M/D/1 (every service
        takes ``_READ_MISS_US``).  Finite runs bias a few percent low
        (the empty-queue start and the cut at the last arrival), so the
        band is 12% and rho stays well below saturation.
        """
        service_s = _READ_MISS_US * 1e-6
        stats = _run_all_miss(40_000, rate_rps=rho / service_s)
        expected_wq = rho * _READ_MISS_US / (2.0 * (1.0 - rho))
        assert stats.mean_queue_delay_us == pytest.approx(expected_wq, rel=0.12)
        assert stats.utilization == pytest.approx(rho, rel=0.05)
        # Sojourn = wait + deterministic service, by construction.
        assert stats.mean_sojourn_us == pytest.approx(
            stats.mean_queue_delay_us + _READ_MISS_US
        )

    def test_vanishing_load_has_exactly_zero_delay(self):
        """As the offered load vanishes, every request finds an idle
        server: queueing delay is *exactly* 0.0 — including the p99,
        which is what the leading zero histogram bucket guarantees."""
        stats = _run_all_miss(300, rate_rps=1.0)  # mean gap 1s >> 90us service
        assert stats.total_delay_us == 0.0
        assert stats.mean_queue_delay_us == 0.0
        assert stats.p50_queue_delay_us == 0.0
        assert stats.p99_queue_delay_us == 0.0
        assert stats.total_sojourn_us == pytest.approx(stats.total_service_us)

    def test_delays_pathwise_monotone_in_offered_load(self):
        """scaled() keeps the underlying uniforms, so each request's delay
        is monotone in the load factor pathwise — the saturation knee is
        exact, not a sampling artifact."""
        n = 2_000
        requests = _all_miss_reads(n)
        base = _poisson_model(0.3 / (_READ_MISS_US * 1e-6))
        previous = None
        for factor in (0.5, 1.0, 2.0, 4.0):
            stats = _drive(base.scaled(factor), requests, [MISS_ADMIT] * n).finalize()
            if previous is not None:
                assert stats.total_delay_us >= previous.total_delay_us
                assert stats.utilization >= previous.utilization - 1e-12
            previous = stats

    def test_more_servers_never_increase_delay(self):
        """G/G/c FCFS: doubling the servers (at the same arrivals and
        services) can only reduce waiting."""
        n = 4_000
        requests = _all_miss_reads(n)
        rate = 1.4 / (_READ_MISS_US * 1e-6)  # overloads c=1, fine for c=2
        single = _drive(_poisson_model(rate), requests, [MISS_ADMIT] * n).finalize()
        double = _drive(
            _poisson_model(rate, servers_per_shard=2), requests, [MISS_ADMIT] * n
        ).finalize()
        assert single.servers == 1 and double.servers == 2
        assert double.total_delay_us < single.total_delay_us
        assert double.utilization < single.utilization


#: Arrival rates spanning light load to past single-server saturation.
_RATES = st.sampled_from([500.0, 4_000.0, 9_000.0, 15_000.0])


@pytest.mark.property
class TestStructuralLaws:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams(max_size=200), rate=_RATES, seed=st.integers(0, 5))
    def test_single_shard_matches_naive_lindley(self, stream, rate, seed):
        """The observer's totals equal an explicit Lindley recursion priced
        from the documented SSD constants — for any stream and load.
        Integer event clock: the agreement is exact, not approximate."""
        policy = create_policy("LRU", capacity=8)
        outcomes = [policy.access(request, seq) for seq, request in enumerate(stream)]
        model = _poisson_model(rate, seed=seed)
        observer = _drive(model, stream, outcomes)
        stats = observer.finalize()

        busy = 0
        total_delay = total_sojourn = 0
        departures = []
        for t_us, request, outcome in zip(model.arrivals.times(), stream, outcomes):
            t = _quantize_ns(t_us)
            service = _reference_price_ns(request, outcome.hit)
            start = busy if busy > t else t
            busy = start + service
            departures.append(busy)
            total_delay += start - t
            total_sojourn += busy - t
        assert stats.request_count == len(stream)
        assert stats.total_delay_ns == total_delay
        assert stats.total_sojourn_ns == total_sojourn
        assert stats.last_departure_ns == departures[-1]
        # Single-server FCFS: departures leave in arrival order.
        assert departures == sorted(departures)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams(max_size=200), rate=_RATES, seed=st.integers(0, 5))
    def test_fifo_per_shard_in_a_cluster(self, stream, rate, seed):
        """Each shard of a hash-routed cluster is its own FCFS queue: the
        cluster's totals decompose exactly into per-shard Lindley
        recursions over the routed sub-streams, in sub-stream order."""
        cluster = create_policy("SHARDED", capacity=9, policy="LRU", shards=3)
        outcomes = [cluster.access(request, seq) for seq, request in enumerate(stream)]
        model = _poisson_model(rate, seed=seed)
        replay = create_policy("SHARDED", capacity=9, policy="LRU", shards=3)
        observer = QueueingObserver(model, replay, 0)
        for seq, (request, outcome) in enumerate(zip(stream, outcomes)):
            replay.access(request, seq)
            observer.on_outcome(request, seq, outcome)
        stats = observer.finalize()

        busy: dict[int, int] = defaultdict(int)
        per_shard_departs: dict[int, list[int]] = defaultdict(list)
        total_delay = total_sojourn = 0
        route = cluster.router.route
        for t_us, request, outcome in zip(model.arrivals.times(), stream, outcomes):
            t = _quantize_ns(t_us)
            shard = route(request)
            service = _reference_price_ns(request, outcome.hit)
            start = busy[shard] if busy[shard] > t else t
            busy[shard] = start + service
            per_shard_departs[shard].append(busy[shard])
            total_delay += start - t
            total_sojourn += busy[shard] - t
        assert stats.servers == 3
        assert stats.total_delay_ns == total_delay
        assert stats.total_sojourn_ns == total_sojourn
        for departs in per_shard_departs.values():
            assert departs == sorted(departs)
        if per_shard_departs:
            assert stats.last_departure_ns == max(
                departs[-1] for departs in per_shard_departs.values()
            )

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        stream=request_streams(max_size=200),
        rate=_RATES,
        servers=st.sampled_from([1, 2, 3]),
    )
    def test_work_conservation_area_matches_event_sweep(self, stream, rate, servers):
        """Little's-law numerator cross-check: the production
        ``area_at_last_arrival_ns`` (computed from the sojourn-sum identity
        minus the departure overhang) equals an *independent* event-sweep
        integral of ``N(t)`` — step through +1/-1 marks of a reference
        G/G/c Lindley recursion and integrate the step function up to the
        last arrival.  Exact, for any stream, load and server count."""
        policy = create_policy("LRU", capacity=8)
        outcomes = [policy.access(request, seq) for seq, request in enumerate(stream)]
        model = _poisson_model(rate, servers_per_shard=servers)
        stats = _drive(model, stream, outcomes).finalize()

        import heapq

        busy = [0] * servers
        pairs: list[tuple[int, int]] = []  # (arrival_ns, departure_ns)
        for t_us, request, outcome in zip(model.arrivals.times(), stream, outcomes):
            t = _quantize_ns(t_us)
            service = _reference_price_ns(request, outcome.hit)
            earliest = busy[0]
            start = earliest if earliest > t else t
            heapq.heapreplace(busy, start + service)
            pairs.append((t, start + service))
        if pairs:
            last_arrival = pairs[-1][0]
            marks = sorted(
                [(t, 1) for t, _ in pairs] + [(depart, -1) for _, depart in pairs]
            )
            area = in_system = 0
            previous = 0
            for time_ns, delta in marks:
                clipped = time_ns if time_ns < last_arrival else last_arrival
                if clipped > previous:
                    area += in_system * (clipped - previous)
                    previous = clipped
                in_system += delta
            assert stats.area_at_last_arrival_ns == area
            assert stats.total_sojourn_ns == sum(d - t for t, d in pairs)
        assert stats.area_at_last_arrival_ns <= stats.total_sojourn_ns
        assert stats.first_arrival_us <= stats.last_arrival_us
        assert stats.last_departure_us >= stats.last_arrival_us
        assert 0.0 <= stats.utilization <= 1.0 + 1e-12
        assert sum(stats.delay_histogram) == stats.request_count
        assert sum(stats.sojourn_histogram) == stats.request_count

    @pytest.mark.parametrize("sharded", [False, True], ids=["plain", "sharded"])
    def test_vector_and_scalar_paths_produce_identical_integers(
        self, monkeypatch, sharded
    ):
        """The numpy chunk path and the pure-Python fallback are the same
        simulation: every field of the finalized stats — totals,
        histograms, areas — is bit-identical, fed chunk by chunk."""
        pytest.importorskip("numpy")
        import repro.simulation.queueing as queueing_module

        from repro.simulation.request import write_request

        stream = [
            read_request(page=(seq * 7) % 101)
            if seq % 4
            else write_request(page=seq % 13)
            for seq in range(3_000)
        ]
        if sharded:
            policy = create_policy("SHARDED", capacity=60, policy="LRU", shards=4)
        else:
            policy = create_policy("LRU", capacity=60)
        outcomes = [policy.access(request, seq) for seq, request in enumerate(stream)]
        model = _poisson_model(11_000.0)

        def run() -> QueueingStats:
            observer = QueueingObserver(model, policy, 0)
            for base in range(0, len(stream), 700):  # uneven chunk boundaries
                observer.on_chunk(
                    stream[base : base + 700], base, outcomes[base : base + 700]
                )
            return observer.finalize()

        fast = run()
        monkeypatch.setattr(queueing_module, "_np", None)
        slow = run()
        assert fast == slow


class TestSegmentsAndComposition:
    def test_merge_continues_the_arrival_clock(self):
        """Segment B's arrivals are absolute functions of the sequence
        number: splitting a stream at any point and merging reproduces the
        whole run's arrival window and totals exactly for light load (no
        queue carryover), and exactly the counts/clock regardless."""
        n, cut = 600, 251
        requests = _all_miss_reads(n)
        outcomes = [MISS_ADMIT] * n
        model = _poisson_model(2_000.0)

        whole = _drive(model, requests, outcomes).finalize()
        head = _drive(model, requests[:cut], outcomes[:cut])
        tail = _drive(model, requests[cut:], outcomes[cut:], start_seq=cut)
        head.merge(tail)
        merged = head.finalize()

        assert merged.request_count == whole.request_count
        assert merged.first_arrival_us == whole.first_arrival_us
        assert merged.last_arrival_us == whole.last_arrival_us
        assert merged.total_service_us == pytest.approx(whole.total_service_us)
        # Idle-at-segment-start can only shed queueing carried across the cut.
        assert merged.total_delay_us <= whole.total_delay_us + 1e-9

    def test_finalize_is_repeatable(self):
        observer = _drive(_poisson_model(8_000.0), _all_miss_reads(50), [MISS_ADMIT] * 50)
        first = observer.finalize()
        second = observer.finalize()
        assert first.as_dict() == second.as_dict()

    def test_merge_rejects_mismatched_models(self):
        a = _drive(_poisson_model(1_000.0), _all_miss_reads(5), [MISS_ADMIT] * 5)
        b = _drive(_poisson_model(2_000.0), _all_miss_reads(5), [MISS_ADMIT] * 5)
        with pytest.raises(ValueError, match="different models"):
            a.merge(b)

    def test_stats_merge_rejects_mismatched_servers(self):
        with pytest.raises(ValueError, match="server counts"):
            QueueingStats(servers=1).merge(QueueingStats(servers=2))

    def test_stats_merge_rejects_mismatched_histograms(self):
        other = QueueingStats()
        other.delay_histogram = other.delay_histogram + [0]
        with pytest.raises(ValueError, match="histogram sizes"):
            QueueingStats().merge(other)

    def test_sharded_single_shard_equals_plain_policy(self):
        """A 1-shard cluster is the unified cache: identical queueing."""
        stream = [read_request(page=(seq * 13) % 40) for seq in range(500)]
        model = _poisson_model(9_000.0)
        plain = simulate(create_policy("LRU", capacity=8), stream, queueing_model=model)
        sharded = simulate(
            create_policy("SHARDED", capacity=8, policy="LRU", shards=1),
            stream,
            queueing_model=model,
        )
        assert plain.queueing.as_dict() == sharded.queueing.as_dict()


class TestModelAndPlumbing:
    def test_model_validation(self):
        arrivals = PoissonArrivals(1_000.0)
        with pytest.raises(TypeError, match="ArrivalProcess"):
            QueueingModel(arrivals=1_000.0)
        with pytest.raises(ValueError, match="servers_per_shard"):
            QueueingModel(arrivals=arrivals, servers_per_shard=0)
        with pytest.raises(ValueError, match="write policy"):
            QueueingModel(arrivals=arrivals, write_policy="write-around")
        with pytest.raises(ValueError, match="unknown device"):
            QueueingModel(arrivals=arrivals, device="floppy")

    def test_model_hashable_and_picklable(self):
        model = _poisson_model(3_000.0, device="nvme", servers_per_shard=2)
        assert hash(model) == hash(pickle.loads(pickle.dumps(model)))
        assert pickle.loads(pickle.dumps(model)) == model
        assert model.scaled(2.0) != model
        assert model.scaled(2.0).arrivals.mean_rate_rps == pytest.approx(6_000.0)

    def test_model_cost_model_round_trip(self):
        model = _poisson_model(1_000.0, device="hdd", page_span=512)
        cost = model.cost_model()
        assert cost.profile.name == "hdd"
        assert cost.profile.seek_span == 512

    def test_simulation_result_carries_queueing_columns(self):
        stream = _all_miss_reads(200)
        result = simulate(
            create_policy("LRU", capacity=8),
            stream,
            queueing_model=_poisson_model(9_000.0),
        )
        row = result.as_dict()
        for column in QueueingStats().report_columns():
            assert column in row
        assert row["utilization"] == result.queueing.utilization

    def test_observer_histograms_use_shared_buckets(self):
        stats = QueueingStats()
        assert len(stats.delay_histogram) == len(HISTOGRAM_BUCKET_BOUNDS_US)
        assert HISTOGRAM_BUCKET_BOUNDS_US[0] == 0.0

    def test_hits_price_cheaper_than_misses(self):
        """The queue consumes the cost model's pricing: an all-hit stream
        spends less server time than an all-miss one."""
        n = 300
        requests = _all_miss_reads(n)
        model = _poisson_model(5_000.0)
        hits = _drive(model, requests, [HIT] * n).finalize()
        misses = _drive(model, requests, [MISS_ADMIT] * n).finalize()
        assert hits.total_service_us == pytest.approx(n * _READ_HIT_US)
        assert misses.total_service_us == pytest.approx(n * _READ_MISS_US)
        assert hits.total_delay_us <= misses.total_delay_us
