"""Tests for the rolling (windowed) time-series metrics."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.arc import ARCPolicy
from repro.cache.lru import LRUPolicy
from repro.simulation.engine import (
    MultiPolicySimulator,
    ParallelSweepRunner,
    PolicySpec,
    SweepCell,
)
from repro.simulation.metrics import RollingMetrics, RollingWindow
from repro.simulation.simulator import CacheSimulator

from tests.conftest import rd, wr
from tests.strategies import request_streams


def small_stream(n: int = 1_000):
    return [rd(i % 37) if i % 3 else wr(i % 37) for i in range(n)]


class TestRollingWindow:
    def test_ratio_and_combine(self):
        first = RollingWindow(0, 6, 4, 2, 2, 1, 3)
        second = RollingWindow(6, 4, 2, 2, 2, 0, 1)
        joined = first.combine(second)
        assert joined == RollingWindow(0, 10, 6, 4, 4, 1, 4)
        assert joined.read_hit_ratio == 4 / 6
        assert RollingWindow(0, 0, 0, 0, 0, 0, 0).read_hit_ratio == 0.0

    def test_combine_requires_adjacency(self):
        with pytest.raises(ValueError, match="does not continue"):
            RollingWindow(0, 6, 4, 2, 2, 1, 0).combine(
                RollingWindow(9, 1, 1, 0, 0, 0, 0)
            )


class TestRollingMetricsMerge:
    def test_merge_rejoins_a_split_window(self):
        window = RollingMetrics(
            window=10, windows=(RollingWindow(0, 7, 7, 3, 0, 0, 1),)
        )
        rest = RollingMetrics(
            window=10,
            windows=(
                RollingWindow(7, 3, 3, 1, 0, 0, 0),
                RollingWindow(10, 5, 5, 2, 0, 0, 0),
            ),
        )
        merged = window.merge(rest)
        assert merged.starts() == [0, 10]
        assert merged.windows[0].requests == 10
        assert merged.windows[0].read_hits == 4

    def test_merge_concatenates_aligned_segments(self):
        a = RollingMetrics(window=10, windows=(RollingWindow(0, 10, 10, 1, 0, 0, 0),))
        b = RollingMetrics(window=10, windows=(RollingWindow(10, 4, 4, 0, 0, 0, 0),))
        assert a.merge(b).starts() == [0, 10]
        assert a.merge(RollingMetrics(window=10)) == a
        assert RollingMetrics(window=10).merge(a) == a

    def test_merge_rejects_mismatched_windows(self):
        with pytest.raises(ValueError, match="different windows"):
            RollingMetrics(window=10).merge(RollingMetrics(window=20))

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stream=request_streams(min_size=20, max_size=200), split=st.data())
    def test_split_replay_merges_to_the_whole(self, stream, split):
        """Segment the replay anywhere: merged series == one-shot series."""
        cut = split.draw(st.integers(min_value=1, max_value=len(stream) - 1))
        whole = CacheSimulator(LRUPolicy(8), rolling_window=16).run(stream)
        policy = LRUPolicy(8)
        first = CacheSimulator(policy, rolling_window=16).run(stream[:cut])
        second = CacheSimulator(policy, rolling_window=16).run(
            stream[cut:], start_seq=cut
        )
        assert first.rolling.merge(second.rolling) == whole.rolling

    def test_as_rows_carries_global_window_indices(self):
        metrics = RollingMetrics(
            window=10,
            windows=(
                RollingWindow(5, 5, 5, 1, 0, 0, 0),
                RollingWindow(10, 10, 8, 4, 2, 1, 2),
            ),
        )
        rows = metrics.as_rows()
        assert [row["window"] for row in rows] == [0, 1]
        assert rows[1]["read_hit_ratio"] == 0.5


class TestReplayPathsAgree:
    def test_engine_and_simulator_series_identical(self):
        stream = small_stream(1_234)
        engine = MultiPolicySimulator(
            [LRUPolicy(16), ARCPolicy(16)], rolling_window=100
        ).run(stream)
        for result, policy_cls in zip(engine, (LRUPolicy, ARCPolicy)):
            single = CacheSimulator(policy_cls(16), rolling_window=100).run(stream)
            assert single.rolling == result.rolling

    def test_windows_partition_the_stream(self):
        stream = small_stream(1_234)
        (result,) = MultiPolicySimulator([LRUPolicy(16)], rolling_window=100).run(stream)
        rolling = result.rolling
        assert sum(w.requests for w in rolling.windows) == len(stream)
        assert rolling.starts() == list(range(0, 1_300, 100))
        assert rolling.windows[-1].requests == 34
        # Window sums must reproduce the run totals exactly.
        assert sum(w.read_hits for w in rolling.windows) == result.stats.read_hits
        assert sum(w.evictions for w in rolling.windows) == result.stats.evictions

    def test_rolling_off_leaves_results_unchanged(self):
        stream = small_stream(500)
        with_rolling = MultiPolicySimulator([LRUPolicy(16)], rolling_window=64).run(
            stream
        )[0]
        without = MultiPolicySimulator([LRUPolicy(16)]).run(stream)[0]
        assert without.rolling is None
        assert with_rolling.stats.as_dict() == without.stats.as_dict()
        assert with_rolling.per_client == without.per_client

    def test_window_validation(self):
        with pytest.raises(ValueError, match="rolling_window"):
            MultiPolicySimulator([LRUPolicy(4)], rolling_window=0)
        with pytest.raises(ValueError, match="rolling_window"):
            CacheSimulator(LRUPolicy(4), rolling_window=-3)


class TestRunnerJobsEquivalence:
    def test_jobs_do_not_change_rolling_series(self):
        stream = small_stream(2_000)
        specs = [
            PolicySpec(label=name, name=name, capacity=24)
            for name in ("LRU", "ARC", "TQ", "2Q")
        ]
        cells = [SweepCell(x=float(i), specs=(s,)) for i, s in enumerate(specs)]

        def run(jobs):
            return ParallelSweepRunner(stream, jobs=jobs, rolling_window=250).run(
                cells, parameter="cell"
            )

        serial, parallel = run(1), run(2)
        for label in serial.labels():
            a = serial.series[label][0].result
            b = parallel.series[label][0].result
            assert a.rolling is not None
            assert a.rolling == b.rolling
            assert a.stats.as_dict() == b.stats.as_dict()
