"""Tests for the trace-driven cache simulator."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.opt import OPTPolicy
from repro.simulation.simulator import CacheSimulator, simulate

from tests.conftest import hint, rd, wr


class TestCacheSimulator:
    def test_read_hit_ratio_computed(self):
        requests = [rd(1), rd(1), rd(2), rd(1)]
        result = CacheSimulator(LRUPolicy(2)).run(requests)
        assert result.stats.read_requests == 4
        assert result.stats.read_hits == 2
        assert result.read_hit_ratio == pytest.approx(0.5)

    def test_sequence_numbers_are_consecutive(self):
        seen = []

        class Recorder(LRUPolicy):
            def access(self, request, seq):
                seen.append(seq)
                return super().access(request, seq)

        CacheSimulator(Recorder(4)).run([rd(1), rd(2), rd(3)])
        assert seen == [0, 1, 2]

    def test_start_seq_offsets_numbering(self):
        seen = []

        class Recorder(LRUPolicy):
            def access(self, request, seq):
                seen.append(seq)
                return super().access(request, seq)

        CacheSimulator(Recorder(4)).run([rd(1), rd(2)], start_seq=100)
        assert seen == [100, 101]

    def test_offline_policy_gets_prepared(self):
        requests = [rd(1), rd(2), rd(1)]
        result = CacheSimulator(OPTPolicy(1)).run(requests)
        assert result.stats.read_hits == 1

    def test_per_client_statistics(self):
        a = hint("client-a", t="x")
        b = hint("client-b", t="x")
        requests = [rd(1, a), rd(1, a), rd(100, b), rd(200, b)]
        result = CacheSimulator(LRUPolicy(4)).run(requests)
        assert result.client_read_hit_ratio("client-a") == pytest.approx(0.5)
        assert result.client_read_hit_ratio("client-b") == 0.0
        assert result.client_read_hit_ratio("unknown") == 0.0

    def test_per_client_tracking_can_be_disabled(self):
        result = CacheSimulator(LRUPolicy(2), track_per_client=False).run([rd(1)])
        assert result.per_client == {}

    def test_result_reports_policy_and_capacity(self):
        result = simulate(LRUPolicy(7), [rd(1), wr(2)])
        assert result.policy_name == "LRU"
        assert result.capacity == 7
        assert result.requests == 2

    def test_result_as_dict_and_str(self):
        result = simulate(LRUPolicy(2), [rd(1), rd(1)])
        d = result.as_dict()
        assert d["policy"] == "LRU"
        assert "read_hit_ratio" in d
        assert "LRU" in str(result)

    def test_empty_request_stream(self):
        result = simulate(LRUPolicy(2), [])
        assert result.requests == 0
        assert result.read_hit_ratio == 0.0

    def test_generator_input_accepted(self):
        result = simulate(LRUPolicy(2), (rd(i % 3) for i in range(10)))
        assert result.requests == 10
