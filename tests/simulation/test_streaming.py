"""Streamed replay must be bit-identical to list replay, serially and fanned out."""

from __future__ import annotations

import pytest

from repro.cache.registry import create_policy
from repro.experiments.common import ExperimentSettings, trace_source, trace_spec
from repro.simulation.engine import MultiPolicySimulator
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import sweep_cache_sizes
from repro.trace.cache import TraceSpec

SETTINGS = ExperimentSettings(target_requests=2_000, seed=11)
POLICIES = ("OPT", "LRU", "ARC")
SIZES = (200, 400)


@pytest.fixture(scope="module")
def spec() -> TraceSpec:
    spec = trace_spec("DB2_C60", SETTINGS)
    spec.ensure()
    return spec


def _curves(sweep):
    return {name: sweep.curve(name) for name in POLICIES}


class TestStreamedSweepEquivalence:
    def test_streamed_equals_list_at_jobs_1_and_4(self, spec):
        requests = spec.load().requests()
        reference = _curves(sweep_cache_sizes(requests, SIZES, POLICIES, jobs=1))
        for source, jobs in ((requests, 4), (spec, 1), (spec, 4)):
            got = _curves(sweep_cache_sizes(source, SIZES, POLICIES, jobs=jobs))
            assert got == reference, f"jobs={jobs} source={type(source).__name__}"

    def test_equal_specs_fold_into_one_pass(self, spec):
        # Two *distinct but equal* spec objects must group like one stream:
        # the engine groups hashable lazy sources by equality, which is what
        # keeps per-worker shared replay alive after pickling.
        other = TraceSpec(spec.name, spec.seed, spec.target_requests, spec.client_id)
        assert other is not spec
        sweep = sweep_cache_sizes(other, SIZES, POLICIES, jobs=1)
        assert _curves(sweep) == _curves(sweep_cache_sizes(spec, SIZES, POLICIES, jobs=1))


class TestStreamedEngineEquivalence:
    def test_multi_policy_run_matches_simulator(self, spec):
        requests = spec.load().requests()
        policies = [create_policy(name, capacity=300) for name in POLICIES]
        streamed = MultiPolicySimulator(policies).run(spec)
        for name, result in zip(POLICIES, streamed):
            solo = CacheSimulator(create_policy(name, capacity=300)).run(requests)
            assert result.stats.as_dict() == solo.stats.as_dict(), name
            assert {c: s.as_dict() for c, s in result.per_client.items()} == {
                c: s.as_dict() for c, s in solo.per_client.items()
            }, name

    def test_one_shot_generator_is_materialized(self, spec):
        requests = spec.load().requests()
        policies = [create_policy("LRU", capacity=300)]
        result = MultiPolicySimulator(policies).run(r for r in requests)
        solo = CacheSimulator(create_policy("LRU", capacity=300)).run(requests)
        assert result[0].stats.as_dict() == solo.stats.as_dict()


class TestTraceSource:
    def test_trace_source_is_lazy_when_cache_enabled(self):
        source = trace_source("DB2_C60", SETTINGS)
        assert isinstance(source, TraceSpec)

    def test_trace_source_materializes_when_cache_disabled(self, monkeypatch):
        from repro.trace.cache import TraceCache, set_default_trace_cache

        set_default_trace_cache(TraceCache(enabled=False))
        try:
            source = trace_source("DB2_C60", SETTINGS)
            assert isinstance(source, list)
            assert len(source) == SETTINGS.target_requests
        finally:
            set_default_trace_cache(None)
