"""Tests for parameter sweeps and the sweep result containers."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.clic import CLICPolicy
from repro.core.config import CLICConfig
from repro.core.hints import make_hint_set
from repro.simulation.metrics import SweepResult, format_table
from repro.simulation.simulator import CacheSimulator
from repro.simulation.sweep import (
    compare_policies,
    run_policy,
    sweep_cache_sizes,
    sweep_policy_parameter,
    sweep_top_k,
)

from tests.conftest import hint, rd


@pytest.fixture
def tiny_trace(rng):
    hot = hint(object_id="hot")
    cold = hint(object_id="cold")
    requests = []
    for _ in range(4000):
        if rng.random() < 0.6:
            requests.append(rd(rng.randrange(50), hot))
        else:
            requests.append(rd(50 + rng.randrange(1000), cold))
    return requests


class TestRunAndCompare:
    def test_run_policy_by_name(self, tiny_trace):
        result = run_policy("LRU", tiny_trace, capacity=100)
        assert result.policy_name == "LRU"
        assert 0.0 <= result.read_hit_ratio <= 1.0

    def test_compare_policies_runs_each_once(self, tiny_trace):
        results = compare_policies(tiny_trace, capacity=100, policies=["LRU", "ARC", "OPT"])
        assert set(results) == {"LRU", "ARC", "OPT"}
        assert results["OPT"].read_hit_ratio >= results["LRU"].read_hit_ratio

    def test_policy_kwargs_forwarded(self, tiny_trace):
        results = compare_policies(
            tiny_trace,
            capacity=50,
            policies=["CLIC"],
            policy_kwargs={"CLIC": {"config": CLICConfig(window_size=500, charge_metadata=False)}},
        )
        assert results["CLIC"].capacity == 50


class TestSweeps:
    def test_cache_size_sweep_shape(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[25, 100], policies=["LRU", "OPT"])
        assert set(sweep.labels()) == {"LRU", "OPT"}
        assert sweep.xs("LRU") == [25, 100]

    def test_hit_ratio_monotone_in_cache_size_for_opt(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[25, 50, 200], policies=["OPT"])
        ratios = sweep.hit_ratios("OPT")
        assert ratios == sorted(ratios)

    def test_top_k_sweep_includes_track_all_reference(self, tiny_trace):
        sweep = sweep_top_k(
            tiny_trace,
            capacity=100,
            k_values=[1, 2, None],
            base_config=CLICConfig(window_size=500, charge_metadata=False),
        )
        points = sweep.series["CLIC"]
        assert len(points) == 3

    def test_sweep_result_rows_and_table(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[50], policies=["LRU"])
        rows = sweep.as_rows()
        assert rows[0]["series"] == "LRU"
        table = sweep.to_table()
        assert "cache_size" in table and "LRU" in table

    def test_curve_returns_x_y_pairs(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[50, 100], policies=["LRU"])
        curve = sweep.curve("LRU")
        assert len(curve) == 2
        assert curve[0][0] == 50

    def test_top_k_sweep_preserves_every_base_config_field(self, rng):
        """Regression: rebuilding the config must not drop ``hint_projection``.

        The seed implementation copied the base config field by field and
        silently lost ``hint_projection``; the sweep now rebuilds it with
        ``dataclasses.replace``.  The trace is crafted so that projecting the
        hint sets onto ``object_id`` measurably changes CLIC's behaviour with
        a small ``top_k`` (the noise hint type would otherwise thrash the
        bounded tracker), so this test fails if the projection is dropped.
        """
        requests = []
        for _ in range(4000):
            noise = rng.randrange(10)
            if rng.random() < 0.6:
                requests.append(rd(rng.randrange(50), make_hint_set("db2", object_id="hot", noise=noise)))
            else:
                requests.append(rd(50 + rng.randrange(1000), make_hint_set("db2", object_id="cold", noise=noise)))

        base = CLICConfig(
            window_size=500, charge_metadata=False, hint_projection=("object_id",)
        )
        expected = CacheSimulator(
            CLICPolicy(capacity=100, config=dataclasses.replace(base, top_k=2))
        ).run(requests)
        # Sanity: the trace discriminates — dropping the projection changes
        # the outcome, so an equality check below is a meaningful regression.
        dropped = CacheSimulator(
            CLICPolicy(
                capacity=100,
                config=dataclasses.replace(base, top_k=2, hint_projection=None),
            )
        ).run(requests)
        assert dropped.stats != expected.stats

        sweep = sweep_top_k(requests, capacity=100, k_values=[2], base_config=base)
        assert sweep.series["CLIC"][0].result.stats == expected.stats

    def test_sweep_policy_parameter_by_value(self, tiny_trace):
        def make_policy(value, capacity):
            return CLICPolicy(
                capacity=capacity,
                config=CLICConfig(window_size=int(value), charge_metadata=False),
            )

        sweep = sweep_policy_parameter(
            tiny_trace, capacity=100, parameter="window_size",
            values=[500, 1000], make_policy=make_policy,
        )
        assert sweep.xs("CLIC") == [500.0, 1000.0]


class TestFormatTable:
    def test_formats_header_and_rows(self):
        text = format_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
