"""Tests for parameter sweeps and the sweep result containers."""

from __future__ import annotations

import pytest

from repro.core.config import CLICConfig
from repro.simulation.metrics import SweepResult, format_table
from repro.simulation.sweep import (
    compare_policies,
    run_policy,
    sweep_cache_sizes,
    sweep_top_k,
)

from tests.conftest import hint, rd


@pytest.fixture
def tiny_trace(rng):
    hot = hint(object_id="hot")
    cold = hint(object_id="cold")
    requests = []
    for _ in range(4000):
        if rng.random() < 0.6:
            requests.append(rd(rng.randrange(50), hot))
        else:
            requests.append(rd(50 + rng.randrange(1000), cold))
    return requests


class TestRunAndCompare:
    def test_run_policy_by_name(self, tiny_trace):
        result = run_policy("LRU", tiny_trace, capacity=100)
        assert result.policy_name == "LRU"
        assert 0.0 <= result.read_hit_ratio <= 1.0

    def test_compare_policies_runs_each_once(self, tiny_trace):
        results = compare_policies(tiny_trace, capacity=100, policies=["LRU", "ARC", "OPT"])
        assert set(results) == {"LRU", "ARC", "OPT"}
        assert results["OPT"].read_hit_ratio >= results["LRU"].read_hit_ratio

    def test_policy_kwargs_forwarded(self, tiny_trace):
        results = compare_policies(
            tiny_trace,
            capacity=50,
            policies=["CLIC"],
            policy_kwargs={"CLIC": {"config": CLICConfig(window_size=500, charge_metadata=False)}},
        )
        assert results["CLIC"].capacity == 50


class TestSweeps:
    def test_cache_size_sweep_shape(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[25, 100], policies=["LRU", "OPT"])
        assert set(sweep.labels()) == {"LRU", "OPT"}
        assert sweep.xs("LRU") == [25, 100]

    def test_hit_ratio_monotone_in_cache_size_for_opt(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[25, 50, 200], policies=["OPT"])
        ratios = sweep.hit_ratios("OPT")
        assert ratios == sorted(ratios)

    def test_top_k_sweep_includes_track_all_reference(self, tiny_trace):
        sweep = sweep_top_k(
            tiny_trace,
            capacity=100,
            k_values=[1, 2, None],
            base_config=CLICConfig(window_size=500, charge_metadata=False),
        )
        points = sweep.series["CLIC"]
        assert len(points) == 3

    def test_sweep_result_rows_and_table(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[50], policies=["LRU"])
        rows = sweep.as_rows()
        assert rows[0]["series"] == "LRU"
        table = sweep.to_table()
        assert "cache_size" in table and "LRU" in table

    def test_curve_returns_x_y_pairs(self, tiny_trace):
        sweep = sweep_cache_sizes(tiny_trace, cache_sizes=[50, 100], policies=["LRU"])
        curve = sweep.curve("LRU")
        assert len(curve) == 2
        assert curve[0][0] == 50


class TestFormatTable:
    def test_formats_header_and_rows(self):
        text = format_table(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
