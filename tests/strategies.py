"""Shared hypothesis strategies for the whole test suite.

One home for the generators that property tests across the suite used to
re-implement ad hoc: hint sets, I/O requests, request streams, traces, CLIC
configurations and policy capacities.  Import from here instead of copying —
a richer generator improves every property test at once, and shrinking
behaviour stays consistent across files.

Two families of hint-set/request strategies exist on purpose:

* the **simple** ones (:func:`hint_sets`, :func:`io_requests`,
  :func:`request_streams`) draw from small fixed domains, which is what
  policy/statistics invariants want — small page and hint spaces force
  collisions, evictions and re-references;
* the **rich** ones (:func:`rich_hint_sets`, :func:`rich_io_requests`,
  :func:`traces`) explore serialization-facing edge cases — empty hint
  sets, unicode values, huge page ids, explicit client-id overrides.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.config import CLICConfig
from repro.core.hints import EMPTY_HINT_SET, HintSet
from repro.simulation.request import IORequest, RequestKind
from repro.trace.records import Trace

__all__ = [
    "capacities",
    "clic_configs",
    "hint_sets",
    "hint_values",
    "io_requests",
    "page_hint_event_streams",
    "request_streams",
    "rich_hint_sets",
    "rich_hint_values",
    "rich_io_requests",
    "traces",
]

#: Small mixed-type hint values: collisions are likely, which is what the
#: statistics/policy invariants need.
hint_values = st.one_of(
    st.integers(min_value=0, max_value=5), st.sampled_from(["read", "write", "x"])
)

#: Serialization-facing hint values: negatives, large ints, text, booleans.
rich_hint_values = st.one_of(
    st.integers(min_value=-5, max_value=10_000),
    st.text(max_size=8),
    st.booleans(),
)

#: Cache capacities small enough that generated streams overflow them.
capacities = st.integers(min_value=1, max_value=20)


@st.composite
def hint_sets(
    draw,
    clients: tuple[str, ...] = ("a", "b"),
    names: tuple[str, ...] = ("kind", "obj"),
    values=hint_values,
) -> HintSet:
    """A small-domain hint set (fixed hint names, tiny value space)."""
    return HintSet(
        client_id=draw(st.sampled_from(clients)),
        names=tuple(names),
        values=tuple(draw(values) for _ in names),
    )


@st.composite
def rich_hint_sets(draw) -> HintSet:
    """A serialization-facing hint set (variable names, rich values, EMPTY)."""
    client = draw(st.sampled_from(["db2", "mysql", "c-0", ""]))
    if client == "":
        return EMPTY_HINT_SET
    names = draw(
        st.lists(
            st.sampled_from(["pool_id", "object_id", "request_type", "fix_count"]),
            unique=True,
            max_size=4,
        )
    )
    values = tuple(draw(rich_hint_values) for _ in names)
    return HintSet(client_id=client, names=tuple(names), values=values)


@st.composite
def io_requests(draw, max_page: int = 40, hints=None) -> IORequest:
    """A small-domain request: page ids collide, reads and writes mix."""
    return IORequest(
        page=draw(st.integers(min_value=0, max_value=max_page)),
        kind=draw(st.sampled_from([RequestKind.READ, RequestKind.WRITE])),
        hints=draw(hints if hints is not None else hint_sets()),
    )


@st.composite
def rich_io_requests(draw) -> IORequest:
    """A serialization-facing request: huge pages, client-id overrides."""
    hints = draw(rich_hint_sets())
    return IORequest(
        page=draw(st.integers(min_value=0, max_value=2**40)),
        kind=draw(st.sampled_from([RequestKind.READ, RequestKind.WRITE])),
        hints=hints,
        client_id=draw(st.sampled_from(["", "override-client"])),
    )


def request_streams(
    min_size: int = 1, max_size: int = 300, max_page: int = 40
) -> st.SearchStrategy[list[IORequest]]:
    """Lists of small-domain requests (the standard policy-invariant input)."""
    return st.lists(io_requests(max_page=max_page), min_size=min_size, max_size=max_size)


def traces(max_requests: int = 60) -> st.SearchStrategy[Trace]:
    """In-memory traces for round-trip tests (rich requests + metadata)."""
    return st.builds(
        Trace,
        name=st.text(min_size=1, max_size=12),
        requests_list=st.lists(rich_io_requests(), max_size=max_requests),
        metadata=st.dictionaries(
            st.text(min_size=1, max_size=8).filter(lambda k: k != "name"),
            st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
            max_size=4,
        ),
    )


@st.composite
def clic_configs(draw) -> CLICConfig:
    """Small CLIC configurations: short windows force priority re-estimates."""
    return CLICConfig(
        window_size=draw(st.integers(min_value=5, max_value=50)),
        decay=draw(st.sampled_from([1.0, 0.9, 0.5])),
        outqueue_factor=draw(st.sampled_from([1.0, 2.0, 5.0])),
        charge_metadata=False,
    )


def page_hint_event_streams(
    max_page: int = 11,
    hint_count: int = 3,
    min_size: int = 1,
    max_size: int = 250,
) -> st.SearchStrategy[list[tuple[int, int, bool]]]:
    """Streams of ``(page, hint index, is_read)`` events.

    For tests that build their requests from a fixed palette of hint sets
    (e.g. pinning CLIC's victim selection against a reference scan): the
    tuple form keeps shrinking readable.
    """
    events = st.tuples(
        st.integers(min_value=0, max_value=max_page),
        st.integers(min_value=0, max_value=hint_count - 1),
        st.booleans(),
    )
    return st.lists(events, min_size=min_size, max_size=max_size)
